//! 3-D HRTF geometry — the paper's §7 "3D HRTF" extension.
//!
//! The 2-D prototype covers the horizontal plane; extending to elevation
//! "is viable — the user would now need to move the phone on a sphere
//! around the head, and the motion tracking equations need to be extended
//! to 3D." This module provides the geometric core of that extension:
//!
//! * [`Vec3`] — 3-D points/vectors;
//! * [`Head3`] — the two-half-ellipsoid head: the paper's `(a, b, c)`
//!   cross-section extruded with a vertical semi-axis `h`;
//! * [`path_to_ear_3d`] — wrap paths from arbitrary 3-D source positions,
//!   via the **plane-section approximation**: the geodesic is computed in
//!   the plane spanned by the source and the ear through the head centre
//!   (exact for spheres, accurate to first order in eccentricity
//!   otherwise), using the generic convex wrap of [`crate::convex`];
//! * [`plane_itd_3d`] — far-field interaural delays over (azimuth,
//!   elevation), exhibiting the *cone of confusion* that makes elevation
//!   hard for ITD-only systems.

use crate::convex::ConvexPolygon;
use crate::head::{Ear, HeadParams};
use crate::vec2::Vec2;

/// A 3-D vector / point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// Lateral (through the ears, +x toward the right ear).
    pub x: f64,
    /// Frontal (+y out of the nose).
    pub y: f64,
    /// Vertical (+z up).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Unit vector.
    ///
    /// # Panics
    /// Panics for the zero vector.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize the zero vector");
        Vec3::new(self.x / n, self.y / n, self.z / n)
    }

    /// Difference. Method form keeps `Vec3` consistent with the rest of its
    /// call-style API (`scale`, `dist`, `dot`) without pulling in operator
    /// impls for the 3-D prototype.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }

    /// Scale.
    pub fn scale(self, k: f64) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }

    /// Distance.
    pub fn dist(self, o: Vec3) -> f64 {
        self.sub(o).norm()
    }

    /// Direction for (azimuth, elevation) in the paper's convention:
    /// azimuth `θ` as in 2-D (0 = front, 90 = left), elevation `φ` in
    /// degrees above the horizontal plane.
    pub fn from_angles(theta_deg: f64, elevation_deg: f64) -> Vec3 {
        let horiz = crate::vec2::unit_from_theta(theta_deg);
        let (se, ce) = elevation_deg.to_radians().sin_cos();
        Vec3::new(horiz.x * ce, horiz.y * ce, se)
    }
}

/// The two-half-ellipsoid head: the paper's `(a, b, c)` horizontal
/// cross-section with a vertical semi-axis `h`.
#[derive(Debug, Clone, Copy)]
pub struct Head3 {
    /// Horizontal parameters (the paper's `E`).
    pub planar: HeadParams,
    /// Vertical semi-axis, metres.
    pub h: f64,
}

impl Head3 {
    /// Average adult: horizontal average plus an 11 cm vertical semi-axis.
    pub fn average_adult() -> Self {
        Head3 {
            planar: HeadParams::average_adult(),
            h: 0.11,
        }
    }

    /// Validated construction.
    ///
    /// # Panics
    /// Panics on implausible axes.
    pub fn new(planar: HeadParams, h: f64) -> Self {
        planar.validate();
        assert!(
            (0.02..=0.30).contains(&h),
            "vertical semi-axis {h} m outside plausible range"
        );
        Head3 { planar, h }
    }

    /// Ear positions (on the ear axis, z = 0).
    pub fn ear(&self, ear: Ear) -> Vec3 {
        let e2 = self.planar.ear(ear);
        Vec3::new(e2.x, e2.y, 0.0)
    }

    /// Distance from the centre to the surface along unit direction `d`
    /// (piecewise front/back like the 2-D model).
    pub fn surface_radius(&self, d: Vec3) -> f64 {
        let sy = if d.y >= 0.0 {
            self.planar.b
        } else {
            self.planar.c
        };
        let q = (d.x / self.planar.a).powi(2) + (d.y / sy).powi(2) + (d.z / self.h).powi(2);
        1.0 / q.sqrt()
    }

    /// `true` when `p` is strictly inside the head.
    pub fn contains(&self, p: Vec3) -> bool {
        let n = p.norm();
        if n == 0.0 {
            return true;
        }
        n < self.surface_radius(p.normalized()) - 1e-12
    }
}

/// A 3-D wrap path result.
#[derive(Debug, Clone, Copy)]
pub struct Path3 {
    /// Total path length, metres.
    pub length: f64,
    /// Wrap (turning) angle in the section plane, radians.
    pub wrap_angle: f64,
    /// Whether the ear is in line of sight.
    pub direct: bool,
}

/// Default cross-section polygon resolution (forward/truth model).
pub const SECTION_RESOLUTION: usize = 512;

/// Shortest wrap path from a 3-D source to an ear, via the plane-section
/// approximation. Returns `None` when the source is inside the head.
pub fn path_to_ear_3d(head: &Head3, src: Vec3, ear: Ear) -> Option<Path3> {
    path_to_ear_3d_res(head, src, ear, SECTION_RESOLUTION)
}

/// [`path_to_ear_3d`] with an explicit cross-section resolution — inverse
/// solvers use a coarser polygon for speed (and realistic model mismatch).
///
/// # Panics
/// Panics if `resolution < 16`.
pub fn path_to_ear_3d_res(head: &Head3, src: Vec3, ear: Ear, resolution: usize) -> Option<Path3> {
    assert!(resolution >= 16, "cross-section needs at least 16 vertices");
    if head.contains(src) {
        return None;
    }
    let e = head.ear(ear);

    // Section plane basis: e1 toward the ear, e2 the in-plane component
    // of the source direction. Degenerate (collinear) sources fall back to
    // the vertical plane.
    let e1 = e.normalized();
    let mut ortho = src.sub(e1.scale(src.dot(e1)));
    if ortho.norm() < 1e-9 {
        // Source along the ear axis: any section plane works; use the one
        // containing +z.
        ortho = Vec3::new(0.0, 0.0, 1.0).sub(e1.scale(e1.z));
    }
    let e2 = ortho.normalized();

    // Sample the cross-section: for angle t, direction d(t) in the plane,
    // surface point r(t)·d(t) projected to plane coordinates.
    let verts: Vec<Vec2> = (0..resolution)
        .map(|k| {
            let t = std::f64::consts::TAU * k as f64 / resolution as f64;
            let d = e1.scale(t.cos()).addv(e2.scale(t.sin()));
            let r = head.surface_radius(d.normalized());
            Vec2::new(r * t.cos(), r * t.sin())
        })
        .collect();
    let poly = ConvexPolygon::new(verts);

    let src2d = Vec2::new(src.dot(e1), src.dot(e2));
    // The ear is vertex 0 by construction (t = 0 points at the ear and the
    // ear lies on the surface).
    let path = poly.wrap_to_vertex(src2d, 0)?;
    Some(Path3 {
        length: path.length,
        wrap_angle: path.wrap_angle,
        direct: path.direct,
    })
}

impl Vec3 {
    /// Component-wise addition (named to avoid an operator-impl explosion
    /// for this prototype module).
    pub fn addv(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

/// Far-field interaural path difference (right minus left, metres) for a
/// plane wave from `(azimuth, elevation)`.
///
/// ```
/// use uniq_geometry::elevation::{plane_itd_3d, Head3};
/// let head = Head3::average_adult();
/// let flat = plane_itd_3d(&head, 90.0, 0.0);
/// let raised = plane_itd_3d(&head, 90.0, 60.0);
/// assert!(raised < flat);   // the cone of confusion narrows with elevation
/// ```
pub fn plane_itd_3d(head: &Head3, theta_deg: f64, elevation_deg: f64) -> f64 {
    const FAR: f64 = 100.0;
    let src = Vec3::from_angles(theta_deg, elevation_deg).scale(FAR);
    // uniq-analyzer: allow(panic-safety) — the source sits 100 m out; no head model approaches that radius
    let l = path_to_ear_3d(head, src, Ear::Left).expect("far source outside head");
    // uniq-analyzer: allow(panic-safety) — same 100 m far-field source as the line above
    let r = path_to_ear_3d(head, src, Ear::Right).expect("far source outside head");
    r.length - l.length
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planewave::plane_itd_metres;
    use crate::HeadBoundary;

    fn head() -> Head3 {
        Head3::average_adult()
    }

    #[test]
    fn vec3_angles_convention() {
        let front = Vec3::from_angles(0.0, 0.0);
        assert!((front.y - 1.0).abs() < 1e-12 && front.z.abs() < 1e-12);
        let up = Vec3::from_angles(0.0, 90.0);
        assert!((up.z - 1.0).abs() < 1e-12);
        let left = Vec3::from_angles(90.0, 0.0);
        assert!((left.x + 1.0).abs() < 1e-12);
    }

    #[test]
    fn surface_and_containment() {
        let h = head();
        assert!(h.contains(Vec3::ZERO));
        assert!(!h.contains(Vec3::new(0.0, 0.0, 0.12)));
        assert!(h.contains(Vec3::new(0.0, 0.0, 0.10)));
        // Surface radius along axes.
        assert!((h.surface_radius(Vec3::new(1.0, 0.0, 0.0)) - 0.075).abs() < 1e-12);
        assert!((h.surface_radius(Vec3::new(0.0, 1.0, 0.0)) - 0.100).abs() < 1e-12);
        assert!((h.surface_radius(Vec3::new(0.0, -1.0, 0.0)) - 0.090).abs() < 1e-12);
        assert!((h.surface_radius(Vec3::new(0.0, 0.0, 1.0)) - 0.110).abs() < 1e-12);
    }

    #[test]
    fn zero_elevation_matches_2d_machinery() {
        // In the horizontal plane the 3-D path must agree with the 2-D
        // model (same geometry, different code path).
        let h3 = head();
        let b2 = HeadBoundary::new(h3.planar, 2048);
        for theta in [20.0, 60.0, 110.0, 160.0] {
            let itd3 = plane_itd_3d(&h3, theta, 0.0);
            let itd2 = plane_itd_metres(&b2, theta);
            assert!(
                (itd3 - itd2).abs() < 2e-3,
                "θ={theta}: 3D {itd3} vs 2D {itd2}"
            );
        }
    }

    #[test]
    fn elevation_shrinks_itd() {
        // Raising the source toward the pole shortens the interaural
        // difference — the cone-of-confusion geometry.
        let h = head();
        let flat = plane_itd_3d(&h, 90.0, 0.0);
        let raised = plane_itd_3d(&h, 90.0, 45.0);
        let high = plane_itd_3d(&h, 90.0, 75.0);
        assert!(raised < flat, "{raised} vs {flat}");
        assert!(high < raised, "{high} vs {raised}");
        assert!(high > 0.0);
    }

    #[test]
    fn overhead_source_is_symmetric() {
        let h = head();
        let itd = plane_itd_3d(&h, 0.0, 89.9);
        assert!(itd.abs() < 1e-3, "overhead ITD {itd}");
    }

    #[test]
    fn cone_of_confusion_is_flat_in_itd() {
        // Keeping the angle to the ear axis fixed while changing
        // elevation leaves the ITD nearly constant — the ambiguity that
        // pinna cues (and personalized HRTFs) must break.
        let h = head();
        // Points on the cone at 45° from the +x (right-ear) axis:
        // x = cos45, sqrt(y² + z²) = sin45.
        let on_cone = |roll_deg: f64| -> Vec3 {
            let (sr, cr) = roll_deg.to_radians().sin_cos();
            Vec3::new(
                std::f64::consts::FRAC_1_SQRT_2,
                std::f64::consts::FRAC_1_SQRT_2 * cr,
                std::f64::consts::FRAC_1_SQRT_2 * sr,
            )
            .scale(100.0)
        };
        let itd_at = |roll: f64| {
            let src = on_cone(roll);
            let l = path_to_ear_3d(&h, src, Ear::Left).unwrap().length;
            let r = path_to_ear_3d(&h, src, Ear::Right).unwrap().length;
            r - l
        };
        let base = itd_at(0.0);
        for roll in [20.0, 45.0, 70.0] {
            let itd = itd_at(roll);
            assert!(
                (itd - base).abs() < 0.015,
                "cone not flat at roll {roll}: {itd} vs {base}"
            );
        }
    }

    #[test]
    fn source_inside_rejected() {
        assert!(path_to_ear_3d(&head(), Vec3::new(0.01, 0.0, 0.02), Ear::Left).is_none());
    }

    #[test]
    fn shadowed_3d_path_wraps() {
        let h = head();
        let src = Vec3::new(-50.0, 0.0, 0.0); // far left
        let r = path_to_ear_3d(&h, src, Ear::Right).unwrap();
        assert!(!r.direct);
        assert!(r.wrap_angle > 0.5);
        let l = path_to_ear_3d(&h, src, Ear::Left).unwrap();
        assert!(l.direct);
        assert!(r.length > l.length);
    }
}
