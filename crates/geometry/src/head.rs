//! The three-parameter head model and its discretized boundary.
//!
//! §4.1 of the paper: *"we start by approximating the head shape as a
//! conjunction of two half-ellipses, attached at the ear locations ...
//! expressed through a 3-parameter set E = (a, b, c)"*. The front half
//! (nose side, `y ≥ 0`) is the ellipse with semi-axes `(a, b)`; the back
//! half (`y < 0`) has semi-axes `(a, c)`. The ears sit exactly at the
//! junction points `(±a, 0)`.

use crate::vec2::Vec2;
use std::f64::consts::PI;

/// Which ear a path terminates at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ear {
    /// Left ear, at `(-a, 0)`.
    Left,
    /// Right ear, at `(+a, 0)`.
    Right,
}

impl Ear {
    /// Both ears, left first.
    pub const BOTH: [Ear; 2] = [Ear::Left, Ear::Right];

    /// The opposite ear.
    pub fn opposite(self) -> Ear {
        match self {
            Ear::Left => Ear::Right,
            Ear::Right => Ear::Left,
        }
    }
}

/// The paper's head-shape parameter set `E = (a, b, c)`, in metres.
///
/// ```
/// use uniq_geometry::{HeadParams, HeadBoundary, Ear};
/// let head = HeadParams::average_adult();
/// let boundary = HeadBoundary::with_default_resolution(head);
/// // Ears sit exactly on the discretized boundary.
/// assert_eq!(boundary.vertices()[boundary.ear_index(Ear::Right)].x, head.a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadParams {
    /// Lateral semi-axis: half the ear-to-ear width.
    pub a: f64,
    /// Frontal semi-axis: head-centre to front of face.
    pub b: f64,
    /// Rear semi-axis: head-centre to back of skull.
    pub c: f64,
}

impl HeadParams {
    /// Anthropometric average adult head (a ≈ 7.5 cm half-width,
    /// 10 cm to the face plane, 9 cm to the rear).
    pub fn average_adult() -> Self {
        HeadParams {
            a: 0.075,
            b: 0.100,
            c: 0.090,
        }
    }

    /// Creates validated parameters.
    ///
    /// # Panics
    /// Panics unless all axes are positive and anatomically plausible
    /// (between 2 cm and 30 cm).
    pub fn new(a: f64, b: f64, c: f64) -> Self {
        let p = HeadParams { a, b, c };
        p.validate();
        p
    }

    /// Checks the parameters are positive and within anatomical bounds.
    ///
    /// # Panics
    /// Panics on violation.
    pub fn validate(&self) {
        for (name, v) in [("a", self.a), ("b", self.b), ("c", self.c)] {
            assert!(
                (0.02..=0.30).contains(&v),
                "head axis {name} = {v} m outside plausible range [0.02, 0.30]"
            );
        }
    }

    /// Position of an ear.
    pub fn ear(&self, ear: Ear) -> Vec2 {
        match ear {
            Ear::Left => Vec2::new(-self.a, 0.0),
            Ear::Right => Vec2::new(self.a, 0.0),
        }
    }

    /// Boundary point at parameter `t ∈ [0, 2π)`; `t = 0` is the right ear,
    /// increasing counter-clockwise (through the front of the face first).
    pub fn boundary_point(&self, t: f64) -> Vec2 {
        let t = t.rem_euclid(2.0 * PI);
        let x = self.a * t.cos();
        let y = if t <= PI {
            self.b * t.sin()
        } else {
            self.c * t.sin()
        };
        Vec2::new(x, y)
    }

    /// `true` when `p` is strictly inside the head.
    pub fn contains(&self, p: Vec2) -> bool {
        let semi_y = if p.y >= 0.0 { self.b } else { self.c };
        let q = (p.x / self.a).powi(2) + (p.y / semi_y).powi(2);
        q < 1.0 - 1e-12
    }

    /// Largest of the three semi-axes — a bound on the head radius.
    pub fn max_radius(&self) -> f64 {
        self.a.max(self.b).max(self.c)
    }
}

/// A discretized head boundary: a convex polygon with precomputed
/// cumulative arc lengths, supporting the wrap-path queries in
/// [`crate::diffraction`].
#[derive(Debug, Clone)]
pub struct HeadBoundary {
    params: HeadParams,
    verts: Vec<Vec2>,
    /// `cum[i]` = arc length from vertex 0 to vertex `i` (so `cum[0] = 0`);
    /// one extra entry holds the full perimeter.
    cum: Vec<f64>,
    left_idx: usize,
    right_idx: usize,
}

impl HeadBoundary {
    /// Discretizes the head boundary into `n` vertices (counter-clockwise,
    /// vertex 0 at the right ear). `n` must be even so the left ear lands
    /// exactly on vertex `n/2`.
    ///
    /// # Panics
    /// Panics if `n < 16` or `n` is odd, or the parameters are implausible.
    pub fn new(params: HeadParams, n: usize) -> Self {
        params.validate();
        assert!(
            n >= 16 && n.is_multiple_of(2),
            "boundary needs an even n >= 16, got {n}"
        );
        let verts: Vec<Vec2> = (0..n)
            .map(|k| params.boundary_point(2.0 * PI * k as f64 / n as f64))
            .collect();
        let mut cum = Vec::with_capacity(n + 1);
        // uniq-analyzer: allow(hot-path-alloc) — cum is pre-sized with with_capacity(n + 1); the boundary is built once per fusion solve, not per sample
        cum.push(0.0);
        for k in 0..n {
            let next = verts[(k + 1) % n];
            cum.push(cum[k] + verts[k].dist(next));
        }
        HeadBoundary {
            params,
            verts,
            cum,
            left_idx: n / 2,
            right_idx: 0,
        }
    }

    /// Default resolution used by the inverse solver (1024 vertices).
    pub fn with_default_resolution(params: HeadParams) -> Self {
        HeadBoundary::new(params, 1024)
    }

    /// The underlying parameters.
    pub fn params(&self) -> HeadParams {
        self.params
    }

    /// Boundary vertices (counter-clockwise).
    pub fn vertices(&self) -> &[Vec2] {
        &self.verts
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// Always `false` (construction guarantees ≥ 16 vertices); provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// Total boundary perimeter.
    pub fn perimeter(&self) -> f64 {
        // uniq-analyzer: allow(panic-safety) — HeadBoundary::new always discretizes to at least 8 vertices
        *self.cum.last().expect("non-empty cum")
    }

    /// Vertex index of an ear.
    pub fn ear_index(&self, ear: Ear) -> usize {
        match ear {
            Ear::Left => self.left_idx,
            Ear::Right => self.right_idx,
        }
    }

    /// Counter-clockwise arc length from vertex `i` to vertex `j`.
    pub fn arc_ccw(&self, i: usize, j: usize) -> f64 {
        let n = self.verts.len();
        let (i, j) = (i % n, j % n);
        if j >= i {
            self.cum[j] - self.cum[i]
        } else {
            self.perimeter() - (self.cum[i] - self.cum[j])
        }
    }

    /// Clockwise arc length from vertex `i` to vertex `j`.
    pub fn arc_cw(&self, i: usize, j: usize) -> f64 {
        self.arc_ccw(j, i)
    }

    /// Index of the boundary vertex closest to `p`.
    pub fn nearest_vertex(&self, p: Vec2) -> usize {
        self.verts
            .iter()
            .enumerate()
            .min_by(|(_, u), (_, v)| u.dist(p).total_cmp(&v.dist(p)))
            .map(|(k, _)| k)
            // uniq-analyzer: allow(panic-safety) — the boundary constructor guarantees at least 3 vertices
            .expect("non-empty boundary")
    }

    /// `true` when `p` is strictly inside the head (analytic test).
    pub fn contains(&self, p: Vec2) -> bool {
        self.params.contains(p)
    }

    /// `true` when the open segment `p`–`q` stays outside the head
    /// (endpoints may lie on the boundary).
    ///
    /// Analytic test: each half-ellipse is mapped to a unit circle, the
    /// segment's inside-interval is solved in closed form and intersected
    /// with the half-plane of that half, then the deepest penetration is
    /// compared against a tolerance so grazing rays count as clear.
    pub fn segment_clear(&self, p: Vec2, q: Vec2) -> bool {
        let h = self.params;
        for (semi_y, front) in [(h.b, true), (h.c, false)] {
            // Scale so this half-ellipse becomes the unit circle.
            let ps = Vec2::new(p.x / h.a, p.y / semi_y);
            let qs = Vec2::new(q.x / h.a, q.y / semi_y);
            let d = qs - ps;
            let aa = d.norm_sqr();
            if aa == 0.0 {
                continue;
            }
            let bb = 2.0 * ps.dot(d);
            let cc = ps.norm_sqr() - 1.0;
            let disc = bb * bb - 4.0 * aa * cc;
            if disc <= 0.0 {
                continue;
            }
            let sq = disc.sqrt();
            let mut lo = (-bb - sq) / (2.0 * aa);
            let mut hi = (-bb + sq) / (2.0 * aa);
            // Open segment: exclude the endpoints themselves.
            lo = lo.max(1e-9);
            hi = hi.min(1.0 - 1e-9);
            if lo >= hi {
                continue;
            }
            // Restrict to the half-plane of this half (front: y >= 0).
            let y0 = p.y;
            let dy = q.y - p.y;
            let (lo, hi) = clip_halfplane(lo, hi, y0, dy, front);
            if lo >= hi {
                continue;
            }
            // Deepest penetration of the quadratic |ps + t d|^2 on [lo, hi].
            let t_star = (-bb / (2.0 * aa)).clamp(lo, hi);
            let pt = ps + d * t_star;
            if pt.norm_sqr() < 1.0 - 1e-9 {
                return false;
            }
        }
        true
    }
}

/// Intersects the parameter interval `[lo, hi]` of the segment with the
/// half-plane `y(t) >= 0` (front) or `y(t) < 0` (back), where
/// `y(t) = y0 + t·dy`.
fn clip_halfplane(lo: f64, hi: f64, y0: f64, dy: f64, front: bool) -> (f64, f64) {
    if dy.abs() < 1e-300 {
        // Constant y: keep the whole interval or none of it. y == 0 counts
        // as front (matching `HeadParams::contains`).
        let in_half = if front { y0 >= 0.0 } else { y0 < 0.0 };
        return if in_half { (lo, hi) } else { (1.0, 0.0) };
    }
    let t_zero = -y0 / dy;
    // y(t) >= 0 for t >= t_zero when dy > 0, or t <= t_zero when dy < 0.
    let keep_upper = dy > 0.0; // "upper" = t above t_zero has y > 0
    let want_positive = front;
    if keep_upper == want_positive {
        (lo.max(t_zero), hi)
    } else {
        (lo, hi.min(t_zero))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head() -> HeadParams {
        HeadParams::average_adult()
    }

    #[test]
    fn ears_on_boundary() {
        let h = head();
        assert_eq!(h.ear(Ear::Left), Vec2::new(-0.075, 0.0));
        assert_eq!(h.ear(Ear::Right), Vec2::new(0.075, 0.0));
        assert_eq!(h.boundary_point(0.0), Vec2::new(0.075, 0.0));
        let left = h.boundary_point(PI);
        assert!((left.x + 0.075).abs() < 1e-12 && left.y.abs() < 1e-12);
    }

    #[test]
    fn boundary_front_back_asymmetry() {
        let h = head();
        let front = h.boundary_point(PI / 2.0);
        let back = h.boundary_point(3.0 * PI / 2.0);
        assert!((front.y - h.b).abs() < 1e-12);
        assert!((back.y + h.c).abs() < 1e-12);
    }

    #[test]
    fn contains_basic() {
        let h = head();
        assert!(h.contains(Vec2::ZERO));
        assert!(h.contains(Vec2::new(0.0, 0.09))); // inside front
        assert!(!h.contains(Vec2::new(0.0, 0.11))); // outside front
        assert!(!h.contains(Vec2::new(0.0, -0.095))); // outside back (c=0.09)
        assert!(h.contains(Vec2::new(0.0, -0.085))); // inside back
        assert!(!h.contains(Vec2::new(0.2, 0.0)));
    }

    #[test]
    fn ear_not_contained() {
        let h = head();
        assert!(!h.contains(h.ear(Ear::Left)));
        assert!(!h.contains(h.ear(Ear::Right)));
    }

    #[test]
    fn boundary_vertices_on_hull() {
        let b = HeadBoundary::new(head(), 256);
        assert_eq!(b.len(), 256);
        for v in b.vertices() {
            assert!(!b.contains(*v), "vertex {v:?} inside");
        }
        assert_eq!(b.vertices()[b.ear_index(Ear::Right)], Vec2::new(0.075, 0.0));
        let le = b.vertices()[b.ear_index(Ear::Left)];
        assert!((le.x + 0.075).abs() < 1e-12);
    }

    #[test]
    fn perimeter_close_to_ellipse_sum() {
        // Perimeter of the two-half-ellipse ≈ half perimeter of (a,b)
        // ellipse + half of (a,c). Ramanujan approximation per half.
        let h = head();
        let ram =
            |a: f64, bb: f64| PI * (3.0 * (a + bb) - ((3.0 * a + bb) * (a + 3.0 * bb)).sqrt());
        let expect = 0.5 * ram(h.a, h.b) + 0.5 * ram(h.a, h.c);
        let b = HeadBoundary::new(h, 4096);
        assert!(
            (b.perimeter() - expect).abs() / expect < 1e-3,
            "perimeter {} vs {}",
            b.perimeter(),
            expect
        );
    }

    #[test]
    fn perimeter_converges_with_resolution() {
        let coarse = HeadBoundary::new(head(), 64).perimeter();
        let fine = HeadBoundary::new(head(), 2048).perimeter();
        assert!(coarse < fine); // inscribed polygon underestimates
        assert!((fine - coarse) / fine < 5e-3);
    }

    #[test]
    fn arc_directions_sum_to_perimeter() {
        let b = HeadBoundary::new(head(), 128);
        let (i, j) = (10, 70);
        let total = b.arc_ccw(i, j) + b.arc_cw(i, j);
        assert!((total - b.perimeter()).abs() < 1e-12);
        assert_eq!(b.arc_ccw(5, 5), 0.0);
    }

    #[test]
    fn nearest_vertex_finds_ear() {
        let b = HeadBoundary::new(head(), 128);
        let idx = b.nearest_vertex(Vec2::new(0.2, 0.001));
        assert_eq!(idx, b.ear_index(Ear::Right));
    }

    #[test]
    fn segment_clear_through_head_blocked() {
        let b = HeadBoundary::with_default_resolution(head());
        // Straight through the head: blocked.
        assert!(!b.segment_clear(Vec2::new(0.3, 0.0), Vec2::new(-0.3, 0.0)));
        // Grazing far above: clear.
        assert!(b.segment_clear(Vec2::new(0.3, 0.3), Vec2::new(-0.3, 0.3)));
        // From a point to the near ear: clear.
        assert!(b.segment_clear(Vec2::new(0.3, 0.0), Vec2::new(0.075, 0.0)));
    }

    #[test]
    #[should_panic(expected = "plausible range")]
    fn absurd_params_rejected() {
        HeadParams::new(1.0, 0.1, 0.1);
    }

    #[test]
    #[should_panic(expected = "even n")]
    fn odd_resolution_rejected() {
        HeadBoundary::new(head(), 17);
    }
}
