//! A tiny `--flag value` argument parser.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` / `--switch`
/// options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    options: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// An option that needs a value didn't get one.
    MissingValue(String),
    /// A required option is absent.
    Required(String),
    /// A value failed to parse.
    BadValue(String, String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand"),
            ArgError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgError::Required(k) => write!(f, "required option --{k} missing"),
            ArgError::BadValue(k, v) => write!(f, "bad value {v:?} for --{k}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (without the program name). `switch_names`
    /// lists flags that take no value.
    pub fn parse(raw: &[String], switch_names: &[&str]) -> Result<Args, ArgError> {
        let mut it = raw.iter();
        let command = it.next().ok_or(ArgError::MissingCommand)?.clone();
        let mut options = BTreeMap::new();
        let mut switches = Vec::new();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| ArgError::BadValue("<positional>".into(), tok.clone()))?;
            if switch_names.contains(&key) {
                switches.push(key.to_string());
            } else {
                let val = it
                    .next()
                    .ok_or_else(|| ArgError::MissingValue(key.to_string()))?;
                options.insert(key.to_string(), val.clone());
            }
        }
        Ok(Args {
            command,
            options,
            switches,
        })
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A required string option.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key).ok_or_else(|| ArgError::Required(key.into()))
    }

    /// A numeric option with a default.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::BadValue(key.into(), v.into())),
        }
    }

    /// An integer option with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::BadValue(key.into(), v.into())),
        }
    }

    /// Whether a value-less switch was present.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_options_switches() {
        let a = Args::parse(
            &raw("personalize --seed 42 --anechoic --grid 5"),
            &["anechoic"],
        )
        .unwrap();
        assert_eq!(a.command, "personalize");
        assert_eq!(a.get_u64("seed", 0).unwrap(), 42);
        assert_eq!(a.get_f64("grid", 1.0).unwrap(), 5.0);
        assert!(a.switch("anechoic"));
        assert!(!a.switch("room"));
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&raw("info"), &[]).unwrap();
        assert_eq!(a.get_f64("theta", 30.0).unwrap(), 30.0);
        assert!(a.get("table").is_none());
    }

    #[test]
    fn missing_command_rejected() {
        assert_eq!(Args::parse(&[], &[]).unwrap_err(), ArgError::MissingCommand);
    }

    #[test]
    fn missing_value_rejected() {
        let err = Args::parse(&raw("x --seed"), &[]).unwrap_err();
        assert_eq!(err, ArgError::MissingValue("seed".into()));
    }

    #[test]
    fn bad_number_rejected() {
        let a = Args::parse(&raw("x --seed banana"), &[]).unwrap();
        assert!(matches!(
            a.get_u64("seed", 0),
            Err(ArgError::BadValue(_, _))
        ));
    }

    #[test]
    fn required_option() {
        let a = Args::parse(&raw("x --table t.hrtf"), &[]).unwrap();
        assert_eq!(a.require("table").unwrap(), "t.hrtf");
        assert!(a.require("missing").is_err());
    }
}
