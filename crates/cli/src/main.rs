//! The `uniq` command-line binary. See [`uniq_cli`] for the interface.

#![forbid(unsafe_code)]

use uniq_cli::args::Args;
use uniq_cli::commands;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(&raw, &["anechoic", "near", "trace"]) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::usage());
            std::process::exit(2);
        }
    };
    match commands::run(&parsed) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
