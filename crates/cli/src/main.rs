//! The `uniq` command-line binary. See [`uniq_cli`] for the interface.

#![forbid(unsafe_code)]

use uniq_cli::args::Args;
use uniq_cli::commands;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // `profile` wraps another command (`uniq profile personalize …`), so
    // it is peeled off before Args::parse, which allows exactly one
    // positional.
    let (profiled, rest) = match raw.first().map(String::as_str) {
        Some("profile") => (true, &raw[1..]),
        _ => (false, &raw[..]),
    };
    if profiled && rest.is_empty() {
        eprintln!(
            "error: profile needs a command to run\n\n{}",
            commands::usage()
        );
        std::process::exit(2);
    }
    let parsed = match Args::parse(rest, &["anechoic", "near", "trace"]) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::usage());
            std::process::exit(2);
        }
    };
    let result = if profiled {
        commands::run_profile(&parsed)
    } else {
        commands::run(&parsed)
    };
    // Buffered sinks installed process-wide must not lose their tail.
    uniq_obs::flush_global_sink();
    match result {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
