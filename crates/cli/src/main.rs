//! The `uniq` command-line binary. See [`uniq_cli`] for the interface.

#![forbid(unsafe_code)]

use uniq_cli::args::Args;
use uniq_cli::commands;

/// The counting allocator behind `uniq memprof` — installed
/// unconditionally (recording stays off outside a measurement, costing
/// one relaxed atomic load per allocation on every other command).
#[global_allocator]
static ALLOC: uniq_memprof::CountingAllocator = uniq_memprof::CountingAllocator::new();

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // `trace` and `history` take positional file arguments, which
    // Args::parse rejects by design — they are dispatched on the raw argv
    // before any wrapper peeling. Their exit codes carry gate semantics
    // (0 ok, 1 finding, 2 usage), so they exit directly.
    match raw.first().map(String::as_str) {
        Some("trace") => std::process::exit(commands::trace_cmd(&raw[1..])),
        Some("history") => std::process::exit(commands::history_cmd(&raw[1..])),
        // `store` owns a verb sub-grammar (put/get/ls/verify/export/import)
        // with its own 0/1/2 exit contract, dispatched the same way.
        Some("store") => std::process::exit(commands::store_cmd(&raw[1..])),
        // `analyze` takes the analyzer's own option grammar and shares
        // its 0/1/2 gate contract.
        Some("analyze") => std::process::exit(commands::analyze_cmd(&raw[1..])),
        _ => {}
    }
    // `profile`, `faults` and `memprof` wrap another command (`uniq
    // memprof profile personalize …`), so wrapper words are peeled off
    // before Args::parse, which allows exactly one positional. Each
    // wrapper may appear once, in any order.
    let mut profiled = false;
    let mut faulted = false;
    let mut memprofed = false;
    let mut rest: &[String] = &raw[..];
    loop {
        match rest.first().map(String::as_str) {
            Some("profile") if !profiled => profiled = true,
            Some("faults") if !faulted => faulted = true,
            Some("memprof") if !memprofed => memprofed = true,
            _ => break,
        }
        rest = &rest[1..];
    }
    if (profiled || faulted || memprofed) && rest.is_empty() {
        eprintln!(
            "error: {} needs a command to run\n\n{}",
            if faulted {
                "faults"
            } else if memprofed {
                "memprof"
            } else {
                "profile"
            },
            commands::usage()
        );
        std::process::exit(2);
    }
    let parsed = match Args::parse(
        rest,
        &[
            "anechoic", "near", "trace", "no-skip", "no-cache", "shutdown",
        ],
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::usage());
            std::process::exit(2);
        }
    };
    let result = if memprofed {
        commands::run_memprof(&parsed, profiled, faulted)
    } else {
        match (profiled, faulted) {
            (true, true) => commands::run_profile_faults(&parsed),
            (true, false) => commands::run_profile(&parsed),
            (false, true) => commands::run_faults(&parsed),
            (false, false) => commands::run(&parsed),
        }
    };
    // Buffered sinks installed process-wide must not lose their tail.
    uniq_obs::flush_global_sink();
    // One shared mapping from outcome to exit status, so wrappers never
    // swallow a wrapped command's failure.
    let code = commands::exit_code(&result);
    match result {
        Ok(report) => println!("{report}"),
        Err(e) => eprintln!("error: {e}"),
    }
    if code != 0 {
        std::process::exit(code);
    }
}
