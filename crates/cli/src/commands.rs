//! CLI subcommand implementations.

use crate::args::Args;
use std::path::Path;
use std::sync::Arc;
use uniq_acoustics::signals::SignalKind;
use uniq_core::config::UniqConfig;
use uniq_core::degrade::DegradationPolicy;
use uniq_core::pipeline::{personalize_faulted_with_retry, personalize_with_retry};
use uniq_faults::FaultPlan;
use uniq_obs::report::Report;
use uniq_obs::sink::{JsonLinesSink, MemorySink, MultiSink, Sink, StderrSink};
use uniq_profile::ProfileSink;
use uniq_subjects::Subject;
use uniq_telemetry::ledger::{self, LedgerRecord};
use uniq_telemetry::TelemetrySink;

/// Runs a parsed command; returns a human-readable report or an error
/// message.
///
/// `--trace` streams a live span tree to stderr and appends an end-of-run
/// stage-timing/metrics summary; `--metrics-out FILE` writes every
/// observability event as JSON lines. Both observe the same run — neither
/// changes the pipeline's numeric output.
pub fn run(args: &Args) -> Result<String, String> {
    run_observed(args, None, dispatch)
}

/// `uniq faults <command> …`: runs the wrapped command with a fault plan
/// injected at the signal boundaries (see `uniq-faults`). Only
/// `personalize` supports injection; the degradation report is appended
/// to the command's output. The wrapped command's failure — and its
/// nonzero exit status — propagates unchanged (see [`exit_code`]).
pub fn run_faults(args: &Args) -> Result<String, String> {
    run_observed(args, None, dispatch_faulted)
}

/// Maps a command outcome to the process exit status. Shared by every
/// wrapper (`profile`, `faults`, and their compositions) so a wrapped
/// command that fails always surfaces a nonzero status — wrappers must
/// never swallow it.
pub fn exit_code<T>(result: &Result<T, String>) -> i32 {
    match result {
        Ok(_) => 0,
        Err(_) => 1,
    }
}

/// Runs `args` under the requested observability sinks plus an optional
/// `extra` sink (the profiler). One shared assembly point so `uniq
/// profile <command> --trace --metrics-out F` composes instead of the
/// inner scope shadowing the profiler (innermost sink wins in uniq-obs).
fn run_observed(
    args: &Args,
    extra: Option<Arc<dyn Sink>>,
    dispatch_fn: impl FnOnce(&Args) -> Result<String, String>,
) -> Result<String, String> {
    let trace = args.switch("trace");
    let metrics_out = args.get("metrics-out");
    let telemetry_out = args.get("telemetry-out");
    let telemetry_json = args.get("telemetry-json");
    let want_telemetry = telemetry_out.is_some() || telemetry_json.is_some();
    if !trace && metrics_out.is_none() && !want_telemetry {
        return match extra {
            Some(sink) => uniq_obs::with_sink(sink, || dispatch_fn(args)),
            None => dispatch_fn(args),
        };
    }

    let memory = Arc::new(MemorySink::new());
    let mut sinks: Vec<Arc<dyn Sink>> = vec![memory.clone()];
    if trace {
        sinks.push(Arc::new(StderrSink::new()));
    }
    if let Some(path) = metrics_out {
        let sink = JsonLinesSink::create(Path::new(path))
            .map_err(|e| format!("cannot create {path}: {e}"))?;
        sinks.push(Arc::new(sink));
    }
    let telemetry = if want_telemetry {
        let sink = Arc::new(TelemetrySink::new());
        sinks.push(sink.clone());
        Some(sink)
    } else {
        None
    };
    sinks.extend(extra);
    let multi = Arc::new(MultiSink::new(sinks));
    let result = uniq_obs::with_sink(multi.clone(), || dispatch_fn(args));
    // Push buffered sinks (JSON lines) to disk even on error paths.
    multi.flush();
    if let Some(sink) = telemetry {
        // The registry of a failed run is evidence — export regardless.
        let snapshot = sink.snapshot();
        if let Some(path) = telemetry_out {
            std::fs::write(
                Path::new(path),
                uniq_telemetry::expose::prometheus(&snapshot),
            )
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        if let Some(path) = telemetry_json {
            std::fs::write(
                Path::new(path),
                uniq_telemetry::expose::snapshot_json(&snapshot),
            )
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }
    if trace {
        eprintln!("\n{}", Report::from_events(&memory.events()));
    }
    result
}

/// `uniq analyze [OPTIONS]`: runs the whole-workspace static analyzer
/// (the same driver as the standalone `uniq-analyzer check`). Exit 0 =
/// clean, 1 = unsuppressed error findings, 2 = usage or I/O error.
pub fn analyze_cmd(args: &[String]) -> i32 {
    let usage = format!(
        "usage: uniq analyze [OPTIONS]\n\nOPTIONS:\n{}",
        uniq_analyzer::cli::OPTIONS_HELP
    );
    uniq_analyzer::cli::run_check(args, &usage)
}

/// `uniq trace report FILE`: rebuilds the causal span tree of a
/// `--metrics-out` JSONL file and prints the critical path and per-stage
/// self-time table. Exit 0 = complete tree, 1 = orphaned spans or an
/// unreadable trace, 2 = usage error.
pub fn trace_cmd(args: &[String]) -> i32 {
    const USAGE: &str = "usage: uniq trace report FILE";
    if args.first().map(String::as_str) != Some("report") {
        eprintln!("error: trace supports `report`\n{USAGE}");
        return 2;
    }
    let Some(path) = args.get(1) else {
        eprintln!("error: trace report needs a FILE\n{USAGE}");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return 2;
        }
    };
    match uniq_telemetry::trace::parse_trace(&text) {
        Ok(tree) => {
            println!("{}", tree.render_report());
            if tree.orphans.is_empty() {
                0
            } else {
                eprintln!(
                    "error: {} orphaned span(s) — broken causality",
                    tree.orphans.len()
                );
                1
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

/// `uniq history trend|compare FILE [--quality-tol X] [--latency-tol X]`:
/// the cross-run ledger gates. `trend` tests the newest record against
/// the median/MAD of its label's history; `compare` diffs the last two
/// records of that label. Exit 0 = clean, 1 = latency warning,
/// 2 = quality regression or usage error.
pub fn history_cmd(args: &[String]) -> i32 {
    const USAGE: &str =
        "usage: uniq history trend|compare FILE [--quality-tol X] [--latency-tol X]";
    let Some(mode) = args.first().map(String::as_str) else {
        eprintln!("error: history needs a subcommand\n{USAGE}");
        return 2;
    };
    if mode != "trend" && mode != "compare" {
        eprintln!("error: history supports `trend` and `compare`\n{USAGE}");
        return 2;
    }
    let Some(path) = args.get(1) else {
        eprintln!("error: history {mode} needs a FILE\n{USAGE}");
        return 2;
    };
    let mut quality_tol = ledger::DEFAULT_QUALITY_TOL;
    let mut latency_tol = ledger::DEFAULT_LATENCY_TOL;
    let mut it = args[2..].iter();
    while let Some(flag) = it.next() {
        let target = match flag.as_str() {
            "--quality-tol" => &mut quality_tol,
            "--latency-tol" => &mut latency_tol,
            other => {
                eprintln!("error: unknown history option {other:?}\n{USAGE}");
                return 2;
            }
        };
        match it.next().and_then(|v| v.parse::<f64>().ok()) {
            Some(v) => *target = v,
            None => {
                eprintln!("error: {flag} needs a numeric value\n{USAGE}");
                return 2;
            }
        }
    }
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return 2;
        }
    };
    let records = match ledger::read_history(&text) {
        Ok(records) => records,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return 2;
        }
    };
    let report = match mode {
        "trend" => ledger::trend(&records, quality_tol, latency_tol),
        _ => ledger::compare_last_two(&records, quality_tol, latency_tol),
    };
    println!("{}", report.render());
    report.exit_code
}

/// `uniq store <verb> …`: the content-addressed HRTF artifact store.
///
/// Verbs: `put` (personalize a subject and persist the `.uhrtf`
/// artifact), `get` (load by content key), `ls` (index listing),
/// `verify` (deep integrity sweep), `export` (artifact → `.uniqhrtf`
/// text table), `import` (text table → artifact). Exit 0 = ok,
/// 1 = failure or verification finding, 2 = usage error.
pub fn store_cmd(args: &[String]) -> i32 {
    const USAGE: &str = "usage: uniq store <verb> [options]\n\
         \x20 put    --store DIR --seed N [--anechoic] [--grid DEG] [--snr DB] [--history PATH]\n\
         \x20 get    --store DIR --key KEY [--out FILE.uhrtf] [--table FILE.uniqhrtf]\n\
         \x20 ls     --store DIR\n\
         \x20 verify --store DIR\n\
         \x20 export --store DIR --key KEY --out FILE.uniqhrtf\n\
         \x20 import --store DIR --table FILE.uniqhrtf [--seed N]";
    let parsed = match Args::parse(args, &["anechoic"]) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return 2;
        }
    };
    let result = match parsed.command.as_str() {
        "put" => store_put(&parsed),
        "get" => store_get(&parsed),
        "ls" => store_ls(&parsed),
        "verify" => store_verify(&parsed),
        "export" => store_export(&parsed),
        "import" => store_import(&parsed),
        "help" | "--help" => {
            println!("{USAGE}");
            return 0;
        }
        other => {
            eprintln!("error: unknown store verb {other:?}\n{USAGE}");
            return 2;
        }
    };
    uniq_obs::flush_global_sink();
    match result {
        Ok((report, code)) => {
            println!("{report}");
            code
        }
        Err(StoreCmdError::Usage(e)) => {
            eprintln!("error: {e}\n{USAGE}");
            2
        }
        Err(StoreCmdError::Run(e)) => {
            eprintln!("error: {e}");
            1
        }
    }
}

/// A store verb's failure, split by exit-code tier: bad invocation (2)
/// vs a runtime/integrity failure (1).
enum StoreCmdError {
    Usage(String),
    Run(String),
}

fn open_store(args: &Args) -> Result<uniq_store::Store, StoreCmdError> {
    let dir = args
        .require("store")
        .map_err(|e| StoreCmdError::Usage(e.to_string()))?;
    uniq_store::Store::open(Path::new(dir)).map_err(|e| StoreCmdError::Run(e.to_string()))
}

fn store_put(args: &Args) -> Result<(String, i32), StoreCmdError> {
    let store = open_store(args)?;
    let usage = |e: crate::args::ArgError| StoreCmdError::Usage(e.to_string());
    let seed = args.get_u64("seed", 42).map_err(usage)?;
    let grid = args.get_f64("grid", 5.0).map_err(usage)?;
    let snr = args.get_f64("snr", 35.0).map_err(usage)?;
    let cfg = UniqConfig {
        in_room: !args.switch("anechoic"),
        grid_step_deg: grid,
        snr_db: snr,
        ..UniqConfig::default()
    };
    let subject = Subject::from_seed(seed);
    let sw = uniq_obs::Stopwatch::start();
    let result = personalize_with_retry(&subject, &cfg, seed, 3)
        .map_err(|e| StoreCmdError::Run(format!("personalization failed: {e}")))?;
    let wall_seconds = sw.elapsed_seconds();
    let artifact = uniq_store::HrtfArtifact::from_result(seed, &result, cfg.content_hash(), None);
    let outcome = store
        .put(&artifact)
        .map_err(|e| StoreCmdError::Run(e.to_string()))?;
    let mut lines = vec![
        format!("key {}", outcome.key),
        format!(
            "subject {seed}: fingerprint {:#018x}, config hash {:#018x}, {} bytes{}",
            artifact.subject_fingerprint,
            artifact.config_hash,
            outcome.bytes,
            if outcome.deduped {
                " (deduplicated — content already stored)"
            } else {
                ""
            },
        ),
        format!(
            "store {}: {} artifact(s)",
            store.root().display(),
            store.len()
        ),
    ];
    let mut record = LedgerRecord::new("store-put");
    record.seed = seed;
    record.wall_seconds = wall_seconds;
    record.fingerprint = format!("{:#018x}", artifact.subject_fingerprint);
    record.store = Some(format!(
        "key {}, {} bytes, {}",
        outcome.key,
        outcome.bytes,
        if outcome.deduped { "deduped" } else { "new" }
    ));
    lines.extend(append_history(args, &record).map_err(StoreCmdError::Run)?);
    Ok((lines.join("\n"), 0))
}

fn store_get(args: &Args) -> Result<(String, i32), StoreCmdError> {
    let store = open_store(args)?;
    let key = args
        .require("key")
        .map_err(|e| StoreCmdError::Usage(e.to_string()))?;
    let artifact = store
        .get(key)
        .map_err(|e| StoreCmdError::Run(e.to_string()))?;
    let recomputed = artifact.fingerprint();
    let mut lines = vec![format!(
        "key {key}\n\
         seed {}, config hash {:#018x}, sample rate {} Hz\n\
         near grid: {} angles × {} taps; far grid: {} angles × {} taps\n\
         stamped fingerprint {:#018x}, recomputed {:#018x} ({})",
        artifact.seed,
        artifact.config_hash,
        artifact.sample_rate,
        artifact.near.len(),
        artifact.near.ir_len,
        artifact.far.len(),
        artifact.far.ir_len,
        artifact.subject_fingerprint,
        recomputed,
        if recomputed == artifact.subject_fingerprint {
            "match"
        } else {
            "MISMATCH"
        },
    )];
    if let Some(deg) = &artifact.degradation_json {
        lines.push(format!("degradation report: {deg}"));
    }
    if let Some(out) = args.get("out") {
        let bytes = store
            .get_bytes(key)
            .map_err(|e| StoreCmdError::Run(e.to_string()))?;
        std::fs::write(Path::new(out), bytes)
            .map_err(|e| StoreCmdError::Run(format!("cannot write {out}: {e}")))?;
        lines.push(format!("raw artifact written to {out}"));
    }
    if let Some(path) = args.get("table") {
        let table = artifact
            .to_table()
            .map_err(|e| StoreCmdError::Run(e.to_string()))?;
        uniq_core::io::save(&table, Path::new(path))
            .map_err(|e| StoreCmdError::Run(format!("cannot write {path}: {e}")))?;
        lines.push(format!("table written to {path}"));
    }
    let code = i32::from(recomputed != artifact.subject_fingerprint);
    Ok((lines.join("\n"), code))
}

fn store_ls(args: &Args) -> Result<(String, i32), StoreCmdError> {
    let store = open_store(args)?;
    let entries = store.scan();
    let mut lines = vec![format!(
        "store {}: {} artifact(s), fingerprint {:#018x}",
        store.root().display(),
        entries.len(),
        store.fingerprint(),
    )];
    for e in &entries {
        lines.push(format!(
            "  {}  seed {:>6}  subject {:016x}  config {:016x}  {:>8} bytes",
            e.key, e.seed, e.subject_fingerprint, e.config_hash, e.bytes,
        ));
    }
    Ok((lines.join("\n"), 0))
}

fn store_verify(args: &Args) -> Result<(String, i32), StoreCmdError> {
    let store = open_store(args)?;
    let report = store.verify();
    let mut lines = vec![format!(
        "verified {} artifact(s) in {}",
        report.entries,
        store.root().display(),
    )];
    for (key, err) in &report.failures {
        lines.push(format!("  CORRUPT {key}: {err}"));
    }
    if report.is_clean() {
        lines.push("store verify: ok".into());
        Ok((lines.join("\n"), 0))
    } else {
        lines.push(format!(
            "store verify: {} finding(s)",
            report.failures.len()
        ));
        Ok((lines.join("\n"), 1))
    }
}

fn store_export(args: &Args) -> Result<(String, i32), StoreCmdError> {
    let store = open_store(args)?;
    let usage = |e: crate::args::ArgError| StoreCmdError::Usage(e.to_string());
    let key = args.require("key").map_err(usage)?;
    let out = args.require("out").map_err(usage)?;
    let artifact = store
        .get(key)
        .map_err(|e| StoreCmdError::Run(e.to_string()))?;
    let table = artifact
        .to_table()
        .map_err(|e| StoreCmdError::Run(e.to_string()))?;
    uniq_core::io::save(&table, Path::new(out))
        .map_err(|e| StoreCmdError::Run(format!("cannot write {out}: {e}")))?;
    Ok((
        format!(
            "exported {key} → {out} ({} near + {} far angles)",
            table.near().len(),
            table.far().len(),
        ),
        0,
    ))
}

fn store_import(args: &Args) -> Result<(String, i32), StoreCmdError> {
    let store = open_store(args)?;
    let usage = |e: crate::args::ArgError| StoreCmdError::Usage(e.to_string());
    let path = args.require("table").map_err(usage)?;
    let seed = args.get_u64("seed", 0).map_err(usage)?;
    let table = uniq_core::io::load(Path::new(path))
        .map_err(|e| StoreCmdError::Run(format!("cannot load {path}: {e}")))?;
    // A text table carries no run metadata, so the artifact's provenance
    // (radius, attempts, localization, config hash) is zeroed.
    let artifact = uniq_store::HrtfArtifact::from_table(seed, &table, 0);
    let outcome = store
        .put(&artifact)
        .map_err(|e| StoreCmdError::Run(e.to_string()))?;
    Ok((
        format!(
            "imported {path} → key {} ({} bytes{})",
            outcome.key,
            outcome.bytes,
            if outcome.deduped {
                ", deduplicated"
            } else {
                ""
            },
        ),
        0,
    ))
}

/// Appends a ledger record for a finished run when `--history PATH` was
/// given (pass `--history default` for `bench_results/history.jsonl`).
fn append_history(args: &Args, record: &LedgerRecord) -> Result<Option<String>, String> {
    let Some(path) = args.get("history") else {
        return Ok(None);
    };
    let path = if path == "default" {
        ledger::DEFAULT_HISTORY_FILE
    } else {
        path
    };
    ledger::append(Path::new(path), record).map_err(|e| format!("cannot append to {path}: {e}"))?;
    Ok(Some(format!("ledger record appended to {path}")))
}

/// `uniq profile <command> …`: runs any subcommand under a
/// [`ProfileSink`] and appends the per-stage latency table to the
/// command's own output. `--profile-out FILE` additionally writes the
/// machine-readable JSON report, `--flame-out FILE` the collapsed-stack
/// lines (flamegraph input). Both files are written even when the
/// profiled command fails — the profile of a failed run is evidence.
///
/// Profiling observes the exact same run the bare command would execute:
/// the numeric output is bit-identical (asserted by the workspace
/// `profiling` integration test).
pub fn run_profile(args: &Args) -> Result<String, String> {
    profile_with(args, dispatch)
}

/// `uniq profile faults <command> …`: the profiler wrapped around a
/// faulted run — both layers compose, and the wrapped command's failure
/// still propagates.
pub fn run_profile_faults(args: &Args) -> Result<String, String> {
    profile_with(args, dispatch_faulted)
}

fn profile_with(
    args: &Args,
    dispatch_fn: fn(&Args) -> Result<String, String>,
) -> Result<String, String> {
    let profile = Arc::new(ProfileSink::new());
    let result = run_observed(args, Some(profile.clone()), dispatch_fn);
    let report = profile.report();
    if let Some(path) = args.get("profile-out") {
        std::fs::write(Path::new(path), report.to_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = args.get("flame-out") {
        std::fs::write(Path::new(path), report.collapsed_stacks())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    match result {
        Ok(output) => Ok(format!("{output}\n\n{}", report.render_table())),
        Err(e) => Err(e),
    }
}

/// `uniq memprof [profile] [faults] <command> …`: runs the wrapped
/// command under the counting allocator and appends the per-stage
/// allocation table to its output. `--alloc-out FILE` writes the
/// machine-readable snapshot JSON, `--alloc-flame-out FILE`
/// bytes-weighted collapsed-stack lines (call paths when composed with
/// `profile`, bare stage frames otherwise). Composes with every
/// observability flag; when `profile` is in the stack the latency table
/// grows allocs/alloc-bytes columns and `--profile-out` JSON an `alloc`
/// section.
pub fn run_memprof(args: &Args, profiled: bool, faulted: bool) -> Result<String, String> {
    if !uniq_memprof::installed() {
        return Err(
            "memprof: the counting allocator is not installed in this binary (build the `uniq` \
             binary, whose main.rs declares it as #[global_allocator])"
                .to_string(),
        );
    }
    let dispatch_fn: fn(&Args) -> Result<String, String> =
        if faulted { dispatch_faulted } else { dispatch };
    let profile = profiled.then(|| Arc::new(ProfileSink::new()));
    // Stage attribution rides on the span stack, and spans are inert with
    // no sink installed — so a memory-only run installs the no-op
    // stage-tracking sink.
    let extra: Arc<dyn Sink> = match &profile {
        Some(sink) => sink.clone(),
        None => Arc::new(uniq_memprof::StageTrackingSink),
    };
    let mut snap = uniq_memprof::AllocSnapshot::default();
    let result = run_observed(args, Some(extra), |args| {
        // Measure the dispatch only (sink assembly and report rendering
        // stay out), and emit the summary while the sinks are still
        // installed so telemetry exports carry the alloc aggregates.
        let (result, measured) = uniq_memprof::measure(|| dispatch_fn(args));
        measured.emit_obs_summary();
        snap = measured;
        result
    });
    if let Some(path) = args.get("alloc-out") {
        std::fs::write(Path::new(path), snap.to_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    match &profile {
        Some(sink) => {
            let mut report = sink.report();
            report.attach_alloc(snap);
            if let Some(path) = args.get("alloc-flame-out") {
                std::fs::write(Path::new(path), report.alloc_collapsed_stacks())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
            }
            if let Some(path) = args.get("profile-out") {
                std::fs::write(Path::new(path), report.to_json())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
            }
            if let Some(path) = args.get("flame-out") {
                std::fs::write(Path::new(path), report.collapsed_stacks())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
            }
            result.map(|output| format!("{output}\n\n{}", report.render_table()))
        }
        None => {
            if let Some(path) = args.get("alloc-flame-out") {
                // No profiler, no call paths: one frame per stage.
                let mut lines = String::new();
                for (stage, alloc) in &snap.stages {
                    if alloc.bytes > 0 {
                        lines.push_str(&format!("{stage} {}\n", alloc.bytes));
                    }
                }
                if snap.unattributed.bytes > 0 {
                    lines.push_str(&format!("(unattributed) {}\n", snap.unattributed.bytes));
                }
                std::fs::write(Path::new(path), lines)
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
            }
            result.map(|output| format!("{output}\n\n{}", snap.render_table()))
        }
    }
}

fn dispatch(args: &Args) -> Result<String, String> {
    match args.command.as_str() {
        "personalize" => personalize_cmd(args),
        "batch" => batch_cmd(args),
        "info" => info_cmd(args),
        "render" => render_cmd(args),
        "aoa" => aoa_cmd(args),
        "serve" => serve_cmd(args),
        "loadgen" => loadgen_cmd(args),
        "help" | "--help" => Ok(usage()),
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    }
}

/// `uniq serve`: a long-running sharded personalization server. Prints
/// the bound address immediately (and to `--addr-file` when given, so
/// scripts binding port 0 can discover it), then blocks until a client
/// sends a protocol `{"type":"shutdown"}` request, drains in-flight
/// work, and reports totals. Exit is always clean (0) after a drain.
fn serve_cmd(args: &Args) -> Result<String, String> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:0");
    let shards = args.get_u64("shards", 2).map_err(|e| e.to_string())? as usize;
    let queue_depth = args.get_u64("queue-depth", 32).map_err(|e| e.to_string())? as usize;
    let grid = args.get_f64("grid", 5.0).map_err(|e| e.to_string())?;
    let snr = args.get_f64("snr", 35.0).map_err(|e| e.to_string())?;
    let base = UniqConfig {
        in_room: !args.switch("anechoic"),
        grid_step_deg: grid,
        snr_db: snr,
        ..UniqConfig::default()
    };
    let fault_hook = match args.get("fault-plan") {
        Some(spec) => {
            let fault_seed = args.get_u64("fault-seed", 42).map_err(|e| e.to_string())?;
            let plan =
                FaultPlan::parse(spec, fault_seed).map_err(|e| format!("--fault-plan: {e}"))?;
            Some(Arc::new(plan) as Arc<dyn uniq_core::FaultHook + Send + Sync>)
        }
        None => None,
    };
    let cfg = uniq_serve::ServeConfig {
        shards,
        queue_depth,
        base,
        store_dir: args.get("store").map(std::path::PathBuf::from),
        fault_hook,
        ..uniq_serve::ServeConfig::default()
    };
    let cached = cfg.store_dir.is_some();

    let sw = uniq_obs::Stopwatch::start();
    let server = uniq_serve::Server::start(addr, cfg).map_err(|e| e.to_string())?;
    let bound = server.local_addr();
    // The address goes out *before* the blocking wait — it is how
    // clients (and the CI smoke) find a port-0 server.
    println!(
        "serving on {bound} ({shards} shard(s), queue depth {queue_depth}, cache {})",
        if cached { "on" } else { "off" }
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if let Some(path) = args.get("addr-file") {
        std::fs::write(Path::new(path), format!("{bound}\n"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }

    server.wait_shutdown_requested();
    let drain = server.shutdown();
    let wall_seconds = sw.elapsed_seconds();

    let stats = drain.stats;
    let fingerprint = uniq_serve::fold_fingerprints(&drain.fingerprints);
    let mut lines = vec![format!(
        "serve drained after {wall_seconds:.3}s: {} request(s), {} ok, {} cached, \
         {} computed, {} shed, {} error(s)\n\
         {} subject(s), population fingerprint {fingerprint:#018x}",
        stats.requests,
        stats.ok,
        stats.cache_hits,
        stats.computed,
        stats.shed,
        stats.errors,
        drain.fingerprints.len(),
    )];
    let mut record = LedgerRecord::new("serve");
    record.threads = shards as u64;
    record.wall_seconds = wall_seconds;
    record.fingerprint = format!("{fingerprint:#018x}");
    record
        .quality
        .insert("requests".into(), stats.requests as f64);
    record.quality.insert("ok".into(), stats.ok as f64);
    record
        .quality
        .insert("cache_hits".into(), stats.cache_hits as f64);
    record.quality.insert("shed".into(), stats.shed as f64);
    record.quality.insert("errors".into(), stats.errors as f64);
    lines.extend(append_history(args, &record)?);
    Ok(lines.join("\n"))
}

/// `uniq loadgen`: the deterministic closed-loop load harness. Drives a
/// live server with a seeded subject population and prints throughput
/// plus the p50/p99 request-latency table from `uniq-profile`.
fn loadgen_cmd(args: &Args) -> Result<String, String> {
    let parse_opt_f64 = |key: &str| -> Result<Option<f64>, String> {
        args.get(key)
            .map(|v| {
                v.parse::<f64>()
                    .map_err(|_| format!("bad value {v:?} for --{key}"))
            })
            .transpose()
    };
    let cfg = uniq_serve::LoadgenConfig {
        addr: args.require("addr").map_err(|e| e.to_string())?.to_string(),
        subjects: args.get_u64("subjects", 8).map_err(|e| e.to_string())?,
        seed_base: args.get_u64("seed", 42).map_err(|e| e.to_string())?,
        clients: args.get_u64("clients", 4).map_err(|e| e.to_string())? as usize,
        repeat: args.get_f64("repeat", 0.25).map_err(|e| e.to_string())?,
        grid_step_deg: parse_opt_f64("grid")?,
        snr_db: parse_opt_f64("snr")?,
        anechoic: args.switch("anechoic").then_some(true),
        no_cache: args.switch("no-cache"),
        shutdown_after: args.switch("shutdown"),
    };
    let report = uniq_serve::loadgen::run(&cfg).map_err(|e| e.to_string())?;
    if report.fingerprint_conflicts > 0 {
        return Err(format!(
            "server is non-deterministic: {} fingerprint conflict(s) across {} subject(s)",
            report.fingerprint_conflicts,
            report.fingerprints.len(),
        ));
    }
    let fingerprint = uniq_serve::fold_fingerprints(&report.fingerprints);
    let mut lines = vec![format!(
        "loadgen {} request(s) over {} client(s) in {:.3}s: {} ok, {} cached, \
         {} overloaded, {} error(s)\n\
         {:.2} subjects/s, {:.2} requests/s, latency p50 {:.1}ms p99 {:.1}ms\n\
         {} subject(s), population fingerprint {fingerprint:#018x}",
        report.requests,
        cfg.clients,
        report.wall_seconds,
        report.ok,
        report.cache_hits,
        report.overloaded,
        report.errors,
        report.subjects_per_second,
        report.requests_per_second,
        report.p50_ms,
        report.p99_ms,
        report.fingerprints.len(),
    )];
    lines.push(String::new());
    lines.push(report.profile.render_table());
    let mut record = LedgerRecord::new("loadgen");
    record.seed = cfg.seed_base;
    record.threads = cfg.clients as u64;
    record.wall_seconds = report.wall_seconds;
    record.fingerprint = format!("{fingerprint:#018x}");
    record
        .quality
        .insert("subjects_per_second".into(), report.subjects_per_second);
    record
        .quality
        .insert("cache_hits".into(), report.cache_hits as f64);
    record
        .quality
        .insert("overloaded".into(), report.overloaded as f64);
    record.quality.insert("p50_ms".into(), report.p50_ms);
    record.quality.insert("p99_ms".into(), report.p99_ms);
    lines.extend(append_history(args, &record)?);
    Ok(lines.join("\n"))
}

fn dispatch_faulted(args: &Args) -> Result<String, String> {
    match args.command.as_str() {
        "personalize" => personalize_faulted_cmd(args),
        "help" | "--help" => Ok(usage()),
        other => Err(format!(
            "`faults` wraps personalize only, not {other:?}\n\n{}",
            usage()
        )),
    }
}

fn personalize_faulted_cmd(args: &Args) -> Result<String, String> {
    let seed = args.get_u64("seed", 42).map_err(|e| e.to_string())?;
    let grid = args.get_f64("grid", 5.0).map_err(|e| e.to_string())?;
    let snr = args.get_f64("snr", 35.0).map_err(|e| e.to_string())?;
    let cfg = UniqConfig {
        in_room: !args.switch("anechoic"),
        grid_step_deg: grid,
        snr_db: snr,
        ..UniqConfig::default()
    };

    let spec = args.require("fault-plan").map_err(|e| e.to_string())?;
    let fault_seed = args
        .get_u64("fault-seed", seed)
        .map_err(|e| e.to_string())?;
    let plan = FaultPlan::parse(spec, fault_seed).map_err(|e| format!("--fault-plan: {e}"))?;
    let retries = args
        .get_u64("fault-retries", 1)
        .map_err(|e| e.to_string())? as usize;
    let policy = DegradationPolicy {
        stop_retries: retries,
        skip_failed_stops: !args.switch("no-skip"),
        ..DegradationPolicy::default()
    };

    let subject = Subject::from_seed(seed);
    let faulted = personalize_faulted_with_retry(&subject, &cfg, seed, &plan, &policy, 3)
        .map_err(|e| format!("personalization failed under faults: {e}"))?;

    if let Some(path) = args.get("fault-report") {
        std::fs::write(Path::new(path), faulted.degradation.to_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }

    let result = &faulted.result;
    let mut lines = vec![format!(
        "personalized subject {seed} under fault plan {spec:?} in {} attempt(s)\n\
         fitted head: a={:.3} b={:.3} c={:.3} (residual {:.1}°)",
        result.attempts,
        result.fusion.head.a,
        result.fusion.head.b,
        result.fusion.head.c,
        result.fusion.mean_residual_deg,
    )];
    lines.push(format!("{}", faulted.degradation));
    if let Some(out) = args.get("out") {
        uniq_core::io::save(&result.hrtf, Path::new(out))
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        lines.push(format!(
            "table written to {out} ({} near + {} far angles)",
            result.hrtf.near().len(),
            result.hrtf.far().len(),
        ));
    }
    let deg = &faulted.degradation;
    let mut record = LedgerRecord::new("personalize-faulted");
    record.seed = seed;
    record.fingerprint = format!("{:#018x}", single_fingerprint(seed, result));
    record.quality.insert(
        "fusion_mean_residual_deg".into(),
        result.fusion.mean_residual_deg,
    );
    record
        .quality
        .insert("mean_stop_quality".into(), deg.mean_quality);
    record.degradation = Some(format!(
        "stops {}/{} kept, {} dropped, {} retries, classes [{}]",
        deg.stops_used,
        deg.stops_planned,
        deg.stops_dropped,
        deg.retries,
        deg.fault_classes.join(","),
    ));
    lines.extend(append_history(args, &record)?);
    Ok(lines.join("\n"))
}

/// The usage text.
pub fn usage() -> String {
    "uniq — HRTF personalization (SIGCOMM'21 reproduction)\n\
     \n\
     commands:\n\
     \x20 personalize --seed N --out FILE [--anechoic] [--grid DEG] [--snr DB]\n\
     \x20     run the full pipeline for synthetic subject N, save the table\n\
     \x20 batch --subjects N [--seed BASE] [--threads T] [--anechoic] [--grid DEG]\n\
     \x20       [--snr DB] [--scaling T1,T2,..] [--out FILE]\n\
     \x20     personalize N synthetic subjects concurrently (T=0 or unset: auto\n\
     \x20     from UNIQ_THREADS / available parallelism); --scaling re-runs the\n\
     \x20     batch at each pool size and writes a throughput report JSON\n\
     \x20 info --table FILE\n\
     \x20     summarize a saved .uniqhrtf table\n\
     \x20 render --table FILE --theta DEG --signal noise|music|speech --out FILE.wav\n\
     \x20         [--near] [--duration S] [--seed N]\n\
     \x20     spatialize a test signal through the table, write stereo WAV\n\
     \x20 aoa --table FILE --theta DEG --signal noise|music|speech [--seed N]\n\
     \x20     simulate an unknown ambient source and estimate its direction\n\
     \n\
     persistence:\n\
     \x20 store put --store DIR --seed N [--anechoic] [--grid DEG] [--snr DB]\n\
     \x20     personalize subject N and persist the result as a checksummed\n\
     \x20     .uhrtf artifact, content-addressed and deduplicated\n\
     \x20 store get --store DIR --key KEY [--out F.uhrtf] [--table F.uniqhrtf]\n\
     \x20     load an artifact by content key; print provenance + fingerprint\n\
     \x20 store ls --store DIR          list the index (+ store fingerprint)\n\
     \x20 store verify --store DIR      deep integrity sweep (exit 1 on findings)\n\
     \x20 store export --store DIR --key KEY --out F.uniqhrtf\n\
     \x20 store import --store DIR --table F.uniqhrtf [--seed N]\n\
     \x20     round-trip artifacts through the .uniqhrtf text format\n\
     \n\
     serving:\n\
     \x20 serve [--addr HOST:PORT] [--shards N] [--queue-depth N] [--store DIR]\n\
     \x20       [--grid DEG] [--snr DB] [--anechoic] [--fault-plan SPEC]\n\
     \x20       [--fault-seed N] [--addr-file FILE] [--history PATH]\n\
     \x20     long-running sharded personalization server (line-delimited JSON\n\
     \x20     over TCP); port 0 binds an ephemeral port, printed immediately and\n\
     \x20     written to --addr-file; --store enables the content-addressed\n\
     \x20     result cache; drains and exits 0 on a protocol shutdown request\n\
     \x20 loadgen --addr HOST:PORT [--subjects N] [--seed BASE] [--clients N]\n\
     \x20         [--repeat R] [--grid DEG] [--snr DB] [--anechoic] [--no-cache]\n\
     \x20         [--shutdown] [--history PATH]\n\
     \x20     seeded closed-loop load generator: N subjects over concurrent\n\
     \x20     clients, fraction R re-requested to exercise the cache; prints\n\
     \x20     throughput + p50/p99 latency; --shutdown stops the server after\n\
     \n\
     quality gates:\n\
     \x20 analyze [--strict] [--format text|json] [--out FILE] [--threads N]\n\
     \x20     whole-workspace static analysis: line-local rules plus the\n\
     \x20     call-graph determinism / panic-reachability / lock-order /\n\
     \x20     hot-path-allocation lints (exit 1 on findings)\n\
     \n\
     observability (any command):\n\
     \x20 --trace              live span tree on stderr + end-of-run stage summary\n\
     \x20 --metrics-out FILE   write spans/metrics/counters as JSON lines\n\
     \x20 --telemetry-out FILE write the aggregated registry as Prometheus text\n\
     \x20 --telemetry-json FILE write the aggregated registry as a JSON snapshot\n\
     \n\
     telemetry:\n\
     \x20 trace report FILE\n\
     \x20     rebuild the causal span tree of a --metrics-out file; print the\n\
     \x20     critical path and per-stage self time (exit 1 on orphaned spans)\n\
     \x20 history trend|compare FILE [--quality-tol X] [--latency-tol X]\n\
     \x20     gate the newest run ledger record against its history (trend:\n\
     \x20     median/MAD drift; compare: last two records); exit 0 ok,\n\
     \x20     1 latency warning, 2 quality regression\n\
     \x20 --history PATH       (personalize/batch/faults) append a run record to\n\
     \x20     the ledger (PATH `default` = bench_results/history.jsonl)\n\
     \n\
     profiling:\n\
     \x20 profile <command> [args...] [--profile-out FILE] [--flame-out FILE]\n\
     \x20     run any command under the profiler; prints a per-stage latency\n\
     \x20     table (count/total/p50/p90/p99/max, per-thread attribution) and\n\
     \x20     optionally writes JSON (--profile-out) and collapsed-stack\n\
     \x20     flamegraph lines (--flame-out)\n\
     \n\
     memory profiling:\n\
     \x20 memprof <command> [args...] [--alloc-out FILE] [--alloc-flame-out FILE]\n\
     \x20     run any command under the counting allocator; prints a per-stage\n\
     \x20     allocation table (allocs/bytes/frees/peak-live/largest, attributed\n\
     \x20     to the active span) and optionally writes the snapshot JSON\n\
     \x20     (--alloc-out) and bytes-weighted collapsed-stack lines\n\
     \x20     (--alloc-flame-out); composes with profile and faults: `uniq\n\
     \x20     memprof profile personalize …` adds alloc columns to the latency\n\
     \x20     table and an alloc section to --profile-out JSON\n\
     \n\
     fault injection:\n\
     \x20 faults personalize --fault-plan SPEC [--fault-seed N] [--fault-retries R]\n\
     \x20        [--no-skip] [--fault-report FILE] [--out FILE] [usual flags...]\n\
     \x20     personalize under a deterministic fault plan with graceful\n\
     \x20     degradation (skip/retry corrupted stops, re-weighted fusion);\n\
     \x20     prints the degradation report, optionally as JSON (--fault-report)\n\
     \x20     SPEC: comma-separated name[:param[:param]][@stop][~], e.g.\n\
     \x20     \"drop@2,snr:-12@4,clip:0.35\" — classes: drop truncate clip snr\n\
     \x20     gyro-dropout gyro-sat jitter dup reorder; trailing ~ = transient\n\
     \x20     (heals on retry); composes with profile: uniq profile faults …\n"
        .to_string()
}

fn signal_kind(name: &str) -> Result<SignalKind, String> {
    match name {
        "noise" | "white" | "white-noise" => Ok(SignalKind::WhiteNoise),
        "music" => Ok(SignalKind::Music),
        "speech" => Ok(SignalKind::Speech),
        other => Err(format!(
            "unknown signal kind {other:?} (noise|music|speech)"
        )),
    }
}

fn personalize_cmd(args: &Args) -> Result<String, String> {
    let seed = args.get_u64("seed", 42).map_err(|e| e.to_string())?;
    let out = args.require("out").map_err(|e| e.to_string())?;
    let grid = args.get_f64("grid", 5.0).map_err(|e| e.to_string())?;
    let snr = args.get_f64("snr", 35.0).map_err(|e| e.to_string())?;
    let cfg = UniqConfig {
        in_room: !args.switch("anechoic"),
        grid_step_deg: grid,
        snr_db: snr,
        ..UniqConfig::default()
    };

    let subject = Subject::from_seed(seed);
    let sw = uniq_obs::Stopwatch::start();
    let result = personalize_with_retry(&subject, &cfg, seed, 3)
        .map_err(|e| format!("personalization failed: {e}"))?;
    let wall_seconds = sw.elapsed_seconds();
    uniq_core::io::save(&result.hrtf, Path::new(out))
        .map_err(|e| format!("cannot write {out}: {e}"))?;

    let errs: Vec<f64> = result
        .localization
        .iter()
        .map(|(t, e)| uniq_geometry::vec2::angle_diff_deg(*t, *e))
        .collect();
    let loc_median = uniq_dsp::stats::median(&errs);
    let mut lines = vec![format!(
        "personalized subject {seed} in {} attempt(s)\n\
         fitted head: a={:.3} b={:.3} c={:.3} (residual {:.1}°)\n\
         localization median {loc_median:.1}°\n\
         table written to {out} ({} near + {} far angles)",
        result.attempts,
        result.fusion.head.a,
        result.fusion.head.b,
        result.fusion.head.c,
        result.fusion.mean_residual_deg,
        result.hrtf.near().len(),
        result.hrtf.far().len(),
    )];
    let mut record = LedgerRecord::new("personalize");
    record.seed = seed;
    record.threads = cfg.threads as u64;
    record.wall_seconds = wall_seconds;
    record.fingerprint = format!("{:#018x}", single_fingerprint(seed, &result));
    record
        .quality
        .insert("localization_median_deg".into(), loc_median);
    record.quality.insert(
        "fusion_mean_residual_deg".into(),
        result.fusion.mean_residual_deg,
    );
    record.quality.insert("radius_m".into(), result.radius_m);
    record
        .quality
        .insert("attempts".into(), result.attempts as f64);
    lines.extend(append_history(args, &record)?);
    Ok(lines.join("\n"))
}

/// One personalization result digested through the batch fingerprint —
/// every HRIR bit, localization estimate, and the radius in one number.
fn single_fingerprint(seed: u64, result: &uniq_core::pipeline::PersonalizationResult) -> u64 {
    uniq_core::batch::hrtf_fingerprint(&[uniq_core::batch::BatchOutcome {
        seed,
        result: Ok(result.clone()),
        seconds: 0.0,
    }])
}

/// Renders a [`ScalingReport`] as a JSON document (fingerprints in hex so
/// consumers never lose bits to double precision).
fn scaling_json(report: &uniq_core::batch::ScalingReport, seed_base: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"subjects\": {},\n", report.subjects));
    out.push_str(&format!("  \"seed_base\": {seed_base},\n"));
    out.push_str(&format!("  \"deterministic\": {},\n", report.deterministic));
    out.push_str("  \"points\": [\n");
    for (i, p) in report.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"seconds\": {:.6}, \"subjects_per_second\": {:.6}, \"fingerprint\": \"{:#018x}\"}}{}\n",
            p.threads,
            p.seconds,
            p.subjects_per_second,
            p.fingerprint,
            if i + 1 < report.points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn batch_cmd(args: &Args) -> Result<String, String> {
    let subjects = args.get_u64("subjects", 4).map_err(|e| e.to_string())?;
    if subjects == 0 {
        return Err("batch needs at least one subject".into());
    }
    let base = args.get_u64("seed", 42).map_err(|e| e.to_string())?;
    let threads = args.get_u64("threads", 0).map_err(|e| e.to_string())? as usize;
    let grid = args.get_f64("grid", 15.0).map_err(|e| e.to_string())?;
    let snr = args.get_f64("snr", 40.0).map_err(|e| e.to_string())?;
    // Subject-level parallelism only: each worker personalizes whole
    // subjects, so the per-subject pipeline runs sequentially (threads: 1)
    // to avoid oversubscribing the pool.
    let cfg = UniqConfig {
        in_room: !args.switch("anechoic"),
        grid_step_deg: grid,
        snr_db: snr,
        threads: 1,
        ..UniqConfig::default()
    };
    let seeds: Vec<u64> = (0..subjects).map(|i| base.wrapping_add(i)).collect();

    if let Some(list) = args.get("scaling") {
        let counts: Vec<usize> = list
            .split(',')
            .map(|t| t.trim().parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|_| format!("bad --scaling list {list:?} (want e.g. 1,2,4,8)"))?;
        if counts.is_empty() {
            return Err("--scaling list is empty".into());
        }
        let report = uniq_core::batch::scaling_sweep(&seeds, &cfg, &counts, 3);
        let out = args
            .get("out")
            .unwrap_or("bench_results/batch_scaling.json");
        let path = Path::new(out);
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
        std::fs::write(path, scaling_json(&report, base))
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        let mut lines = vec![format!(
            "batch scaling: {} subjects (seeds {base}..{})",
            report.subjects,
            base.wrapping_add(subjects - 1),
        )];
        let baseline = report.points[0].seconds;
        for p in &report.points {
            lines.push(format!(
                "  threads {:>2}: {:>7.2}s  {:.2} subj/s  speedup {:.2}x",
                p.threads,
                p.seconds,
                p.subjects_per_second,
                baseline / p.seconds.max(1e-12),
            ));
        }
        lines.push(format!(
            "outputs bit-identical across pool sizes: {}",
            if report.deterministic {
                "yes"
            } else {
                "NO — determinism contract violated"
            }
        ));
        lines.push(format!("report written to {out}"));
        return Ok(lines.join("\n"));
    }

    let pool_size = uniq_par::pool(threads).threads();
    let start = std::time::Instant::now();
    let outcomes = uniq_core::batch::personalize_batch(&seeds, &cfg, threads, 3);
    let total = start.elapsed().as_secs_f64();

    let mut lines = vec![format!(
        "batch: {subjects} subject(s) on {pool_size} thread(s)"
    )];
    let mut failed = 0usize;
    for o in &outcomes {
        match &o.result {
            Ok(r) => lines.push(format!(
                "  subject {:>4}: ok   {:.2}s  {} attempt(s), radius {:.2} m",
                o.seed, o.seconds, r.attempts, r.radius_m
            )),
            Err(e) => {
                failed += 1;
                lines.push(format!(
                    "  subject {:>4}: FAIL {:.2}s  {e}",
                    o.seed, o.seconds
                ));
            }
        }
    }
    lines.push(format!(
        "{}/{} succeeded in {total:.2}s ({:.2} subjects/s)",
        outcomes.len() - failed,
        outcomes.len(),
        outcomes.len() as f64 / total.max(1e-12),
    ));
    let mut record = LedgerRecord::new("batch");
    record.seed = base;
    record.threads = pool_size as u64;
    record.wall_seconds = total;
    record.fingerprint = format!("{:#018x}", uniq_core::batch::hrtf_fingerprint(&outcomes));
    record.quality.insert("subjects".into(), subjects as f64);
    record.quality.insert("failures".into(), failed as f64);
    lines.extend(append_history(args, &record)?);
    Ok(lines.join("\n"))
}

fn load_table(args: &Args) -> Result<uniq_core::hrtf::PersonalHrtf, String> {
    let path = args.require("table").map_err(|e| e.to_string())?;
    uniq_core::io::load(Path::new(path)).map_err(|e| format!("cannot load {path}: {e}"))
}

fn info_cmd(args: &Args) -> Result<String, String> {
    let t = load_table(args)?;
    let head = t.head();
    Ok(format!(
        "UNIQ HRTF table\n\
         sample rate: {} Hz\n\
         head parameters: a={:.3} m, b={:.3} m, c={:.3} m\n\
         near-field bank: {} angles ({:.0}°..{:.0}°), {} taps per HRIR\n\
         far-field bank:  {} angles",
        t.sample_rate(),
        head.a,
        head.b,
        head.c,
        t.near().len(),
        t.near().angles().first().copied().unwrap_or(0.0),
        t.near().angles().last().copied().unwrap_or(0.0),
        t.near().irs()[0].len(),
        t.far().len(),
    ))
}

fn render_cmd(args: &Args) -> Result<String, String> {
    let t = load_table(args)?;
    let theta = args.get_f64("theta", 45.0).map_err(|e| e.to_string())?;
    let duration = args.get_f64("duration", 1.0).map_err(|e| e.to_string())?;
    let seed = args.get_u64("seed", 7).map_err(|e| e.to_string())?;
    let kind = signal_kind(args.get("signal").unwrap_or("music"))?;
    let out = args.require("out").map_err(|e| e.to_string())?;

    let sig = uniq_acoustics::signals::generate(kind, duration, t.sample_rate(), seed);
    let rendered = t.synthesize(&sig, theta, !args.switch("near"));
    uniq_render::wav::write_wav(&rendered, t.sample_rate(), Path::new(out))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    Ok(format!(
        "rendered {:.1}s of {} from θ={theta}° ({}) → {out}",
        duration,
        kind.label(),
        if args.switch("near") {
            "near field"
        } else {
            "far field"
        },
    ))
}

fn aoa_cmd(args: &Args) -> Result<String, String> {
    let t = load_table(args)?;
    let theta = args.get_f64("theta", 60.0).map_err(|e| e.to_string())?;
    let seed = args.get_u64("seed", 11).map_err(|e| e.to_string())?;
    let kind = signal_kind(args.get("signal").unwrap_or("speech"))?;

    // Simulate an ambient source heard through the *table's own* HRTF —
    // the best available stand-in for the real ear signals when only the
    // table file exists.
    let cfg = UniqConfig {
        grid_step_deg: 5.0,
        ..UniqConfig::default()
    };
    let sig = uniq_acoustics::signals::generate(kind, 0.4, t.sample_rate(), seed);
    let rendered = t.synthesize(&sig, theta, true);
    let rec = uniq_acoustics::measure::BinauralRecording {
        left: rendered.left,
        right: rendered.right,
    };
    let est = uniq_core::aoa::estimate_unknown_source(&rec, t.far(), &cfg);
    Ok(format!(
        "true direction θ={theta}°, estimated θ={est}° (error {:.1}°)",
        uniq_geometry::vec2::angle_diff_deg(est, theta)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    /// The lib-test binary installs the counting allocator itself (the
    /// `uniq` binary does this in its main.rs) so the memprof wrapper is
    /// testable through the public entry points.
    #[global_allocator]
    static ALLOC: uniq_memprof::CountingAllocator = uniq_memprof::CountingAllocator::new();

    fn argv(s: &str) -> Args {
        let raw: Vec<String> = s.split_whitespace().map(String::from).collect();
        Args::parse(&raw, &["anechoic", "near", "trace", "no-skip"]).unwrap()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("uniq_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn unknown_command_shows_usage() {
        let err = run(&argv("frobnicate")).unwrap_err();
        assert!(err.contains("unknown command"));
        assert!(err.contains("personalize"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&argv("help")).unwrap();
        assert!(out.contains("aoa --table"));
    }

    #[test]
    fn missing_table_reported() {
        let err = run(&argv("info --table /nonexistent/x.uniqhrtf")).unwrap_err();
        assert!(err.contains("cannot load"));
    }

    #[test]
    fn bad_signal_kind_reported() {
        assert!(signal_kind("polka").is_err());
        assert!(signal_kind("noise").is_ok());
    }

    #[test]
    fn full_cli_workflow() {
        // personalize → info → render → aoa, through the public entry.
        let table = temp_path("wf.uniqhrtf");
        let wav = temp_path("wf.wav");
        let t = table.display();

        let out = run(&argv(&format!(
            "personalize --seed 5 --out {t} --anechoic --grid 15"
        )))
        .expect("personalize");
        assert!(out.contains("table written"));

        let out = run(&argv(&format!("info --table {t}"))).expect("info");
        assert!(out.contains("head parameters"));

        let out = run(&argv(&format!(
            "render --table {t} --theta 60 --signal music --duration 0.2 --out {}",
            wav.display()
        )))
        .expect("render");
        assert!(out.contains("rendered"));
        assert!(wav.exists());

        let out = run(&argv(&format!("aoa --table {t} --theta 60 --signal noise"))).expect("aoa");
        assert!(out.contains("estimated"));

        std::fs::remove_file(&table).ok();
        std::fs::remove_file(&wav).ok();
    }

    #[test]
    fn batch_reports_every_subject() {
        let out = run(&argv(
            "batch --subjects 2 --threads 2 --anechoic --grid 15 --snr 45",
        ))
        .expect("batch");
        assert!(out.contains("subject   42"), "missing subject line: {out}");
        assert!(out.contains("subject   43"), "missing subject line: {out}");
        assert!(out.contains("2/2 succeeded"), "missing summary: {out}");
    }

    #[test]
    fn batch_scaling_writes_deterministic_report() {
        let json = temp_path("scaling.json");
        let out = run(&argv(&format!(
            "batch --subjects 2 --scaling 1,2 --anechoic --grid 15 --snr 45 --out {}",
            json.display()
        )))
        .expect("batch --scaling");
        assert!(
            out.contains("bit-identical across pool sizes: yes"),
            "determinism line missing: {out}"
        );
        let content = std::fs::read_to_string(&json).unwrap();
        assert!(content.contains("\"deterministic\": true"));
        assert!(content.contains("\"threads\": 1"));
        assert!(content.contains("\"threads\": 2"));
        std::fs::remove_file(&json).ok();
    }

    #[test]
    fn profile_wraps_personalize_and_exports() {
        let table = temp_path("prof.uniqhrtf");
        let json = temp_path("prof.json");
        let flame = temp_path("prof.folded");
        let out = run_profile(&argv(&format!(
            "personalize --seed 6 --out {} --anechoic --grid 15 --profile-out {} --flame-out {}",
            table.display(),
            json.display(),
            flame.display()
        )))
        .expect("profiled personalize");
        assert!(out.contains("table written"), "command output lost: {out}");
        assert!(out.contains("per-stage wall clock:"), "no table: {out}");
        for col in ["count", "p50", "p90", "p99", "threads:"] {
            assert!(out.contains(col), "missing {col:?} in:\n{out}");
        }

        // The JSON export parses with our own reader and covers every
        // pipeline stage.
        let doc =
            uniq_profile::json::Json::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
        let stages: Vec<&str> = doc
            .get("stages")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s.get("name").unwrap().as_str().unwrap())
            .collect();
        for required in uniq_obs::names::PIPELINE_STAGES {
            assert!(
                stages.contains(required),
                "stage {required} missing: {stages:?}"
            );
        }

        // Collapsed-stack lines: `span;child;leaf self_nanos`.
        let folded = std::fs::read_to_string(&flame).unwrap();
        assert!(!folded.is_empty());
        for line in folded.lines() {
            let (path, value) = line.rsplit_once(' ').expect("line has no value");
            assert!(
                path.split(';').all(|seg| !seg.is_empty()),
                "bad path {path:?}"
            );
            value.parse::<u64>().expect("self time not an integer");
        }
        assert!(
            folded.lines().any(|l| l.starts_with("personalize;")),
            "no nested path under personalize:\n{folded}"
        );

        std::fs::remove_file(&table).ok();
        std::fs::remove_file(&json).ok();
        std::fs::remove_file(&flame).ok();
    }

    #[test]
    fn memprof_wraps_personalize_and_exports() {
        let table = temp_path("mp.uniqhrtf");
        let json = temp_path("mp_alloc.json");
        let folded = temp_path("mp_alloc.folded");
        let out = run_memprof(
            &argv(&format!(
                "personalize --seed 6 --out {} --anechoic --grid 15 --alloc-out {} \
                 --alloc-flame-out {}",
                table.display(),
                json.display(),
                folded.display()
            )),
            false,
            false,
        )
        .expect("memprofed personalize");
        assert!(out.contains("table written"), "command output lost: {out}");
        assert!(out.contains("per-stage allocations:"), "no table: {out}");
        assert!(out.contains("fusion"), "hot stage missing: {out}");

        let doc =
            uniq_profile::json::Json::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
        assert!(doc.get("stages").is_some(), "alloc JSON has no stages");
        assert_eq!(
            doc.get("schema_version").and_then(|v| v.as_u64()),
            Some(uniq_memprof::ALLOC_SCHEMA_VERSION)
        );

        // Flame lines are `frame[;frame]* bytes` with positive weights.
        let lines = std::fs::read_to_string(&folded).unwrap();
        assert!(!lines.is_empty());
        for line in lines.lines() {
            let (_, value) = line.rsplit_once(' ').expect("line has no value");
            assert!(
                value.parse::<u64>().unwrap() > 0,
                "zero-weight line {line:?}"
            );
        }

        std::fs::remove_file(&table).ok();
        std::fs::remove_file(&json).ok();
        std::fs::remove_file(&folded).ok();
    }

    #[test]
    fn memprof_composes_with_profile() {
        let table = temp_path("mpp.uniqhrtf");
        let json = temp_path("mpp_prof.json");
        let out = run_memprof(
            &argv(&format!(
                "personalize --seed 6 --out {} --anechoic --grid 15 --profile-out {}",
                table.display(),
                json.display()
            )),
            true,
            false,
        )
        .expect("memprof profile personalize");
        // Both tables, and the latency table grew the alloc columns.
        assert!(
            out.contains("per-stage wall clock:"),
            "no latency table: {out}"
        );
        assert!(out.contains("alloc-b"), "no alloc columns: {out}");
        assert!(
            out.contains("per-stage allocations:"),
            "no alloc table: {out}"
        );

        let doc =
            uniq_profile::json::Json::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
        let alloc = doc.get("alloc").expect("profile JSON has no alloc section");
        assert!(alloc.get("stages").is_some());

        std::fs::remove_file(&table).ok();
        std::fs::remove_file(&json).ok();
    }

    #[test]
    fn profile_of_failed_command_still_writes_report() {
        let json = temp_path("prof_fail.json");
        // personalize without --out fails; the profile file must exist
        // and parse anyway.
        let err = run_profile(&argv(&format!(
            "personalize --seed 6 --profile-out {}",
            json.display()
        )))
        .unwrap_err();
        assert!(err.contains("out"), "unexpected error: {err}");
        let doc =
            uniq_profile::json::Json::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
        assert!(doc.get("schema_version").is_some());
        std::fs::remove_file(&json).ok();
    }

    #[test]
    fn faulted_personalize_reports_degradation() {
        let report = temp_path("deg.json");
        let out = run_faults(&argv(&format!(
            "personalize --seed 6 --anechoic --grid 15 --snr 45 \
             --fault-plan drop@2 --fault-report {}",
            report.display()
        )))
        .expect("faulted personalize");
        assert!(out.contains("fault plan"), "no plan echo: {out}");
        assert!(out.contains("degradation:"), "no report: {out}");
        assert!(out.contains("drop"), "fault class missing: {out}");
        let json = std::fs::read_to_string(&report).unwrap();
        assert!(json.contains("\"stops_dropped\""), "bad report: {json}");
        std::fs::remove_file(&report).ok();
    }

    #[test]
    fn faults_wraps_personalize_only() {
        let err = run_faults(&argv("info --table /tmp/x.uniqhrtf")).unwrap_err();
        assert!(err.contains("wraps personalize only"), "{err}");
    }

    #[test]
    fn bad_fault_plan_reported() {
        let err = run_faults(&argv(
            "personalize --seed 6 --anechoic --grid 15 --fault-plan warp@2",
        ))
        .unwrap_err();
        assert!(err.contains("unknown fault class"), "{err}");
    }

    #[test]
    fn exit_code_propagates_wrapped_failures() {
        // The fix under test: a failing command wrapped by `faults` (or
        // `profile faults`) must map to a nonzero exit status, never 0.
        assert_eq!(exit_code(&Ok::<_, String>("fine".to_string())), 0);
        let failing = run_faults(&argv("personalize --seed 6 --anechoic --fault-plan warp@2"));
        assert_eq!(exit_code(&failing), 1);
        let missing_plan = run_faults(&argv("personalize --seed 6 --anechoic"));
        assert_eq!(exit_code(&missing_plan), 1);
        let profiled =
            run_profile_faults(&argv("personalize --seed 6 --anechoic --fault-plan warp@2"));
        assert_eq!(exit_code(&profiled), 1);
    }

    #[test]
    fn metrics_out_writes_jsonl_events() {
        let table = temp_path("obs.uniqhrtf");
        let metrics = temp_path("obs.jsonl");
        let out = run(&argv(&format!(
            "personalize --seed 6 --out {} --anechoic --grid 15 --metrics-out {}",
            table.display(),
            metrics.display()
        )))
        .expect("personalize with metrics");
        assert!(out.contains("table written"));

        let content = std::fs::read_to_string(&metrics).unwrap();
        assert!(content.contains("\"event\":\"span_start\""));
        assert!(content.contains("\"name\":\"personalize\""));
        assert!(content.contains("\"name\":\"fusion.mean_residual_deg\""));
        assert!(content.contains("\"name\":\"personalize.radius_m\""));
        // Every line is a JSON object.
        for line in content.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "bad line {line}"
            );
        }
        std::fs::remove_file(&table).ok();
        std::fs::remove_file(&metrics).ok();
    }

    #[test]
    fn trace_report_round_trip() {
        let table = temp_path("trace_rt.uniqhrtf");
        let metrics = temp_path("trace_rt.jsonl");
        run(&argv(&format!(
            "personalize --seed 6 --out {} --anechoic --grid 15 --metrics-out {}",
            table.display(),
            metrics.display()
        )))
        .expect("personalize with metrics");

        // The emitted trace reconstructs with no orphans (exit 0).
        let code = trace_cmd(&["report".to_string(), metrics.display().to_string()]);
        assert_eq!(code, 0, "trace report found orphans or failed to parse");

        // Usage errors are distinguishable from findings.
        assert_eq!(trace_cmd(&[]), 2);
        assert_eq!(trace_cmd(&["report".to_string()]), 2);
        assert_eq!(
            trace_cmd(&["report".to_string(), "/nonexistent/t.jsonl".to_string()]),
            2
        );

        std::fs::remove_file(&table).ok();
        std::fs::remove_file(&metrics).ok();
    }

    #[test]
    fn telemetry_out_writes_registry_exports() {
        let table = temp_path("telem.uniqhrtf");
        let prom = temp_path("telem.prom");
        let json = temp_path("telem.json");
        run(&argv(&format!(
            "personalize --seed 6 --out {} --anechoic --grid 15 \
             --telemetry-out {} --telemetry-json {}",
            table.display(),
            prom.display(),
            json.display()
        )))
        .expect("personalize with telemetry");

        let text = std::fs::read_to_string(&prom).unwrap();
        assert!(text.contains("uniq_personalize_ns_count"), "{text}");
        assert!(text.contains("uniq_obs_telemetry_overhead_ns"), "{text}");

        let doc =
            uniq_profile::json::Json::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
        assert!(doc.get("spans").unwrap().get("personalize").is_some());
        assert!(doc.get("overhead_ns").is_some());

        std::fs::remove_file(&table).ok();
        std::fs::remove_file(&prom).ok();
        std::fs::remove_file(&json).ok();
    }

    fn store_argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn store_usage_errors_exit_2() {
        assert_eq!(store_cmd(&[]), 2);
        assert_eq!(store_cmd(&store_argv("frobnicate")), 2);
        assert_eq!(store_cmd(&store_argv("put")), 2); // --store missing
        assert_eq!(store_cmd(&store_argv("get --store /tmp/x")), 2); // --key missing
        assert_eq!(store_cmd(&store_argv("help")), 0);
    }

    #[test]
    fn store_workflow_end_to_end() {
        let root = temp_path("store_wf");
        let _ = std::fs::remove_dir_all(&root);
        let dir = root.display();

        // put, then an identical put that must deduplicate.
        let put = format!("put --store {dir} --seed 6 --anechoic --grid 15 --snr 45");
        assert_eq!(store_cmd(&store_argv(&put)), 0);
        assert_eq!(store_cmd(&store_argv(&put)), 0);
        let store = uniq_store::Store::open(&root).unwrap();
        assert_eq!(store.len(), 1, "identical puts must share one blob");
        let key = store.scan()[0].key.clone();

        // The stored artifact reproduces the in-memory result bit-exactly.
        let cfg = UniqConfig {
            in_room: false,
            grid_step_deg: 15.0,
            snr_db: 45.0,
            ..UniqConfig::default()
        };
        let result = personalize_with_retry(&Subject::from_seed(6), &cfg, 6, 3).unwrap();
        let artifact = store.get(&key).unwrap();
        assert_eq!(artifact.fingerprint(), single_fingerprint(6, &result));
        drop(store);

        // get / ls / verify all succeed on the clean store.
        assert_eq!(
            store_cmd(&store_argv(&format!("get --store {dir} --key {key}"))),
            0
        );
        assert_eq!(store_cmd(&store_argv(&format!("ls --store {dir}"))), 0);
        assert_eq!(store_cmd(&store_argv(&format!("verify --store {dir}"))), 0);

        // Unknown key is a runtime failure (1), not usage (2).
        assert_eq!(
            store_cmd(&store_argv(&format!(
                "get --store {dir} --key 0123456789abcdef"
            ))),
            1
        );

        // export → text table → import round trip (imported provenance is
        // zeroed, so it lands under a second key).
        let table = temp_path("store_wf_export.uniqhrtf");
        assert_eq!(
            store_cmd(&store_argv(&format!(
                "export --store {dir} --key {key} --out {}",
                table.display()
            ))),
            0
        );
        let exported = uniq_core::io::load(&table).unwrap();
        assert_eq!(exported.near().len(), result.hrtf.near().len());
        assert_eq!(
            store_cmd(&store_argv(&format!(
                "import --store {dir} --table {} --seed 6",
                table.display()
            ))),
            0
        );
        let store = uniq_store::Store::open(&root).unwrap();
        assert_eq!(store.len(), 2);
        drop(store);
        assert_eq!(store_cmd(&store_argv(&format!("verify --store {dir}"))), 0);

        // Flip one payload byte in a blob: verify must find it (exit 1).
        let blob = root.join("blobs").join(format!("{key}.uhrtf"));
        let mut bytes = std::fs::read(&blob).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&blob, bytes).unwrap();
        assert_eq!(store_cmd(&store_argv(&format!("verify --store {dir}"))), 1);

        std::fs::remove_file(&table).ok();
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn store_put_appends_ledger_record() {
        let root = temp_path("store_ledger");
        let history = temp_path("store_ledger.jsonl");
        let _ = std::fs::remove_dir_all(&root);
        std::fs::remove_file(&history).ok();
        assert_eq!(
            store_cmd(&store_argv(&format!(
                "put --store {} --seed 6 --anechoic --grid 15 --snr 45 --history {}",
                root.display(),
                history.display()
            ))),
            0
        );
        let text = std::fs::read_to_string(&history).unwrap();
        let records = uniq_telemetry::ledger::read_history(&text).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].label, "store-put");
        let store_section = records[0].store.as_deref().unwrap();
        assert!(store_section.contains("key "), "{store_section}");
        assert!(store_section.contains("new"), "{store_section}");
        std::fs::remove_file(&history).ok();
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn history_ledger_round_trip_and_gates() {
        let table = temp_path("hist.uniqhrtf");
        let history = temp_path("hist.jsonl");
        std::fs::remove_file(&history).ok();
        for _ in 0..2 {
            let out = run(&argv(&format!(
                "personalize --seed 6 --out {} --anechoic --grid 15 --history {}",
                table.display(),
                history.display()
            )))
            .expect("personalize with history");
            assert!(out.contains("ledger record appended"), "{out}");
        }

        // Two identical runs: compare and trend both pass.
        let f = history.display().to_string();
        assert_eq!(history_cmd(&["compare".to_string(), f.clone()]), 0);
        assert_eq!(history_cmd(&["trend".to_string(), f.clone()]), 0);

        // Inject a >2% quality drift into a third record: trend flags it.
        let text = std::fs::read_to_string(&history).unwrap();
        let last = uniq_profile::json::Json::parse(text.lines().last().unwrap()).unwrap();
        let mut rec = uniq_telemetry::ledger::LedgerRecord::from_json(&last).unwrap();
        if let Some(v) = rec.quality.get_mut("localization_median_deg") {
            *v *= 1.10;
        }
        uniq_telemetry::ledger::append(&history, &rec).unwrap();
        assert_eq!(history_cmd(&["trend".to_string(), f.clone()]), 2);

        // Usage errors exit 2.
        assert_eq!(history_cmd(&[]), 2);
        assert_eq!(history_cmd(&["trend".to_string()]), 2);
        assert_eq!(
            history_cmd(&["compare".to_string(), "/nonexistent/h.jsonl".to_string()]),
            2
        );

        std::fs::remove_file(&table).ok();
        std::fs::remove_file(&history).ok();
    }
}
