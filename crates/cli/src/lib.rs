//! # uniq-cli
//!
//! Command-line interface to the UNIQ reproduction. The binary is `uniq`:
//!
//! ```text
//! uniq personalize --seed 42 --out me.uniqhrtf [--anechoic] [--grid 5]
//! uniq info --table me.uniqhrtf
//! uniq render --table me.uniqhrtf --theta 60 --signal music --out out.wav
//! uniq aoa --table me.uniqhrtf --theta 60 --signal speech
//! ```
//!
//! The argument parser is intentionally tiny (flag/value pairs only) so
//! the crate stays dependency-free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
