//! Property-based tests for the DSP substrate.

use proptest::prelude::*;
use uniq_dsp::complex::Complex;
use uniq_dsp::conv::{convolve_direct, convolve_fft};
use uniq_dsp::fft::{fft, ifft, next_pow2};
use uniq_dsp::interp::lerp_vec;
use uniq_dsp::stats::{percentile, Ecdf};
use uniq_dsp::window::{window, WindowKind};
use uniq_dsp::xcorr::{peak_normalized_xcorr, pearson, xcorr_peak_lag};

fn signal_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0..1.0f64, 4..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_roundtrip_recovers_signal(sig in signal_strategy(256)) {
        let n = next_pow2(sig.len());
        let mut buf: Vec<Complex> = sig.iter().map(|&v| Complex::from_real(v)).collect();
        buf.resize(n, Complex::ZERO);
        let rec = ifft(&fft(&buf));
        for (a, b) in buf.iter().zip(&rec) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_parseval(sig in signal_strategy(128)) {
        let n = next_pow2(sig.len());
        let mut buf: Vec<Complex> = sig.iter().map(|&v| Complex::from_real(v)).collect();
        buf.resize(n, Complex::ZERO);
        let spec = fft(&buf);
        let et: f64 = buf.iter().map(|v| v.norm_sqr()).sum();
        let ef: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((et - ef).abs() <= 1e-9 * (1.0 + et));
    }

    #[test]
    fn fft_linearity(a in signal_strategy(64), scale in -4.0..4.0f64) {
        let n = next_pow2(a.len());
        let mut ca: Vec<Complex> = a.iter().map(|&v| Complex::from_real(v)).collect();
        ca.resize(n, Complex::ZERO);
        let scaled: Vec<Complex> = ca.iter().map(|&v| v * scale).collect();
        let fa = fft(&ca);
        let fs = fft(&scaled);
        for (x, y) in fa.iter().zip(&fs) {
            prop_assert!((*x * scale - *y).abs() < 1e-9 * (1.0 + x.abs() * scale.abs()));
        }
    }

    #[test]
    fn convolution_commutative(a in signal_strategy(48), b in signal_strategy(48)) {
        let ab = convolve_direct(&a, &b);
        let ba = convolve_direct(&b, &a);
        prop_assert_eq!(ab.len(), ba.len());
        for (x, y) in ab.iter().zip(&ba) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn convolution_fft_matches_direct(a in signal_strategy(96), b in signal_strategy(48)) {
        let d = convolve_direct(&a, &b);
        let f = convolve_fft(&a, &b);
        for (x, y) in d.iter().zip(&f) {
            prop_assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn convolution_length(a in signal_strategy(64), b in signal_strategy(64)) {
        let out = convolve_direct(&a, &b);
        prop_assert_eq!(out.len(), a.len() + b.len() - 1);
    }

    #[test]
    fn xcorr_similarity_bounded(a in signal_strategy(96), b in signal_strategy(96)) {
        let sim = peak_normalized_xcorr(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&sim), "sim = {sim}");
    }

    #[test]
    fn xcorr_self_similarity_is_one(a in signal_strategy(96)) {
        prop_assume!(a.iter().any(|v| v.abs() > 1e-6));
        let sim = peak_normalized_xcorr(&a, &a);
        prop_assert!((sim - 1.0).abs() < 1e-9, "self sim = {sim}");
    }

    #[test]
    fn xcorr_lag_antisymmetric(a in signal_strategy(64), b in signal_strategy(64)) {
        prop_assume!(a.iter().any(|v| v.abs() > 1e-3));
        prop_assume!(b.iter().any(|v| v.abs() > 1e-3));
        let (lab, vab) = xcorr_peak_lag(&a, &b);
        let (lba, vba) = xcorr_peak_lag(&b, &a);
        // Peak values agree; lags are opposite (up to ties in the peak).
        prop_assert!((vab - vba).abs() < 1e-9);
        if (vab - vba).abs() < 1e-12 {
            // Only assert sign symmetry when the peak is unique enough.
            let r = uniq_dsp::xcorr::xcorr(&a, &b);
            let near_peak = r.iter().filter(|&&v| (v - vab).abs() < 1e-12).count();
            if near_peak == 1 {
                prop_assert_eq!(lab, -lba);
            }
        }
    }

    #[test]
    fn pearson_bounded(a in signal_strategy(64)) {
        let b: Vec<f64> = a.iter().rev().copied().collect();
        let r = pearson(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
    }

    #[test]
    fn windows_bounded_and_symmetric(n in 2usize..200) {
        for kind in [WindowKind::Hann, WindowKind::Hamming, WindowKind::Blackman, WindowKind::Tukey(0.4)] {
            let w = window(kind, n);
            for k in 0..n {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&w[k]));
                prop_assert!((w[k] - w[n - 1 - k]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn percentile_monotone(mut xs in prop::collection::vec(-100.0..100.0f64, 1..64),
                           p1 in 0.0..100.0f64, p2 in 0.0..100.0f64) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile(&xs, lo) <= percentile(&xs, hi) + 1e-12);
    }

    #[test]
    fn ecdf_is_monotone_cdf(xs in prop::collection::vec(-50.0..50.0f64, 1..64)) {
        let e = Ecdf::new(&xs);
        let mut last = 0.0;
        for q in [-60.0, -20.0, 0.0, 20.0, 60.0] {
            let v = e.eval(q);
            prop_assert!(v >= last - 1e-12);
            prop_assert!((0.0..=1.0).contains(&v));
            last = v;
        }
        prop_assert_eq!(e.eval(f64::INFINITY), 1.0);
    }

    #[test]
    fn lerp_vec_endpoints(a in signal_strategy(32)) {
        let b: Vec<f64> = a.iter().map(|v| v * 2.0 + 1.0).collect();
        let at0 = lerp_vec(&a, &b, 0.0);
        let at1 = lerp_vec(&a, &b, 1.0);
        for ((x, y), (z, w)) in at0.iter().zip(&a).zip(at1.iter().zip(&b)) {
            prop_assert!((x - y).abs() < 1e-12);
            prop_assert!((z - w).abs() < 1e-12);
        }
    }

    #[test]
    fn shift_signal_round_trips(a in signal_strategy(64), shift in 0isize..16) {
        use uniq_dsp::align::shift_signal;
        let there = shift_signal(&a, shift);
        let back = shift_signal(&there, -shift);
        // Samples that survived both shifts must match the original.
        let survivors = a.len().saturating_sub(shift as usize);
        for k in 0..survivors {
            prop_assert!((back[k] - a[k]).abs() < 1e-12);
        }
    }
}
