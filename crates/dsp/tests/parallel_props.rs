//! Property tests for the parallelized dsp kernels: the `*_batch`
//! variants run the exact same arithmetic as their sequential
//! counterparts under pool scheduling, so outputs must match to the bit
//! (0 ULP), not merely within a tolerance.

use proptest::prelude::*;
use uniq_dsp::conv::{convolve, convolve_batch};
use uniq_dsp::deconv::{wiener_deconvolve, wiener_deconvolve_batch};
use uniq_dsp::fft::{fft, fft_batch, next_pow2};
use uniq_dsp::Complex;

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn signal_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0..1.0f64, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn convolve_batch_is_bit_identical_to_sequential(
        signals in prop::collection::vec((signal_strategy(96), signal_strategy(48)), 0..12),
        threads in 1usize..9,
    ) {
        let pool = uniq_par::pool(threads);
        let pairs: Vec<(&[f64], &[f64])> = signals
            .iter()
            .map(|(a, b)| (a.as_slice(), b.as_slice()))
            .collect();
        let parallel = convolve_batch(&pairs, &pool);
        prop_assert_eq!(parallel.len(), signals.len());
        for ((a, b), out) in signals.iter().zip(&parallel) {
            prop_assert_eq!(bits(out), bits(&convolve(a, b)));
        }
    }

    #[test]
    fn fft_batch_is_bit_identical_to_sequential(
        signals in prop::collection::vec(signal_strategy(64), 0..10),
        threads in 1usize..9,
    ) {
        let pool = uniq_par::pool(threads);
        let batch: Vec<Vec<Complex>> = signals
            .iter()
            .map(|s| {
                let mut buf: Vec<Complex> =
                    s.iter().map(|&v| Complex::from_real(v)).collect();
                buf.resize(next_pow2(buf.len()), Complex::ZERO);
                buf
            })
            .collect();
        let parallel = fft_batch(&batch, &pool);
        prop_assert_eq!(parallel.len(), batch.len());
        for (input, out) in batch.iter().zip(&parallel) {
            let sequential = fft(input);
            for (p, s) in out.iter().zip(&sequential) {
                prop_assert_eq!(p.re.to_bits(), s.re.to_bits());
                prop_assert_eq!(p.im.to_bits(), s.im.to_bits());
            }
        }
    }

    #[test]
    fn wiener_batch_is_bit_identical_to_sequential(
        probe in signal_strategy(128),
        recordings in prop::collection::vec(signal_strategy(160), 1..8),
        threads in 1usize..9,
    ) {
        prop_assume!(probe.iter().any(|&v| v != 0.0));
        let pool = uniq_par::pool(threads);
        let refs: Vec<&[f64]> = recordings.iter().map(|r| r.as_slice()).collect();
        let parallel = wiener_deconvolve_batch(&refs, &probe, 1e-3, 32, &pool);
        for (rx, out) in recordings.iter().zip(&parallel) {
            let sequential = wiener_deconvolve(rx, &probe, 1e-3, 32);
            prop_assert_eq!(bits(out), bits(&sequential));
        }
    }
}
