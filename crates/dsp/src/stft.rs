//! Short-time Fourier transform.
//!
//! Frame-wise spectral analysis used by the perceptual metrics (frame-
//! averaged log-spectral distortion is far more stable than whole-signal
//! spectra) and handy for inspecting the probe chirps.

use crate::complex::Complex;
use crate::fft::fft_in_place;
use crate::window::{window, WindowKind};

/// A short-time magnitude spectrogram.
#[derive(Debug, Clone)]
pub struct Spectrogram {
    /// `frames[t][k]` = magnitude of bin `k` in frame `t`.
    pub frames: Vec<Vec<f64>>,
    /// FFT size used (frames hold `fft_size/2 + 1` one-sided bins).
    pub fft_size: usize,
    /// Hop between frames, samples.
    pub hop: usize,
    /// Sample rate, hertz.
    pub sample_rate: f64,
}

impl Spectrogram {
    /// Frequency of bin `k`, hertz.
    pub fn bin_frequency(&self, k: usize) -> f64 {
        k as f64 * self.sample_rate / self.fft_size as f64
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the spectrogram holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Start time of frame `t`, seconds.
    pub fn frame_time(&self, t: usize) -> f64 {
        (t * self.hop) as f64 / self.sample_rate
    }
}

/// Computes a Hann-windowed magnitude STFT.
///
/// * `fft_size` — power of two, also the frame length.
/// * `hop` — frame advance in samples (e.g. `fft_size / 2`).
///
/// Frames that would run past the end are dropped (no padding), so a
/// signal shorter than `fft_size` yields an empty spectrogram.
///
/// # Panics
/// Panics unless `fft_size` is a power of two and `0 < hop <= fft_size`.
pub fn stft(signal: &[f64], fft_size: usize, hop: usize, sample_rate: f64) -> Spectrogram {
    assert!(
        crate::fft::is_pow2(fft_size),
        "fft_size {fft_size} is not a power of two"
    );
    assert!(hop > 0 && hop <= fft_size, "hop {hop} out of range");
    let win = window(WindowKind::Hann, fft_size);
    let half = fft_size / 2 + 1;
    let mut frames = Vec::new();
    let mut start = 0usize;
    while start + fft_size <= signal.len() {
        let mut buf: Vec<Complex> = signal[start..start + fft_size]
            .iter()
            .zip(&win)
            .map(|(&s, &w)| Complex::from_real(s * w))
            .collect();
        fft_in_place(&mut buf);
        frames.push(buf[..half].iter().map(|z| z.abs()).collect());
        start += hop;
    }
    Spectrogram {
        frames,
        fft_size,
        hop,
        sample_rate,
    }
}

/// Frame-averaged log-spectral distortion between two signals, dB, over
/// `[f_lo, f_hi]` hertz. Bins where both signals sit below the louder
/// signal's −60 dB floor are skipped; returns 0 when nothing is
/// comparable.
pub fn log_spectral_distortion(
    a: &[f64],
    b: &[f64],
    sample_rate: f64,
    f_lo: f64,
    f_hi: f64,
) -> f64 {
    const N: usize = 1024;
    let sa = stft(a, N, N / 2, sample_rate);
    let sb = stft(b, N, N / 2, sample_rate);
    let frames = sa.len().min(sb.len());
    if frames == 0 {
        return 0.0;
    }
    let peak = sa
        .frames
        .iter()
        .chain(&sb.frames)
        .flatten()
        .fold(0.0_f64, |m, &v| m.max(v));
    let floor = peak * 1e-3; // −60 dB
    let mut sum = 0.0;
    let mut count = 0usize;
    for t in 0..frames {
        for k in 0..sa.frames[t].len() {
            let f = sa.bin_frequency(k);
            if f < f_lo || f > f_hi {
                continue;
            }
            let (ma, mb) = (sa.frames[t][k], sb.frames[t][k]);
            if ma < floor && mb < floor {
                continue;
            }
            let da = 20.0 * ma.max(floor).log10();
            let db = 20.0 * mb.max(floor).log10();
            sum += (da - db).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{linear_chirp, tone};

    const SR: f64 = 16_000.0;

    #[test]
    fn frame_count_and_shape() {
        let sig = vec![0.0; 4096];
        let s = stft(&sig, 1024, 512, SR);
        // Frames at 0, 512, …, 3072 → 7 frames.
        assert_eq!(s.len(), 7);
        assert_eq!(s.frames[0].len(), 513);
        assert_eq!(s.hop, 512);
    }

    #[test]
    fn short_signal_empty() {
        let s = stft(&[0.0; 100], 256, 128, SR);
        assert!(s.is_empty());
    }

    #[test]
    fn tone_concentrates_in_right_bin() {
        let f0 = 1000.0;
        let sig = tone(f0, 0.5, SR);
        let s = stft(&sig, 1024, 512, SR);
        for frame in &s.frames {
            let (argmax, _) = frame
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap();
            assert!((s.bin_frequency(argmax) - f0).abs() < 2.0 * SR / 1024.0);
        }
    }

    #[test]
    fn chirp_peak_frequency_rises() {
        let sig = linear_chirp(500.0, 6000.0, 1.0, SR);
        let s = stft(&sig, 1024, 512, SR);
        let peak_freq = |frame: &Vec<f64>| {
            let (argmax, _) = frame
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap();
            s.bin_frequency(argmax)
        };
        let early = peak_freq(&s.frames[1]);
        let late = peak_freq(&s.frames[s.len() - 2]);
        assert!(late > early + 2000.0, "chirp not rising: {early} → {late}");
    }

    #[test]
    fn lsd_zero_for_identical() {
        let sig = linear_chirp(300.0, 5000.0, 0.5, SR);
        assert!(log_spectral_distortion(&sig, &sig, SR, 200.0, 7000.0) < 1e-9);
    }

    #[test]
    fn lsd_detects_gain_difference() {
        let sig = linear_chirp(300.0, 5000.0, 0.5, SR);
        let quieter: Vec<f64> = sig.iter().map(|v| v * 0.5).collect(); // −6 dB
        let lsd = log_spectral_distortion(&sig, &quieter, SR, 200.0, 7000.0);
        assert!((lsd - 6.0).abs() < 0.5, "lsd {lsd}");
    }

    #[test]
    fn frame_time_progresses() {
        let s = stft(&vec![0.0; 4096], 1024, 256, SR);
        assert_eq!(s.frame_time(0), 0.0);
        assert!((s.frame_time(4) - 1024.0 / SR).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_fft_size_rejected() {
        stft(&[0.0; 100], 100, 50, SR);
    }
}
