//! One-dimensional and vector interpolation.
//!
//! [`lerp_vec`] is the workhorse of near-field HRTF interpolation (§4.2):
//! once two HRIRs are first-tap aligned, the interpolated HRIR for an
//! intermediate angle is their element-wise linear blend.

/// Scalar linear interpolation: `a + t·(b − a)`.
#[inline]
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + t * (b - a)
}

/// Element-wise linear interpolation between two equal-length vectors.
///
/// # Panics
/// Panics if lengths differ.
pub fn lerp_vec(a: &[f64], b: &[f64], t: f64) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "lerp_vec: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| lerp(x, y, t)).collect()
}

/// Piecewise-linear interpolation of `(x, y)` pairs at query point `xq`.
///
/// `points` must be sorted by `x` (strictly increasing). Queries outside the
/// range clamp to the end values.
///
/// # Panics
/// Panics if `points` is empty or the x values are not strictly increasing.
pub fn interp1(points: &[(f64, f64)], xq: f64) -> f64 {
    assert!(!points.is_empty(), "interp1: no points");
    for w in points.windows(2) {
        assert!(w[0].0 < w[1].0, "interp1: x values must strictly increase");
    }
    if xq <= points[0].0 {
        return points[0].1;
    }
    if xq >= points[points.len() - 1].0 {
        return points[points.len() - 1].1;
    }
    let idx = points.partition_point(|&(x, _)| x <= xq);
    let (x0, y0) = points[idx - 1];
    let (x1, y1) = points[idx];
    lerp(y0, y1, (xq - x0) / (x1 - x0))
}

/// Interpolates periodic angular data (period 360°): finds the bracketing
/// measured angles around `angle_deg` (wrapping) and returns their indices
/// plus the blend fraction.
///
/// `angles_deg` must be sorted ascending within `[0, 360)`.
///
/// # Panics
/// Panics if `angles_deg` is empty.
pub fn bracket_angle(angles_deg: &[f64], angle_deg: f64) -> (usize, usize, f64) {
    assert!(!angles_deg.is_empty(), "bracket_angle: no angles");
    let n = angles_deg.len();
    let a = angle_deg.rem_euclid(360.0);
    if n == 1 {
        return (0, 0, 0.0);
    }
    // Find first angle >= a.
    let idx = angles_deg.partition_point(|&x| x < a);
    let (i0, i1) = if idx == 0 || idx == n {
        (n - 1, 0) // wraps around 0/360
    } else {
        (idx - 1, idx)
    };
    let x0 = angles_deg[i0];
    let x1 = angles_deg[i1];
    let span = (x1 - x0).rem_euclid(360.0);
    let off = (a - x0).rem_euclid(360.0);
    let t = if span <= 1e-12 {
        0.0
    } else {
        (off / span).clamp(0.0, 1.0)
    };
    (i0, i1, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(2.0, 6.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 6.0, 1.0), 6.0);
        assert_eq!(lerp(2.0, 6.0, 0.25), 3.0);
    }

    #[test]
    fn lerp_vec_blends() {
        let a = vec![0.0, 10.0];
        let b = vec![10.0, 20.0];
        assert_eq!(lerp_vec(&a, &b, 0.5), vec![5.0, 15.0]);
    }

    #[test]
    fn interp1_basic() {
        let pts = [(0.0, 0.0), (1.0, 10.0), (3.0, 30.0)];
        assert_eq!(interp1(&pts, 0.5), 5.0);
        assert_eq!(interp1(&pts, 2.0), 20.0);
        assert_eq!(interp1(&pts, -1.0), 0.0); // clamp low
        assert_eq!(interp1(&pts, 9.0), 30.0); // clamp high
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn interp1_unsorted_panics() {
        interp1(&[(1.0, 0.0), (1.0, 1.0)], 1.0);
    }

    #[test]
    fn bracket_angle_interior() {
        let angles = [0.0, 90.0, 180.0];
        let (i0, i1, t) = bracket_angle(&angles, 45.0);
        assert_eq!((i0, i1), (0, 1));
        assert!((t - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bracket_angle_exact_hit() {
        let angles = [0.0, 90.0, 180.0];
        let (i0, i1, t) = bracket_angle(&angles, 90.0);
        // 90 is the right bracket with t=1 (or left with t=0); either way
        // the blend must return exactly the measured angle's data.
        let blend = |a: f64, b: f64, t: f64| a + t * (b - a);
        let v = blend(angles[i0], angles[i1], t);
        assert!((v - 90.0).abs() < 1e-9);
    }

    #[test]
    fn bracket_angle_wraps() {
        let angles = [10.0, 90.0, 350.0];
        let (i0, i1, t) = bracket_angle(&angles, 0.0);
        assert_eq!((i0, i1), (2, 0));
        assert!((t - 0.5).abs() < 1e-12); // 350→10 spans 20°, 0 is midway
    }

    #[test]
    fn bracket_single_angle() {
        let (i0, i1, t) = bracket_angle(&[42.0], 123.0);
        assert_eq!((i0, i1, t), (0, 0, 0.0));
    }
}
