//! Integer and fractional sample delays.
//!
//! The forward acoustic simulator places propagation taps at non-integer
//! sample positions; the windowed-sinc kernel here band-limits those taps so
//! sub-sample timing survives into the discrete signal (essential for the
//! paper's TDoA analysis, where one sample at 48 kHz is 7 mm of path).

use crate::window::{window, WindowKind};
use std::f64::consts::PI;

/// Half-width (in samples) of the windowed-sinc interpolation kernel.
pub const SINC_HALF_WIDTH: usize = 16;

/// Normalized sinc: `sin(πx)/(πx)`, 1 at x = 0.
#[inline]
pub fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-12 {
        1.0
    } else {
        (PI * x).sin() / (PI * x)
    }
}

/// Shifts a signal right by an integer number of samples, zero-filling.
/// The output keeps the input length (samples shifted past the end are
/// dropped).
pub fn delay_integer(signal: &[f64], samples: usize) -> Vec<f64> {
    let mut out = vec![0.0; signal.len()];
    if samples < signal.len() {
        out[samples..].copy_from_slice(&signal[..signal.len() - samples]);
    }
    out
}

/// Adds a band-limited impulse of amplitude `amp` at (possibly fractional)
/// sample position `pos` into `buf`, using a Hann-windowed sinc kernel.
///
/// Contributions that fall outside the buffer are clipped. Positions may be
/// negative (only the in-range tail is written).
pub fn add_fractional_impulse(buf: &mut [f64], pos: f64, amp: f64) {
    if amp == 0.0 || !pos.is_finite() {
        return;
    }
    let center = pos.round() as isize;
    let frac = pos - center as f64; // in [-0.5, 0.5]
    let half = SINC_HALF_WIDTH as isize;
    let win = window(WindowKind::Hann, 2 * SINC_HALF_WIDTH + 1);
    // Pre-compute the full kernel and normalize to unit sum so a fractional
    // tap keeps exact DC gain (truncated windowed sincs otherwise droop).
    let mut kernel = [0.0; 2 * SINC_HALF_WIDTH + 1];
    let mut total = 0.0;
    for k in -half..=half {
        let x = k as f64 - frac;
        let w = win[(k + half) as usize] * sinc(x);
        kernel[(k + half) as usize] = w;
        total += w;
    }
    if total.abs() < 1e-12 {
        return;
    }
    for k in -half..=half {
        let idx = center + k;
        if idx < 0 || idx as usize >= buf.len() {
            continue;
        }
        buf[idx as usize] += amp * kernel[(k + half) as usize] / total;
    }
}

/// Delays a signal by a fractional number of samples using windowed-sinc
/// interpolation. Output has the same length as the input.
///
/// # Panics
/// Panics if `delay` is negative or non-finite.
pub fn delay_fractional(signal: &[f64], delay: f64) -> Vec<f64> {
    assert!(
        delay.is_finite() && delay >= 0.0,
        "delay_fractional: invalid delay {delay}"
    );
    // Offset the kernel by its half-width so the anti-causal sinc tail is
    // not clipped at index 0, then discard that lead-in after convolving.
    let lead = SINC_HALF_WIDTH;
    let mut kernel = vec![0.0; 2 * SINC_HALF_WIDTH + delay.ceil() as usize + 2];
    add_fractional_impulse(&mut kernel, delay + lead as f64, 1.0);
    let out = crate::conv::convolve(signal, &kernel);
    out[lead..lead + signal.len()].to_vec()
}

/// Reads the signal value at fractional index `pos` by linear interpolation,
/// returning 0 outside the valid range.
pub fn sample_linear(signal: &[f64], pos: f64) -> f64 {
    if signal.is_empty() || !pos.is_finite() || pos < 0.0 {
        return 0.0;
    }
    let i = pos.floor() as usize;
    if i + 1 >= signal.len() {
        return if i < signal.len() { signal[i] } else { 0.0 };
    }
    let f = pos - i as f64;
    signal[i] * (1.0 - f) + signal[i + 1] * f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::tone;
    use crate::xcorr::xcorr_peak_lag_subsample;

    #[test]
    fn sinc_at_integers() {
        assert_eq!(sinc(0.0), 1.0);
        for k in 1..6 {
            assert!(sinc(k as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn integer_delay_shifts() {
        let s = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(delay_integer(&s, 2), vec![0.0, 0.0, 1.0, 2.0]);
        assert_eq!(delay_integer(&s, 0), s);
        assert_eq!(delay_integer(&s, 10), vec![0.0; 4]);
    }

    #[test]
    fn fractional_impulse_integer_position_is_delta() {
        let mut buf = vec![0.0; 64];
        add_fractional_impulse(&mut buf, 30.0, 2.0);
        assert!((buf[30] - 2.0).abs() < 1e-9);
        // Energy concentrated at the tap.
        let side: f64 = buf
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != 30)
            .map(|(_, v)| v * v)
            .sum();
        assert!(side < 1e-12);
    }

    #[test]
    fn fractional_impulse_preserves_subsample_timing() {
        let mut a = vec![0.0; 128];
        let mut b = vec![0.0; 128];
        add_fractional_impulse(&mut a, 50.0, 1.0);
        add_fractional_impulse(&mut b, 50.4, 1.0);
        let lag = xcorr_peak_lag_subsample(&a, &b);
        // b is a delayed by 0.4 samples, so the aligning lag is +0.4.
        // Parabolic refinement on a sinc-shaped correlation peak is biased
        // toward the integer grid; 0.2 samples of slack covers that.
        assert!((lag - 0.4).abs() < 0.2, "lag {lag}");
    }

    #[test]
    fn fractional_delay_of_tone_matches_phase() {
        let sr = 8000.0;
        let f = 500.0;
        let s = tone(f, 0.05, sr);
        let d = 3.5;
        let delayed = delay_fractional(&s, d);
        // Compare against analytically delayed tone in the steady-state region.
        for (k, &got) in delayed.iter().enumerate().take(300).skip(100) {
            let expect = (2.0 * PI * f * (k as f64 - d) / sr).sin();
            assert!((got - expect).abs() < 1e-2, "sample {k}: {got} vs {expect}");
        }
    }

    #[test]
    fn clipping_at_edges_is_safe() {
        let mut buf = vec![0.0; 8];
        add_fractional_impulse(&mut buf, -3.0, 1.0);
        add_fractional_impulse(&mut buf, 100.0, 1.0);
        add_fractional_impulse(&mut buf, 7.7, 1.0);
        // Should not panic; some energy may land inside.
        assert!(buf.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sample_linear_interpolates() {
        let s = vec![0.0, 2.0, 4.0];
        assert_eq!(sample_linear(&s, 0.5), 1.0);
        assert_eq!(sample_linear(&s, 1.25), 2.5);
        assert_eq!(sample_linear(&s, 2.0), 4.0);
        assert_eq!(sample_linear(&s, 5.0), 0.0);
        assert_eq!(sample_linear(&s, -1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid delay")]
    fn negative_delay_panics() {
        delay_fractional(&[1.0; 4], -1.0);
    }
}
