//! # uniq-dsp
//!
//! Digital signal processing substrate for the UNIQ HRTF personalization
//! system (SIGCOMM 2021 reproduction).
//!
//! Everything here is implemented from scratch on `f64` samples so the whole
//! workspace stays dependency-free and deterministic:
//!
//! * [`complex`] — a minimal complex-number type used by the FFT.
//! * [`fft`] — iterative radix-2 Cooley–Tukey FFT / inverse FFT and
//!   real-signal helpers.
//! * [`window`] — analysis windows (Hann, Hamming, Blackman, Tukey, …).
//! * [`signal`] — deterministic test signals (chirps, tones, impulses).
//! * [`conv`] — direct and FFT-based convolution.
//! * [`xcorr`] — cross-correlation, normalized correlation, lag search.
//! * [`deconv`] — Wiener frequency-domain deconvolution (channel estimation).
//! * [`delay`] — integer and fractional (windowed-sinc) delays.
//! * [`filter`] — biquad sections, cascades and FIR filtering.
//! * [`peaks`] — peak picking and first-tap detection for impulse responses.
//! * [`resample`] — linear and windowed-sinc sample-rate conversion.
//! * [`stats`] — descriptive statistics, percentiles and empirical CDFs.
//! * [`spectrum`] — magnitude spectra and decibel conversions.
//! * [`stft`] — short-time Fourier analysis and frame-averaged
//!   log-spectral distortion.
//! * [`align`] — impulse-response alignment utilities.
//! * [`interp`] — one-dimensional and vector interpolation.
//!
//! The crate's only dependency is the in-workspace `uniq-par` thread pool
//! (for the `*_batch` kernels — scheduling only, never arithmetic): anything
//! stochastic lives upstream in `uniq-acoustics`/`uniq-imu`, keeping this
//! layer referentially transparent and easy to property-test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod align;
pub mod complex;
pub mod conv;
pub mod deconv;
pub mod delay;
pub mod fft;
pub mod filter;
pub mod interp;
pub mod peaks;
pub mod resample;
pub mod signal;
pub mod spectrum;
pub mod stats;
pub mod stft;
pub mod window;
pub mod xcorr;

pub use complex::Complex;

/// Speed of sound in air at ~20 °C, metres per second.
///
/// Shared across the workspace so the forward simulator and the inverse
/// solver agree on units.
pub const SPEED_OF_SOUND: f64 = 343.0;

/// Default sample rate used throughout the reproduction, hertz.
///
/// The paper records at 96 kHz; 48 kHz keeps simulations fast while staying
/// far above the audible band. All APIs take an explicit rate, this is only
/// a convenient default.
pub const DEFAULT_SAMPLE_RATE: f64 = 48_000.0;
