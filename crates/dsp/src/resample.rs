//! Sample-rate conversion.
//!
//! The paper records at 96 kHz while IMU data arrives at 100 Hz; resampling
//! bridges rates when fusing streams and lets tests run at lower rates.

use crate::delay::sinc;
use crate::window::{window, WindowKind};

/// Linear-interpolation resampling from `from_rate` to `to_rate` hertz.
///
/// Fast and adequate for envelope-rate data (IMU streams). For audio use
/// [`resample_sinc`].
///
/// # Panics
/// Panics unless both rates are positive.
pub fn resample_linear(signal: &[f64], from_rate: f64, to_rate: f64) -> Vec<f64> {
    assert!(from_rate > 0.0 && to_rate > 0.0, "rates must be positive");
    if signal.is_empty() {
        return Vec::new();
    }
    let ratio = from_rate / to_rate;
    let out_len = ((signal.len() as f64) / ratio).floor() as usize;
    (0..out_len)
        .map(|k| crate::delay::sample_linear(signal, k as f64 * ratio))
        .collect()
}

/// Windowed-sinc resampling (16-tap half-width Hann kernel). Suitable for
/// audio-band signals; assumes the input is already band-limited below the
/// lower of the two Nyquist frequencies.
///
/// # Panics
/// Panics unless both rates are positive.
pub fn resample_sinc(signal: &[f64], from_rate: f64, to_rate: f64) -> Vec<f64> {
    assert!(from_rate > 0.0 && to_rate > 0.0, "rates must be positive");
    if signal.is_empty() {
        return Vec::new();
    }
    let ratio = from_rate / to_rate;
    let out_len = ((signal.len() as f64) / ratio).floor() as usize;
    const HALF: isize = 16;
    let win = window(WindowKind::Hann, (2 * HALF + 1) as usize);
    // When decimating, widen the kernel to act as an anti-alias low-pass.
    let scale = ratio.max(1.0);
    (0..out_len)
        .map(|k| {
            let pos = k as f64 * ratio;
            let center = pos.round() as isize;
            let mut acc = 0.0;
            let reach = (HALF as f64 * scale).ceil() as isize;
            for j in -reach..=reach {
                let idx = center + j;
                if idx < 0 || idx as usize >= signal.len() {
                    continue;
                }
                let x = (idx as f64 - pos) / scale;
                if x.abs() > HALF as f64 {
                    continue;
                }
                let w_idx = ((x + HALF as f64) / (2.0 * HALF as f64) * (win.len() - 1) as f64)
                    .round() as usize;
                acc += signal[idx as usize] * sinc(x) * win[w_idx.min(win.len() - 1)] / scale;
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{rms, tone};

    #[test]
    fn linear_identity_rate() {
        let s = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(resample_linear(&s, 100.0, 100.0), s);
    }

    #[test]
    fn linear_upsample_doubles_length() {
        let s = vec![0.0, 1.0, 2.0, 3.0];
        let up = resample_linear(&s, 100.0, 200.0);
        assert_eq!(up.len(), 8);
        assert!((up[1] - 0.5).abs() < 1e-12);
        assert!((up[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_downsample_halves_length() {
        let s: Vec<f64> = (0..100).map(|k| k as f64).collect();
        let down = resample_linear(&s, 100.0, 50.0);
        assert_eq!(down.len(), 50);
        assert!((down[10] - 20.0).abs() < 1e-12);
    }

    #[test]
    fn sinc_preserves_tone_frequency() {
        let sr_in = 48000.0;
        let sr_out = 32000.0;
        let t = tone(1000.0, 0.05, sr_in);
        let out = resample_sinc(&t, sr_in, sr_out);
        // Compare against a natively generated tone at the new rate.
        let expect = tone(1000.0, out.len() as f64 / sr_out, sr_out);
        let n = out.len().min(expect.len());
        // Skip edges where the kernel is clipped.
        let err: f64 = out[64..n - 64]
            .iter()
            .zip(&expect[64..n - 64])
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / (n - 128) as f64;
        assert!(err.sqrt() < 0.05, "rms error {}", err.sqrt());
    }

    #[test]
    fn sinc_upsample_preserves_level() {
        let t = tone(500.0, 0.02, 8000.0);
        let up = resample_sinc(&t, 8000.0, 16000.0);
        let r_in = rms(&t[20..t.len() - 20]);
        let r_out = rms(&up[40..up.len() - 40]);
        assert!((r_in - r_out).abs() / r_in < 0.05);
    }

    #[test]
    fn empty_input() {
        assert!(resample_linear(&[], 10.0, 20.0).is_empty());
        assert!(resample_sinc(&[], 10.0, 20.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        resample_linear(&[1.0], 0.0, 10.0);
    }
}
