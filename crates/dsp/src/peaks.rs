//! Peak picking and first-tap detection for impulse responses.
//!
//! The diffraction-aware sensor fusion of the paper (§4.1) relies on the
//! *first* channel tap — the head-diffraction path — and explicitly discards
//! later taps (face reflections, room echoes). [`first_tap`] implements that
//! detector; [`find_peaks`] is the general local-maximum search used by the
//! unknown-source AoA module (§4.5, Fig 14).

/// A detected peak in a sampled sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Sample index of the local maximum.
    pub index: usize,
    /// Sub-sample refined position (parabolic interpolation).
    pub position: f64,
    /// Value at the (integer) peak.
    pub value: f64,
}

/// Finds local maxima of `|signal|` that exceed `threshold · max|signal|`,
/// separated by at least `min_distance` samples (strongest wins).
///
/// Returns peaks sorted by index. Empty input or silent signal gives an
/// empty vector.
pub fn find_peaks(signal: &[f64], threshold: f64, min_distance: usize) -> Vec<Peak> {
    let n = signal.len();
    if n < 3 {
        return Vec::new();
    }
    let global = signal.iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
    if global <= 0.0 {
        return Vec::new();
    }
    let limit = threshold * global;

    let mut raw: Vec<Peak> = Vec::new();
    for i in 1..n - 1 {
        let a = signal[i].abs();
        if a >= limit && a >= signal[i - 1].abs() && a > signal[i + 1].abs() {
            raw.push(Peak {
                index: i,
                position: refine(signal, i),
                value: signal[i],
            });
        }
    }

    if min_distance <= 1 || raw.len() <= 1 {
        return raw;
    }

    // Greedy non-maximum suppression: keep strongest first.
    let mut by_strength: Vec<usize> = (0..raw.len()).collect();
    by_strength.sort_by(|&a, &b| raw[b].value.abs().total_cmp(&raw[a].value.abs()));
    let mut keep = vec![false; raw.len()];
    for &cand in &by_strength {
        let ok = raw
            .iter()
            .enumerate()
            .filter(|(j, _)| keep[*j])
            .all(|(_, p)| p.index.abs_diff(raw[cand].index) >= min_distance);
        if ok {
            keep[cand] = true;
        }
    }
    raw.into_iter()
        .zip(keep)
        .filter_map(|(p, k)| k.then_some(p))
        .collect()
}

/// Detects the first tap of an impulse response: the earliest sample whose
/// magnitude reaches `threshold` × the global peak, refined to the local
/// maximum that follows it.
///
/// Returns `None` for silent or empty input.
pub fn first_tap(ir: &[f64], threshold: f64) -> Option<Peak> {
    let global = ir.iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
    if global <= 0.0 {
        return None;
    }
    let limit = threshold * global;
    let onset = ir.iter().position(|v| v.abs() >= limit)?;
    // Walk forward to the local maximum of |ir| starting at the onset.
    let mut idx = onset;
    while idx + 1 < ir.len() && ir[idx + 1].abs() >= ir[idx].abs() {
        idx += 1;
    }
    Some(Peak {
        index: idx,
        position: refine(ir, idx),
        value: ir[idx],
    })
}

/// Zeroes every sample after `cutoff` (exclusive) — used to strip room
/// reflections that arrive after the head/pinna taps (§4.6).
pub fn truncate_after(ir: &mut [f64], cutoff: usize) {
    for v in ir.iter_mut().skip(cutoff) {
        *v = 0.0;
    }
}

fn refine(signal: &[f64], i: usize) -> f64 {
    if i == 0 || i + 1 >= signal.len() {
        return i as f64;
    }
    let (ym, y0, yp) = (signal[i - 1].abs(), signal[i].abs(), signal[i + 1].abs());
    let denom = ym - 2.0 * y0 + yp;
    if denom.abs() < 1e-30 {
        return i as f64;
    }
    i as f64 + (0.5 * (ym - yp) / denom).clamp(-0.5, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::add_fractional_impulse;

    #[test]
    fn empty_and_silent() {
        assert!(find_peaks(&[], 0.5, 1).is_empty());
        assert!(find_peaks(&[0.0; 16], 0.5, 1).is_empty());
        assert!(first_tap(&[0.0; 16], 0.3).is_none());
    }

    #[test]
    fn single_peak_found() {
        let mut s = vec![0.0; 32];
        s[10] = 1.0;
        let p = find_peaks(&s, 0.5, 1);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 10);
        assert_eq!(p[0].value, 1.0);
    }

    #[test]
    fn negative_peaks_detected_by_magnitude() {
        let mut s = vec![0.0; 32];
        s[8] = -0.9;
        s[20] = 0.5;
        let p = find_peaks(&s, 0.3, 1);
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].value, -0.9);
    }

    #[test]
    fn threshold_suppresses_small_peaks() {
        let mut s = vec![0.0; 32];
        s[8] = 1.0;
        s[20] = 0.2;
        let p = find_peaks(&s, 0.5, 1);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 8);
    }

    #[test]
    fn min_distance_keeps_strongest() {
        let mut s = vec![0.0; 64];
        s[10] = 0.8;
        s[13] = 1.0; // within 5 of 10; stronger wins
        s[40] = 0.9;
        let p = find_peaks(&s, 0.1, 5);
        let idx: Vec<usize> = p.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![13, 40]);
    }

    #[test]
    fn first_tap_prefers_earliest_strong_sample() {
        let mut ir = vec![0.0; 100];
        ir[30] = 0.6; // diffraction path (weaker)
        ir[50] = 1.0; // reflection (stronger, later)
        let tap = first_tap(&ir, 0.3).unwrap();
        assert_eq!(tap.index, 30);
    }

    #[test]
    fn first_tap_skips_subthreshold_noise() {
        let mut ir = vec![0.005; 100];
        ir[40] = 1.0;
        let tap = first_tap(&ir, 0.2).unwrap();
        assert_eq!(tap.index, 40);
    }

    #[test]
    fn first_tap_subsample_accuracy() {
        let mut ir = vec![0.0; 128];
        add_fractional_impulse(&mut ir, 42.3, 1.0);
        let tap = first_tap(&ir, 0.3).unwrap();
        // Parabolic refinement on |sinc| is biased; 0.35 samples is enough
        // for the pipeline (sub-sample TDoA uses correlation, not this).
        assert!((tap.position - 42.3).abs() < 0.35, "pos {}", tap.position);
    }

    #[test]
    fn truncate_after_zeroes_tail() {
        let mut ir = vec![1.0; 10];
        truncate_after(&mut ir, 4);
        assert_eq!(&ir[..4], &[1.0; 4]);
        assert_eq!(&ir[4..], &[0.0; 6]);
    }

    #[test]
    fn first_tap_negative_polarity() {
        let mut ir = vec![0.0; 64];
        ir[25] = -1.0;
        let tap = first_tap(&ir, 0.3).unwrap();
        assert_eq!(tap.index, 25);
        assert!(tap.value < 0.0);
    }
}
