//! Cross-correlation and similarity measures.
//!
//! The paper uses peak-normalized cross-correlation both as its groundwork
//! metric (Fig 2 pinna confusion matrices) and as its headline evaluation
//! metric (HRIR similarity, Figs 18–20). [`peak_normalized_xcorr`]
//! implements exactly that: `max_τ Σ a(t)·b(t+τ)` normalized by the signal
//! energies so identical signals score 1.

use crate::conv::convolve_fft;

/// Full cross-correlation `r[k] = Σ_t a(t) · b(t + (b.len()-1) - k)`.
///
/// Output length is `a.len() + b.len() - 1`; index `b.len() - 1`
/// corresponds to zero lag. Computed via FFT convolution with a reversed
/// operand. Returns an empty vector if either input is empty.
pub fn xcorr(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let b_rev: Vec<f64> = b.iter().rev().copied().collect();
    convolve_fft(a, &b_rev)
}

/// The lag (in samples, positive meaning `b` is delayed relative to `a`)
/// at which the cross-correlation is maximal, plus that maximum value.
///
/// Returns `(0, 0.0)` for empty inputs.
pub fn xcorr_peak_lag(a: &[f64], b: &[f64]) -> (isize, f64) {
    let r = xcorr(a, b);
    if r.is_empty() {
        return (0, 0.0);
    }
    let (idx, &val) = r
        .iter()
        .enumerate()
        .max_by(|x, y| x.1.total_cmp(y.1))
        // uniq-analyzer: allow(panic-safety) — r is non-empty: checked three lines up
        .expect("non-empty");
    // Index b.len()-1 is zero lag; larger index means a leads b, i.e. b is
    // delayed by (idx - (b.len()-1)) samples *negatively*. We define the
    // returned lag so that shifting `b` left by `lag` aligns it with `a`:
    // a(t) ≈ b(t + lag).
    let lag = (b.len() as isize - 1) - idx as isize;
    (lag, val)
}

/// Parabolic (three-point) refinement of the correlation peak, returning a
/// sub-sample lag estimate. Falls back to the integer peak at the edges.
pub fn xcorr_peak_lag_subsample(a: &[f64], b: &[f64]) -> f64 {
    let r = xcorr(a, b);
    if r.is_empty() {
        return 0.0;
    }
    let (idx, _) = r
        .iter()
        .enumerate()
        .max_by(|x, y| x.1.total_cmp(y.1))
        // uniq-analyzer: allow(panic-safety) — r is non-empty: checked three lines up
        .expect("non-empty");
    let zero = b.len() as f64 - 1.0;
    if idx == 0 || idx + 1 >= r.len() {
        return zero - idx as f64;
    }
    let (ym, y0, yp) = (r[idx - 1], r[idx], r[idx + 1]);
    let denom = ym - 2.0 * y0 + yp;
    let frac = if denom.abs() < 1e-30 {
        0.0
    } else {
        0.5 * (ym - yp) / denom
    };
    zero - (idx as f64 + frac.clamp(-0.5, 0.5))
}

/// Peak-normalized cross-correlation similarity in `[-1, 1]`.
///
/// ```
/// use uniq_dsp::xcorr::peak_normalized_xcorr;
/// use uniq_dsp::signal::linear_chirp;
/// let a = linear_chirp(500.0, 4000.0, 0.01, 48_000.0);
/// let mut delayed = vec![0.0; 40];
/// delayed.extend_from_slice(&a);
/// // The metric ignores alignment: a delayed copy still scores 1.
/// assert!((peak_normalized_xcorr(&a, &delayed) - 1.0).abs() < 1e-9);
/// ```
///
/// `max_τ Σ a(t)b(t+τ) / sqrt(Σa² · Σb²)` — the paper's similarity metric
/// for comparing impulse responses irrespective of alignment and gain.
/// Returns 0 when either signal is silent or empty.
pub fn peak_normalized_xcorr(a: &[f64], b: &[f64]) -> f64 {
    let ea: f64 = a.iter().map(|v| v * v).sum();
    let eb: f64 = b.iter().map(|v| v * v).sum();
    if ea <= 0.0 || eb <= 0.0 {
        return 0.0;
    }
    let r = xcorr(a, b);
    let peak = r.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
    peak / (ea * eb).sqrt()
}

/// Pearson correlation coefficient between two equal-length slices
/// (no lag search). Returns 0 for degenerate inputs.
///
/// # Panics
/// Panics if lengths differ.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va * vb).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{impulse, linear_chirp};

    #[test]
    fn self_correlation_is_one() {
        let c = linear_chirp(500.0, 4000.0, 0.01, 48000.0);
        assert!((peak_normalized_xcorr(&c, &c) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn silent_signal_scores_zero() {
        let c = linear_chirp(500.0, 4000.0, 0.01, 48000.0);
        assert_eq!(peak_normalized_xcorr(&c, &[0.0; 100]), 0.0);
        assert_eq!(peak_normalized_xcorr(&[], &c), 0.0);
    }

    #[test]
    fn shift_invariance_of_peak_metric() {
        let c = linear_chirp(500.0, 4000.0, 0.01, 48000.0);
        let mut shifted = vec![0.0; 37];
        shifted.extend_from_slice(&c);
        assert!((peak_normalized_xcorr(&c, &shifted) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gain_invariance_of_peak_metric() {
        let c = linear_chirp(500.0, 4000.0, 0.01, 48000.0);
        let scaled: Vec<f64> = c.iter().map(|v| v * 3.7).collect();
        assert!((peak_normalized_xcorr(&c, &scaled) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lag_detects_known_shift() {
        let c = linear_chirp(500.0, 6000.0, 0.01, 48000.0);
        let mut delayed = vec![0.0; 25];
        delayed.extend_from_slice(&c);
        let (lag, _) = xcorr_peak_lag(&c, &delayed);
        // b is `c` delayed by 25 samples: aligning b with a needs lag -25
        // under our convention a(t) = b(t + lag) → lag = -25... check sign:
        // a(t) = c(t), b(t) = c(t - 25) → c(t) = b(t + 25) → lag = +25.
        assert_eq!(lag, 25);
    }

    #[test]
    fn lag_sign_symmetry() {
        let c = linear_chirp(500.0, 6000.0, 0.01, 48000.0);
        let mut delayed = vec![0.0; 10];
        delayed.extend_from_slice(&c);
        let (lag_ab, _) = xcorr_peak_lag(&c, &delayed);
        let (lag_ba, _) = xcorr_peak_lag(&delayed, &c);
        assert_eq!(lag_ab, -lag_ba);
    }

    #[test]
    fn subsample_lag_close_to_integer_for_deltas() {
        let a = impulse(64, 10);
        let b = impulse(64, 14);
        let lag = xcorr_peak_lag_subsample(&a, &b);
        // b is a delayed by 4 samples, so the aligning lag is +4.
        assert!((lag - 4.0).abs() < 0.5, "lag = {lag}");
    }

    #[test]
    fn different_chirps_correlate_weakly() {
        let a = linear_chirp(500.0, 2000.0, 0.02, 48000.0);
        let b = linear_chirp(5000.0, 9000.0, 0.02, 48000.0);
        assert!(peak_normalized_xcorr(&a, &b) < 0.3);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c: Vec<f64> = a.iter().map(|v| -v).collect();
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_input_zero() {
        assert_eq!(pearson(&[1.0; 5], &[2.0, 3.0, 1.0, 0.0, 4.0]), 0.0);
    }
}
