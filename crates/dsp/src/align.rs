//! Impulse-response alignment.
//!
//! Near-field HRTF interpolation (§4.2) must align adjacent HRIRs "carefully
//! along their first taps before the interpolation; otherwise spurious
//! echoes will get injected". These utilities implement that alignment.

use crate::peaks::first_tap;

/// Shifts a signal so its first tap (per [`first_tap`] with the given
/// threshold) lands at sample `target`. Zero-fills; keeps length.
///
/// Returns the signal unchanged when no tap is found. The applied shift in
/// samples (positive = right) is returned alongside.
pub fn align_first_tap(ir: &[f64], threshold: f64, target: usize) -> (Vec<f64>, isize) {
    match first_tap(ir, threshold) {
        None => (ir.to_vec(), 0),
        Some(tap) => {
            let shift = target as isize - tap.index as isize;
            (shift_signal(ir, shift), shift)
        }
    }
}

/// Shifts a signal by `shift` samples (positive = right / delay), zero
/// filling and truncating to the original length.
pub fn shift_signal(signal: &[f64], shift: isize) -> Vec<f64> {
    let n = signal.len();
    let mut out = vec![0.0; n];
    for (i, o) in out.iter_mut().enumerate() {
        let src = i as isize - shift;
        if src >= 0 && (src as usize) < n {
            *o = signal[src as usize];
        }
    }
    out
}

/// Aligns a set of impulse responses so all first taps coincide at the
/// maximum of their individual first-tap indices (so no response loses its
/// leading edge). Returns the aligned set plus the common tap index.
///
/// Responses without a detectable tap are passed through unshifted.
pub fn co_align(irs: &[Vec<f64>], threshold: f64) -> (Vec<Vec<f64>>, usize) {
    let taps: Vec<Option<usize>> = irs
        .iter()
        .map(|ir| first_tap(ir, threshold).map(|p| p.index))
        .collect();
    let target = taps.iter().flatten().copied().max().unwrap_or(0);
    let aligned = irs
        .iter()
        .zip(&taps)
        .map(|(ir, tap)| match tap {
            Some(idx) => shift_signal(ir, target as isize - *idx as isize),
            None => ir.clone(),
        })
        .collect();
    (aligned, target)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(len: usize, at: usize, amp: f64) -> Vec<f64> {
        let mut v = vec![0.0; len];
        v[at] = amp;
        v
    }

    #[test]
    fn shift_right_and_left() {
        let s = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(shift_signal(&s, 1), vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(shift_signal(&s, -2), vec![3.0, 4.0, 0.0, 0.0]);
        assert_eq!(shift_signal(&s, 0), s);
        assert_eq!(shift_signal(&s, 10), vec![0.0; 4]);
    }

    #[test]
    fn align_moves_tap_to_target() {
        let ir = delta(32, 12, 1.0);
        let (aligned, shift) = align_first_tap(&ir, 0.3, 20);
        assert_eq!(shift, 8);
        assert_eq!(aligned[20], 1.0);
    }

    #[test]
    fn align_silent_passthrough() {
        let ir = vec![0.0; 16];
        let (aligned, shift) = align_first_tap(&ir, 0.3, 4);
        assert_eq!(shift, 0);
        assert_eq!(aligned, ir);
    }

    #[test]
    fn co_align_uses_latest_tap() {
        let a = delta(64, 10, 1.0);
        let b = delta(64, 25, 0.8);
        let (aligned, target) = co_align(&[a, b], 0.3);
        assert_eq!(target, 25);
        assert_eq!(aligned[0][25], 1.0);
        assert_eq!(aligned[1][25], 0.8);
    }

    #[test]
    fn co_align_preserves_relative_structure() {
        // IR with a first tap and an echo 7 samples later.
        let mut a = delta(64, 10, 1.0);
        a[17] = 0.5;
        let (aligned, target) = co_align(std::slice::from_ref(&a), 0.3);
        assert_eq!(aligned[0][target], 1.0);
        assert_eq!(aligned[0][target + 7], 0.5);
    }
}
