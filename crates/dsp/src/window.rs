//! Analysis windows.
//!
//! Used for chirp shaping, windowed-sinc fractional delays and spectral
//! estimation. All windows are symmetric (`w[k] == w[n-1-k]`).

use std::f64::consts::PI;

/// Window shapes supported by [`window`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowKind {
    /// All-ones window.
    Rectangular,
    /// Hann (raised cosine) window.
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window (three-term).
    Blackman,
    /// Tukey (tapered cosine) window; the parameter is the taper fraction in
    /// `[0, 1]`: 0 is rectangular, 1 is Hann.
    Tukey(f64),
}

/// Generates a window of `n` samples.
///
/// Returns an empty vector for `n == 0` and `[1.0]` for `n == 1`.
pub fn window(kind: WindowKind, n: usize) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![1.0];
    }
    let m = (n - 1) as f64;
    (0..n)
        .map(|k| {
            let x = k as f64 / m; // 0..1
            match kind {
                WindowKind::Rectangular => 1.0,
                WindowKind::Hann => 0.5 - 0.5 * (2.0 * PI * x).cos(),
                WindowKind::Hamming => 0.54 - 0.46 * (2.0 * PI * x).cos(),
                WindowKind::Blackman => {
                    0.42 - 0.5 * (2.0 * PI * x).cos() + 0.08 * (4.0 * PI * x).cos()
                }
                WindowKind::Tukey(alpha) => tukey_point(x, alpha.clamp(0.0, 1.0)),
            }
        })
        .collect()
}

fn tukey_point(x: f64, alpha: f64) -> f64 {
    if alpha <= 0.0 {
        return 1.0;
    }
    let half = alpha / 2.0;
    if x < half {
        0.5 * (1.0 + (PI * (x / half - 1.0)).cos())
    } else if x > 1.0 - half {
        0.5 * (1.0 + (PI * ((x - 1.0) / half + 1.0)).cos())
    } else {
        1.0
    }
}

/// Multiplies a signal by a window of the same length, in place.
///
/// # Panics
/// Panics if lengths differ.
pub fn apply_window(signal: &mut [f64], win: &[f64]) {
    assert_eq!(
        signal.len(),
        win.len(),
        "apply_window: length mismatch ({} vs {})",
        signal.len(),
        win.len()
    );
    for (s, w) in signal.iter_mut().zip(win) {
        *s *= w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symmetric(w: &[f64]) -> bool {
        let n = w.len();
        (0..n).all(|k| (w[k] - w[n - 1 - k]).abs() < 1e-12)
    }

    #[test]
    fn degenerate_sizes() {
        assert!(window(WindowKind::Hann, 0).is_empty());
        assert_eq!(window(WindowKind::Hann, 1), vec![1.0]);
    }

    #[test]
    fn all_windows_symmetric() {
        for kind in [
            WindowKind::Rectangular,
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
            WindowKind::Tukey(0.3),
        ] {
            let w = window(kind, 33);
            assert!(symmetric(&w), "{kind:?} not symmetric");
            let w = window(kind, 32);
            assert!(symmetric(&w), "{kind:?} (even) not symmetric");
        }
    }

    #[test]
    fn hann_endpoints_zero_peak_one() {
        let w = window(WindowKind::Hann, 65);
        assert!(w[0].abs() < 1e-12);
        assert!(w[64].abs() < 1e-12);
        assert!((w[32] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints() {
        let w = window(WindowKind::Hamming, 11);
        assert!((w[0] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn tukey_zero_is_rectangular() {
        let w = window(WindowKind::Tukey(0.0), 16);
        assert!(w.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn tukey_one_close_to_hann() {
        let t = window(WindowKind::Tukey(1.0), 64);
        let h = window(WindowKind::Hann, 64);
        for (a, b) in t.iter().zip(&h) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn tukey_has_flat_middle() {
        let w = window(WindowKind::Tukey(0.2), 101);
        assert!((w[50] - 1.0).abs() < 1e-12);
        assert!((w[40] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn values_in_unit_range() {
        for kind in [
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
            WindowKind::Tukey(0.5),
        ] {
            for &v in &window(kind, 57) {
                assert!((-1e-12..=1.0 + 1e-12).contains(&v), "{kind:?}: {v}");
            }
        }
    }

    #[test]
    fn apply_window_scales() {
        let mut s = vec![2.0; 4];
        apply_window(&mut s, &[0.0, 0.5, 1.0, 0.25]);
        assert_eq!(s, vec![0.0, 1.0, 2.0, 0.5]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn apply_window_length_mismatch_panics() {
        let mut s = vec![1.0; 3];
        apply_window(&mut s, &[1.0; 4]);
    }
}
