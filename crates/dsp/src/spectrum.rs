//! Magnitude spectra and decibel helpers.

use crate::complex::Complex;
use crate::fft::rfft;

/// Converts an amplitude ratio to decibels, flooring at `-200 dB` for zero.
#[inline]
pub fn amplitude_to_db(a: f64) -> f64 {
    if a <= 0.0 {
        -200.0
    } else {
        20.0 * a.log10()
    }
}

/// Converts decibels to an amplitude ratio.
#[inline]
pub fn db_to_amplitude(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// One-sided magnitude spectrum of a real signal.
///
/// Returns `(frequencies_hz, magnitudes)` for bins `0..=N/2` where `N` is
/// the (power-of-two padded) FFT size.
pub fn magnitude_spectrum(signal: &[f64], sample_rate: f64) -> (Vec<f64>, Vec<f64>) {
    if signal.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let spec = rfft(signal);
    let n = spec.len();
    let half = n / 2 + 1;
    let freqs = (0..half)
        .map(|k| k as f64 * sample_rate / n as f64)
        .collect();
    let mags = spec[..half].iter().map(|z| z.abs()).collect();
    (freqs, mags)
}

/// One-sided magnitude spectrum in decibels, normalized so the peak is 0 dB.
pub fn magnitude_spectrum_db(signal: &[f64], sample_rate: f64) -> (Vec<f64>, Vec<f64>) {
    let (freqs, mags) = magnitude_spectrum(signal, sample_rate);
    let peak = mags.iter().copied().fold(0.0_f64, f64::max);
    let db = mags
        .iter()
        .map(|&m| amplitude_to_db(if peak > 0.0 { m / peak } else { 0.0 }))
        .collect();
    (freqs, db)
}

/// Interpolates the magnitude of a (full, two-sided) spectrum at an
/// arbitrary frequency, linear between bins. `n` is the FFT size used to
/// produce `spectrum`.
pub fn spectrum_magnitude_at(spectrum: &[Complex], sample_rate: f64, freq: f64) -> f64 {
    let n = spectrum.len();
    if n == 0 || freq < 0.0 || freq > sample_rate / 2.0 {
        return 0.0;
    }
    let pos = freq * n as f64 / sample_rate;
    let lo = pos.floor() as usize;
    let hi = (lo + 1).min(n - 1);
    let f = pos - lo as f64;
    spectrum[lo.min(n - 1)].abs() * (1.0 - f) + spectrum[hi].abs() * f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::tone;

    #[test]
    fn db_roundtrip() {
        for db in [-60.0, -6.0, 0.0, 12.0] {
            assert!((amplitude_to_db(db_to_amplitude(db)) - db).abs() < 1e-9);
        }
        assert_eq!(amplitude_to_db(0.0), -200.0);
    }

    #[test]
    fn tone_spectrum_peaks_at_tone() {
        let sr = 8192.0;
        let t = tone(1024.0, 0.125, sr); // 1024 samples
        let (freqs, mags) = magnitude_spectrum(&t, sr);
        let (argmax, _) = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!((freqs[argmax] - 1024.0).abs() < sr / 1024.0);
    }

    #[test]
    fn db_spectrum_peak_is_zero() {
        let t = tone(500.0, 0.1, 8000.0);
        let (_, db) = magnitude_spectrum_db(&t, 8000.0);
        let peak = db.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(peak.abs() < 1e-9);
    }

    #[test]
    fn empty_signal_empty_spectrum() {
        let (f, m) = magnitude_spectrum(&[], 48000.0);
        assert!(f.is_empty() && m.is_empty());
    }

    #[test]
    fn magnitude_at_interpolates() {
        let sr = 8000.0;
        let t = tone(1000.0, 0.128, sr);
        let spec = rfft(&t);
        let at_peak = spectrum_magnitude_at(&spec, sr, 1000.0);
        let off_peak = spectrum_magnitude_at(&spec, sr, 3000.0);
        assert!(at_peak > 10.0 * off_peak);
        assert_eq!(spectrum_magnitude_at(&spec, sr, -5.0), 0.0);
        assert_eq!(spectrum_magnitude_at(&spec, sr, sr), 0.0);
    }
}
