//! Convolution.
//!
//! Direct (time-domain) convolution for short kernels and FFT-based fast
//! convolution for long ones, with [`convolve`] picking automatically.
//! All variants compute **full** linear convolution:
//! output length `a.len() + b.len() - 1`.

use crate::complex::Complex;
use crate::fft::{fft_in_place, ifft_in_place, next_pow2};

/// Above this cost product, [`convolve`] switches to the FFT path.
const DIRECT_COST_LIMIT: usize = 1 << 14;

/// Full linear convolution, direct O(N·M) evaluation.
///
/// Returns an empty vector if either input is empty.
pub fn convolve_direct(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// Full linear convolution via FFT (O((N+M) log(N+M))).
///
/// Returns an empty vector if either input is empty.
pub fn convolve_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let n = next_pow2(out_len);
    let mut fa = vec![Complex::ZERO; n];
    let mut fb = vec![Complex::ZERO; n];
    for (dst, &s) in fa.iter_mut().zip(a) {
        *dst = Complex::from_real(s);
    }
    for (dst, &s) in fb.iter_mut().zip(b) {
        *dst = Complex::from_real(s);
    }
    fft_in_place(&mut fa);
    fft_in_place(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    ifft_in_place(&mut fa);
    fa.truncate(out_len);
    fa.into_iter().map(|z| z.re).collect()
}

/// Full linear convolution, choosing direct vs FFT by input size.
///
/// ```
/// use uniq_dsp::conv::convolve;
/// let smoothed = convolve(&[1.0, 2.0, 3.0], &[0.5, 0.5]);
/// assert_eq!(smoothed, vec![0.5, 1.5, 2.5, 1.5]);
/// ```
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.len().saturating_mul(b.len()) <= DIRECT_COST_LIMIT {
        convolve_direct(a, b)
    } else {
        convolve_fft(a, b)
    }
}

/// Full linear convolution of every `(a, b)` pair, scheduled across `pool`.
///
/// Each pair runs the exact same code path as [`convolve`] (including its
/// direct-vs-FFT selector), so results are bit-identical to a sequential
/// `pairs.iter().map(|(a, b)| convolve(a, b))` regardless of the pool size.
pub fn convolve_batch(pairs: &[(&[f64], &[f64])], pool: &uniq_par::ThreadPool) -> Vec<Vec<f64>> {
    pool.par_map_chunked(pairs, 1, |&(a, b)| convolve(a, b))
}

/// "Same"-mode convolution: output has the length of `a`, centred on the
/// kernel `b` (matching NumPy's `mode="same"`).
pub fn convolve_same(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return vec![0.0; a.len()];
    }
    let full = convolve(a, b);
    let start = (b.len() - 1) / 2;
    full[start..start + a.len()].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::impulse;

    #[test]
    fn empty_inputs() {
        assert!(convolve_direct(&[], &[1.0]).is_empty());
        assert!(convolve_fft(&[1.0], &[]).is_empty());
    }

    #[test]
    fn identity_with_delta() {
        let x = vec![1.0, -2.0, 3.5, 0.25];
        let d = impulse(1, 0);
        assert_eq!(convolve_direct(&x, &d), x);
    }

    #[test]
    fn delayed_delta_shifts() {
        let x = vec![1.0, 2.0, 3.0];
        let d = impulse(3, 2);
        assert_eq!(convolve_direct(&x, &d), vec![0.0, 0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn known_small_case() {
        // [1,2,3] * [4,5] = [4, 13, 22, 15]
        assert_eq!(
            convolve_direct(&[1.0, 2.0, 3.0], &[4.0, 5.0]),
            vec![4.0, 13.0, 22.0, 15.0]
        );
    }

    #[test]
    fn fft_matches_direct() {
        let a: Vec<f64> = (0..77).map(|k| ((k * k) as f64 * 0.03).sin()).collect();
        let b: Vec<f64> = (0..33).map(|k| (k as f64 * 0.7).cos()).collect();
        let d = convolve_direct(&a, &b);
        let f = convolve_fft(&a, &b);
        assert_eq!(d.len(), f.len());
        for (x, y) in d.iter().zip(&f) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn auto_selector_matches_both() {
        let a: Vec<f64> = (0..200).map(|k| (k as f64 * 0.11).sin()).collect();
        let b: Vec<f64> = (0..150).map(|k| (k as f64 * 0.05).cos()).collect();
        let auto = convolve(&a, &b);
        let fft = convolve_fft(&a, &b);
        for (x, y) in auto.iter().zip(&fft) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn commutative() {
        let a = vec![1.0, 0.5, -0.25, 2.0];
        let b = vec![3.0, -1.0];
        assert_eq!(convolve_direct(&a, &b), convolve_direct(&b, &a));
    }

    #[test]
    fn same_mode_length() {
        let a = vec![1.0; 10];
        let b = vec![0.25; 4];
        let s = convolve_same(&a, &b);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn same_mode_of_delta_kernel_identity() {
        let a = vec![5.0, 4.0, 3.0, 2.0, 1.0];
        let s = convolve_same(&a, &[1.0]);
        assert_eq!(s, a);
    }
}
