//! A minimal complex-number type.
//!
//! Only what the FFT and frequency-domain processing need: arithmetic,
//! conjugation, polar construction and magnitude. Implemented locally to
//! keep the workspace dependency-free.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}` — a unit phasor at angle `theta` radians.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude; cheaper than [`Complex::abs`] when comparing.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse. Returns a non-finite value for zero input.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Complex exponential `e^{self}`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division via the reciprocal is intentional: one conjugate-multiply
    // plus a scalar divide, the standard complex-division formulation.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < EPS
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex::new(1.5, -2.25);
        let b = Complex::new(-0.5, 4.0);
        assert!(close(a + b - b, a));
    }

    #[test]
    fn mul_matches_expansion() {
        let a = Complex::new(2.0, 3.0);
        let b = Complex::new(-1.0, 0.5);
        // (2+3i)(-1+0.5i) = -2 + 1i - 3i + 1.5 i^2 = -3.5 - 2i
        assert!(close(a * b, Complex::new(-3.5, -2.0)));
    }

    #[test]
    fn div_is_mul_inverse() {
        let a = Complex::new(2.0, 3.0);
        let b = Complex::new(-1.0, 0.5);
        assert!(close(a * b / b, a));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn conj_negates_imaginary() {
        let z = Complex::new(1.0, 2.0);
        assert_eq!(z.conj(), Complex::new(1.0, -2.0));
        assert!((z * z.conj()).im.abs() < EPS);
        assert!(((z * z.conj()).re - z.norm_sqr()).abs() < EPS);
    }

    #[test]
    fn cis_unit_magnitude() {
        for k in 0..16 {
            let z = Complex::cis(k as f64 * 0.4);
            assert!((z.abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let z = Complex::new(0.0, std::f64::consts::PI).exp();
        assert!(close(z, Complex::new(-1.0, 0.0)));
    }

    #[test]
    fn sum_folds() {
        let total: Complex = (0..4).map(|k| Complex::new(k as f64, 1.0)).sum();
        assert!(close(total, Complex::new(6.0, 4.0)));
    }
}
