//! IIR biquad sections, cascades, and FIR filtering.
//!
//! Biquads follow the Audio-EQ-Cookbook (RBJ) designs; cascading two
//! identical sections gives the 4th-order Butterworth-style band edges used
//! to emulate the paper's speaker–microphone response (Fig 16).

use std::f64::consts::PI;

/// A single direct-form-I biquad section.
#[derive(Debug, Clone, Copy)]
pub struct Biquad {
    /// Feed-forward coefficients (normalized by `a0`).
    pub b: [f64; 3],
    /// Feedback coefficients `a1, a2` (normalized by `a0`).
    pub a: [f64; 2],
}

impl Biquad {
    /// An identity (pass-through) section.
    pub fn identity() -> Self {
        Biquad {
            b: [1.0, 0.0, 0.0],
            a: [0.0, 0.0],
        }
    }

    /// RBJ low-pass with cutoff `fc` hertz and quality `q` at `sample_rate`.
    ///
    /// # Panics
    /// Panics unless `0 < fc < sample_rate/2` and `q > 0`.
    pub fn lowpass(fc: f64, q: f64, sample_rate: f64) -> Self {
        let (_, alpha, cw) = rbj_params(fc, q, sample_rate);
        let b1 = 1.0 - cw;
        Self::normalize(
            [b1 / 2.0, b1, b1 / 2.0],
            [1.0 + alpha, -2.0 * cw, 1.0 - alpha],
        )
    }

    /// RBJ high-pass with cutoff `fc` hertz and quality `q`.
    ///
    /// # Panics
    /// Panics unless `0 < fc < sample_rate/2` and `q > 0`.
    pub fn highpass(fc: f64, q: f64, sample_rate: f64) -> Self {
        let (_, alpha, cw) = rbj_params(fc, q, sample_rate);
        let b1 = 1.0 + cw;
        Self::normalize(
            [b1 / 2.0, -b1, b1 / 2.0],
            [1.0 + alpha, -2.0 * cw, 1.0 - alpha],
        )
    }

    /// RBJ constant-peak band-pass centred at `fc` with quality `q`.
    ///
    /// # Panics
    /// Panics unless `0 < fc < sample_rate/2` and `q > 0`.
    pub fn bandpass(fc: f64, q: f64, sample_rate: f64) -> Self {
        let (_, alpha, cw) = rbj_params(fc, q, sample_rate);
        Self::normalize([alpha, 0.0, -alpha], [1.0 + alpha, -2.0 * cw, 1.0 - alpha])
    }

    fn normalize(b: [f64; 3], a: [f64; 3]) -> Self {
        Biquad {
            b: [b[0] / a[0], b[1] / a[0], b[2] / a[0]],
            a: [a[1] / a[0], a[2] / a[0]],
        }
    }

    /// Filters a signal through this section (zero initial state).
    pub fn filter(&self, input: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(input.len());
        let (mut x1, mut x2, mut y1, mut y2) = (0.0, 0.0, 0.0, 0.0);
        for &x in input {
            let y =
                self.b[0] * x + self.b[1] * x1 + self.b[2] * x2 - self.a[0] * y1 - self.a[1] * y2;
            x2 = x1;
            x1 = x;
            y2 = y1;
            y1 = y;
            out.push(y);
        }
        out
    }

    /// Complex frequency response at `freq` hertz.
    pub fn response(&self, freq: f64, sample_rate: f64) -> crate::Complex {
        let w = 2.0 * PI * freq / sample_rate;
        let z1 = crate::Complex::cis(-w);
        let z2 = crate::Complex::cis(-2.0 * w);
        let num = crate::Complex::from_real(self.b[0]) + z1 * self.b[1] + z2 * self.b[2];
        let den = crate::Complex::ONE + z1 * self.a[0] + z2 * self.a[1];
        num / den
    }
}

fn rbj_params(fc: f64, q: f64, sample_rate: f64) -> (f64, f64, f64) {
    // Returns (w0, alpha, cos w0); w0 itself is unused by the current designs
    // but kept for shelf/peak designs.
    assert!(
        fc > 0.0 && fc < sample_rate / 2.0,
        "corner {fc} Hz outside (0, {})",
        sample_rate / 2.0
    );
    assert!(q > 0.0, "quality factor must be positive");
    let w0 = 2.0 * PI * fc / sample_rate;
    (w0, w0.sin() / (2.0 * q), w0.cos())
}

/// A cascade of biquad sections applied in series.
#[derive(Debug, Clone)]
pub struct BiquadCascade {
    sections: Vec<Biquad>,
}

impl BiquadCascade {
    /// Builds a cascade from individual sections (empty cascade = identity).
    pub fn new(sections: Vec<Biquad>) -> Self {
        BiquadCascade { sections }
    }

    /// A 4th-order Butterworth-style band-pass built from two high-pass and
    /// two low-pass sections with Butterworth pole quality (1/√2).
    pub fn butterworth_bandpass(f_low: f64, f_high: f64, sample_rate: f64) -> Self {
        assert!(f_low < f_high, "band edges out of order");
        let q = std::f64::consts::FRAC_1_SQRT_2;
        BiquadCascade::new(vec![
            Biquad::highpass(f_low, q, sample_rate),
            Biquad::highpass(f_low, q, sample_rate),
            Biquad::lowpass(f_high, q, sample_rate),
            Biquad::lowpass(f_high, q, sample_rate),
        ])
    }

    /// Filters a signal through every section in order.
    pub fn filter(&self, input: &[f64]) -> Vec<f64> {
        let mut sig = input.to_vec();
        for s in &self.sections {
            sig = s.filter(&sig);
        }
        sig
    }

    /// Complex frequency response (product over sections).
    pub fn response(&self, freq: f64, sample_rate: f64) -> crate::Complex {
        self.sections.iter().fold(crate::Complex::ONE, |acc, s| {
            acc * s.response(freq, sample_rate)
        })
    }

    /// Magnitude response in decibels.
    pub fn response_db(&self, freq: f64, sample_rate: f64) -> f64 {
        20.0 * self.response(freq, sample_rate).abs().log10()
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// Whether the cascade has no sections (identity).
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }
}

/// FIR filtering: convolves the signal with `taps` and truncates to the
/// input length (causal, zero-padded start).
pub fn fir_filter(input: &[f64], taps: &[f64]) -> Vec<f64> {
    if input.is_empty() || taps.is_empty() {
        return vec![0.0; input.len()];
    }
    let full = crate::conv::convolve(input, taps);
    full[..input.len()].to_vec()
}

/// Designs a windowed-sinc low-pass FIR with `n_taps` taps (odd preferred)
/// and cutoff `fc` hertz, Hann-windowed and normalized to unity DC gain.
///
/// # Panics
/// Panics unless `0 < fc < sample_rate/2` and `n_taps > 0`.
pub fn design_lowpass_fir(fc: f64, n_taps: usize, sample_rate: f64) -> Vec<f64> {
    assert!(n_taps > 0, "need at least one tap");
    assert!(
        fc > 0.0 && fc < sample_rate / 2.0,
        "cutoff outside Nyquist range"
    );
    let fc_norm = fc / sample_rate; // cycles per sample
    let mid = (n_taps - 1) as f64 / 2.0;
    let win = crate::window::window(crate::window::WindowKind::Hann, n_taps);
    let mut taps: Vec<f64> = (0..n_taps)
        .map(|k| {
            let x = k as f64 - mid;
            2.0 * fc_norm * crate::delay::sinc(2.0 * fc_norm * x) * win[k]
        })
        .collect();
    let dc: f64 = taps.iter().sum();
    if dc.abs() > 1e-12 {
        for t in taps.iter_mut() {
            *t /= dc;
        }
    }
    taps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{rms, tone};

    const SR: f64 = 48_000.0;

    #[test]
    fn identity_passes_signal() {
        let s = vec![1.0, -0.5, 0.25, 2.0];
        assert_eq!(Biquad::identity().filter(&s), s);
    }

    #[test]
    fn lowpass_attenuates_high_frequency() {
        let lp = Biquad::lowpass(1000.0, 0.707, SR);
        let low = tone(100.0, 0.1, SR);
        let high = tone(10_000.0, 0.1, SR);
        let rl = rms(&lp.filter(&low)[2000..]);
        let rh = rms(&lp.filter(&high)[2000..]);
        assert!(rl > 0.9 * rms(&low[2000..]));
        assert!(rh < 0.05 * rms(&high[2000..]), "high rms ratio {rh}");
    }

    #[test]
    fn highpass_attenuates_low_frequency() {
        let hp = Biquad::highpass(1000.0, 0.707, SR);
        let low = tone(50.0, 0.2, SR);
        let rl = rms(&hp.filter(&low)[4000..]);
        assert!(rl < 0.05 * rms(&low[4000..]));
    }

    #[test]
    fn bandpass_peaks_at_center() {
        let bp = Biquad::bandpass(2000.0, 2.0, SR);
        let g_center = bp.response(2000.0, SR).abs();
        let g_off = bp.response(8000.0, SR).abs();
        assert!((g_center - 1.0).abs() < 0.01);
        assert!(g_off < 0.3);
    }

    #[test]
    fn response_matches_measurement() {
        let lp = Biquad::lowpass(3000.0, 0.707, SR);
        let f = 1500.0;
        let t = tone(f, 0.2, SR);
        let filtered = lp.filter(&t);
        let measured = rms(&filtered[4000..]) / rms(&t[4000..]);
        let predicted = lp.response(f, SR).abs();
        assert!(
            (measured - predicted).abs() < 0.02,
            "measured {measured} predicted {predicted}"
        );
    }

    #[test]
    fn butterworth_bandpass_shape() {
        let bp = BiquadCascade::butterworth_bandpass(100.0, 10_000.0, SR);
        assert_eq!(bp.len(), 4);
        // Passband ~0 dB.
        assert!(bp.response_db(1000.0, SR).abs() < 1.0);
        // Stop bands well down.
        assert!(bp.response_db(10.0, SR) < -30.0);
        assert!(bp.response_db(23_000.0, SR) < -20.0);
    }

    #[test]
    fn empty_cascade_is_identity() {
        let c = BiquadCascade::new(vec![]);
        assert!(c.is_empty());
        let s = vec![0.5, -1.0, 2.0];
        assert_eq!(c.filter(&s), s);
        assert!((c.response(1234.0, SR).abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fir_lowpass_rejects_high_tone() {
        let taps = design_lowpass_fir(2000.0, 129, SR);
        let high = tone(15_000.0, 0.05, SR);
        let out = fir_filter(&high, &taps);
        assert!(rms(&out[500..]) < 0.02 * rms(&high[500..]));
    }

    #[test]
    fn fir_lowpass_unity_dc() {
        let taps = design_lowpass_fir(2000.0, 65, SR);
        let dc: f64 = taps.iter().sum();
        assert!((dc - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn corner_beyond_nyquist_panics() {
        Biquad::lowpass(30_000.0, 0.7, SR);
    }
}
