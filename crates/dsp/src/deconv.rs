//! Channel estimation by deconvolution.
//!
//! Given a received recording `y = h ⊛ x + n` and the known probe `x`, the
//! UNIQ pipeline recovers the acoustic channel `h` (the raw HRIR plus room
//! taps). Two estimators are provided:
//!
//! * [`wiener_deconvolve`] — regularized frequency-domain division
//!   `H = Y·X* / (|X|² + ε)`, the workhorse used by the system.
//! * [`matched_filter`] — cross-correlation with the probe; more robust at
//!   very low SNR but smears the channel by the probe's autocorrelation.

use crate::complex::Complex;
use crate::fft::{fft_in_place, ifft_in_place, next_pow2};

/// Estimates the channel impulse response from a recording of a known probe
/// using Wiener-regularized spectral division.
///
/// * `received` — microphone recording (may be longer than the probe).
/// * `probe` — the transmitted signal.
/// * `noise_floor` — Wiener regularizer as a fraction of the probe's peak
///   spectral power (e.g. `1e-3`); guards the division where the probe has
///   little energy.
/// * `out_len` — number of leading channel taps to return.
///
/// The returned vector is the first `out_len` taps of the estimated impulse
/// response; tap `k` corresponds to a delay of `k` samples between
/// transmission and reception.
///
/// ```
/// use uniq_dsp::{conv::convolve, deconv::wiener_deconvolve};
/// use uniq_dsp::signal::linear_chirp;
/// let probe = linear_chirp(100.0, 20_000.0, 0.02, 48_000.0);
/// let mut channel = vec![0.0; 64];
/// channel[10] = 1.0;                         // a single 10-sample echo
/// let recording = convolve(&probe, &channel);
/// let estimate = wiener_deconvolve(&recording, &probe, 1e-4, 64);
/// let peak = estimate.iter().enumerate().max_by(|a, b| a.1.abs().total_cmp(&b.1.abs())).unwrap().0;
/// assert_eq!(peak, 10);
/// ```
///
/// # Panics
/// Panics if the probe is empty or silent, or `out_len == 0`.
pub fn wiener_deconvolve(
    received: &[f64],
    probe: &[f64],
    noise_floor: f64,
    out_len: usize,
) -> Vec<f64> {
    assert!(!probe.is_empty(), "wiener_deconvolve: empty probe");
    assert!(out_len > 0, "wiener_deconvolve: out_len must be positive");
    let probe_energy: f64 = probe.iter().map(|v| v * v).sum();
    assert!(probe_energy > 0.0, "wiener_deconvolve: silent probe");

    let n = next_pow2(received.len().max(probe.len()) + out_len);
    let mut fy = vec![Complex::ZERO; n];
    let mut fx = vec![Complex::ZERO; n];
    for (dst, &s) in fy.iter_mut().zip(received) {
        *dst = Complex::from_real(s);
    }
    for (dst, &s) in fx.iter_mut().zip(probe) {
        *dst = Complex::from_real(s);
    }
    fft_in_place(&mut fy);
    fft_in_place(&mut fx);

    let peak_power = fx.iter().map(|v| v.norm_sqr()).fold(0.0_f64, f64::max);
    let eps = (noise_floor.max(1e-12)) * peak_power;

    for (y, x) in fy.iter_mut().zip(&fx) {
        let denom = x.norm_sqr() + eps;
        *y = *y * x.conj() / denom;
    }
    ifft_in_place(&mut fy);
    fy.truncate(out_len);
    fy.into_iter().map(|z| z.re).collect()
}

/// Wiener-deconvolves every recording in `recordings` against the same
/// probe, scheduled across `pool`. The per-ear channel estimates of one
/// measurement stop are the canonical use.
///
/// Each recording runs the exact same code path as [`wiener_deconvolve`],
/// so results are bit-identical to the sequential loop regardless of the
/// pool size — only the scheduling differs.
///
/// # Panics
/// Panics as [`wiener_deconvolve`] does (empty/silent probe, zero
/// `out_len`).
pub fn wiener_deconvolve_batch(
    recordings: &[&[f64]],
    probe: &[f64],
    noise_floor: f64,
    out_len: usize,
    pool: &uniq_par::ThreadPool,
) -> Vec<Vec<f64>> {
    pool.par_map_chunked(recordings, 1, |rx| {
        wiener_deconvolve(rx, probe, noise_floor, out_len)
    })
}

/// Matched-filter channel estimate: normalized cross-correlation of the
/// recording with the probe.
///
/// Output tap `k` again corresponds to a `k`-sample delay. The estimate is
/// the channel convolved with the probe's (normalized) autocorrelation, so
/// peaks are correct in position but widened.
///
/// # Panics
/// Panics if the probe is empty or silent, or `out_len == 0`.
pub fn matched_filter(received: &[f64], probe: &[f64], out_len: usize) -> Vec<f64> {
    assert!(!probe.is_empty(), "matched_filter: empty probe");
    assert!(out_len > 0, "matched_filter: out_len must be positive");
    let probe_energy: f64 = probe.iter().map(|v| v * v).sum();
    assert!(probe_energy > 0.0, "matched_filter: silent probe");

    // corr[k] = Σ_t received(t) probe(t - k) for k = 0..out_len.
    let mut out = vec![0.0; out_len];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (t, &p) in probe.iter().enumerate() {
            if let Some(&r) = received.get(t + k) {
                acc += r * p;
            }
        }
        *o = acc / probe_energy;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::convolve;
    use crate::signal::linear_chirp;

    /// Deterministic full-band pseudo-noise probe (LCG-driven, uniform in
    /// (-1, 1)). Chirps are band-limited, so exact tap recovery tests need a
    /// probe with energy in every bin.
    fn pn_probe(len: usize) -> Vec<f64> {
        let mut state: u64 = 0x1234_5678_9abc_def0;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            })
            .collect()
    }

    fn test_channel() -> Vec<f64> {
        let mut h = vec![0.0; 64];
        h[5] = 1.0;
        h[12] = -0.5;
        h[30] = 0.25;
        h
    }

    #[test]
    fn wiener_recovers_sparse_channel() {
        let probe = pn_probe(1024);
        let h = test_channel();
        let rx = convolve(&probe, &h);
        let est = wiener_deconvolve(&rx, &probe, 1e-9, 64);
        for (k, (&a, &b)) in est.iter().zip(&h).enumerate() {
            assert!((a - b).abs() < 5e-3, "tap {k}: {a} vs {b}");
        }
    }

    #[test]
    fn wiener_tolerates_noise() {
        let probe = pn_probe(2048);
        let h = test_channel();
        let mut rx = convolve(&probe, &h);
        // Deterministic pseudo-noise at ~-30 dB (independent LCG stream).
        let mut state: u64 = 0xdead_beef_cafe_f00d;
        for v in rx.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v += 0.01 * ((state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0);
        }
        let est = wiener_deconvolve(&rx, &probe, 1e-3, 64);
        // Main taps should still dominate.
        assert!(est[5] > 0.8);
        assert!(est[12] < -0.35);
        assert!(est[30] > 0.15);
    }

    #[test]
    fn matched_filter_peaks_at_channel_taps() {
        let probe = pn_probe(1024);
        let h = test_channel();
        let rx = convolve(&probe, &h);
        let est = matched_filter(&rx, &probe, 64);
        // Autocorrelation smears, but the largest magnitude should be at 5.
        let (argmax, _) = est
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        assert_eq!(argmax, 5);
    }

    #[test]
    fn wiener_identity_channel() {
        let probe = pn_probe(512);
        let est = wiener_deconvolve(&probe, &probe, 1e-9, 8);
        assert!((est[0] - 1.0).abs() < 1e-4);
        for &v in &est[1..] {
            assert!(v.abs() < 1e-3);
        }
    }

    #[test]
    fn wiener_with_chirp_probe_is_bandlimited_but_peaks_correctly() {
        // A chirp probe cannot recover out-of-band bins; the estimate is a
        // band-limited image of the channel with peaks in the right places.
        let probe = linear_chirp(200.0, 20_000.0, 0.05, 48000.0);
        let h = test_channel();
        let rx = convolve(&probe, &h);
        let est = wiener_deconvolve(&rx, &probe, 1e-3, 64);
        let (argmax, _) = est
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        assert_eq!(argmax, 5);
    }

    #[test]
    #[should_panic(expected = "silent probe")]
    fn silent_probe_panics() {
        wiener_deconvolve(&[1.0; 16], &[0.0; 16], 1e-3, 4);
    }

    #[test]
    #[should_panic(expected = "out_len")]
    fn zero_out_len_panics() {
        matched_filter(&[1.0; 16], &[1.0; 4], 0);
    }
}
