//! Descriptive statistics, percentiles and empirical CDFs.
//!
//! The evaluation section of the paper reports medians, percentiles and
//! error CDFs (Figs 17, 21, 22); this module provides those reductions.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Median (linear-interpolated for even length); 0 for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// The `p`-th percentile (`0..=100`) with linear interpolation between order
/// statistics; 0 for an empty slice. NaN samples sort per
/// [`f64::total_cmp`] (after every finite value).
///
/// # Panics
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let f = rank - lo as f64;
        sorted[lo] * (1.0 - f) + sorted[hi] * f
    }
}

/// Minimum; +∞ for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum; −∞ for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// An empirical cumulative distribution function.
///
/// ```
/// use uniq_dsp::stats::Ecdf;
/// let errors = [2.0, 8.0, 4.0, 6.0];
/// let cdf = Ecdf::new(&errors);
/// assert_eq!(cdf.eval(5.0), 0.5);        // half the errors are ≤ 5°
/// assert_eq!(cdf.quantile(0.5), 4.0);    // the median sample
/// ```
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF of the given samples. NaN samples sort per
    /// [`f64::total_cmp`] (after every finite value).
    pub fn new(samples: &[f64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Ecdf { sorted }
    }

    /// Fraction of samples `<= x`; 0 for an empty distribution.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: smallest sample value with CDF ≥ `q` (`q` in `(0, 1]`).
    ///
    /// # Panics
    /// Panics on an empty distribution or `q` outside `(0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty ECDF");
        assert!(q > 0.0 && q <= 1.0, "quantile {q} out of (0,1]");
        let idx = ((q * self.sorted.len() as f64).ceil() as usize - 1).min(self.sorted.len() - 1);
        self.sorted[idx]
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the distribution is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evenly spaced `(value, cdf)` pairs suitable for plotting, stepping
    /// through every sample.
    pub fn curve(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(k, &v)| (v, (k + 1) as f64 / n as f64))
            .collect()
    }
}

/// A fixed-width histogram over `[lo, hi)`.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    /// Samples outside `[lo, hi)`.
    pub outliers: usize,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics unless `lo < hi` and `bins > 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi && bins > 0, "invalid histogram bounds/bins");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            outliers: 0,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        if !(self.lo..self.hi).contains(&x) {
            self.outliers += 1;
            return;
        }
        let bins = self.counts.len();
        let idx = (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize;
        self.counts[idx.min(bins - 1)] += 1;
    }

    /// Bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Centre of bin `k`.
    pub fn bin_center(&self, k: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (k as f64 + 0.5) * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 0.0), 0.0);
        assert_eq!(percentile(&xs, 100.0), 10.0);
        assert_eq!(percentile(&xs, 25.0), 2.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_range_checked() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn minmax() {
        let xs = [3.0, -1.0, 7.0];
        assert_eq!(min(&xs), -1.0);
        assert_eq!(max(&xs), 7.0);
    }

    #[test]
    fn ecdf_eval_monotone() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(10.0), 1.0);
    }

    #[test]
    fn ecdf_quantile_is_order_statistic() {
        let e = Ecdf::new(&[5.0, 1.0, 3.0]);
        assert_eq!(e.quantile(0.34), 3.0);
        assert_eq!(e.quantile(1.0), 5.0);
        assert_eq!(e.quantile(0.01), 1.0);
    }

    #[test]
    fn ecdf_median_matches_percentile() {
        let xs: Vec<f64> = (0..101).map(|k| k as f64).collect();
        let e = Ecdf::new(&xs);
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(median(&xs), 50.0);
    }

    #[test]
    fn ecdf_curve_ends_at_one() {
        let e = Ecdf::new(&[2.0, 1.0]);
        let c = e.curve();
        assert_eq!(c, vec![(1.0, 0.5), (2.0, 1.0)]);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 9.9, -1.0, 10.0] {
            h.add(x);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.outliers, 2);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
    }
}
