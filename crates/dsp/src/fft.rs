//! Iterative radix-2 Cooley–Tukey FFT.
//!
//! Implemented from scratch (no external FFT crate). Sizes must be powers of
//! two; [`next_pow2`] and the `*_padded` helpers take care of zero-padding
//! arbitrary-length signals.
//!
//! Conventions: forward transform is un-normalized
//! (`X[k] = Σ x[n]·e^{-2πikn/N}`), the inverse divides by `N`, so
//! `ifft(fft(x)) == x`.

use crate::complex::Complex;

/// Smallest power of two `>= n` (and `>= 1`).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Returns `true` when `n` is a power of two (and non-zero).
#[inline]
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// In-place forward FFT.
///
/// # Panics
/// Panics if `buf.len()` is not a power of two.
pub fn fft_in_place(buf: &mut [Complex]) {
    transform(buf, false);
}

/// In-place inverse FFT (normalized by `1/N`).
///
/// # Panics
/// Panics if `buf.len()` is not a power of two.
pub fn ifft_in_place(buf: &mut [Complex]) {
    transform(buf, true);
    let n = buf.len() as f64;
    for v in buf.iter_mut() {
        *v = *v / n;
    }
}

/// Forward FFT of a complex slice, returning a new vector.
///
/// ```
/// use uniq_dsp::{fft::{fft, ifft}, Complex};
/// let x = vec![Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::ZERO];
/// let spectrum = fft(&x);                    // impulse → flat spectrum
/// assert!(spectrum.iter().all(|v| (*v - Complex::ONE).abs() < 1e-12));
/// let back = ifft(&spectrum);                // and back again
/// assert!((back[0] - Complex::ONE).abs() < 1e-12);
/// ```
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    fft_in_place(&mut buf);
    buf
}

/// Inverse FFT of a complex slice, returning a new vector.
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    ifft_in_place(&mut buf);
    buf
}

/// Forward FFT of every signal in `batch`, scheduled across `pool`.
///
/// Each transform runs the exact same code path as [`fft`], so results are
/// bit-identical to a sequential `batch.iter().map(|s| fft(s))` regardless
/// of the pool size — only the scheduling differs.
///
/// # Panics
/// Panics if any signal's length is not a power of two (as [`fft`] would).
pub fn fft_batch(batch: &[Vec<Complex>], pool: &uniq_par::ThreadPool) -> Vec<Vec<Complex>> {
    pool.par_map_chunked(batch, 1, |signal| fft(signal))
}

/// Forward FFT of a real signal, zero-padded to `len` (which must be a power
/// of two and `>= signal.len()`).
///
/// # Panics
/// Panics if `len` is not a power of two or is shorter than the signal.
pub fn rfft_padded(signal: &[f64], len: usize) -> Vec<Complex> {
    assert!(is_pow2(len), "rfft_padded: len {len} is not a power of two");
    assert!(
        len >= signal.len(),
        "rfft_padded: len {len} < signal length {}",
        signal.len()
    );
    let mut buf = vec![Complex::ZERO; len];
    for (b, &s) in buf.iter_mut().zip(signal.iter()) {
        *b = Complex::from_real(s);
    }
    fft_in_place(&mut buf);
    buf
}

/// Forward FFT of a real signal, zero-padded to the next power of two.
pub fn rfft(signal: &[f64]) -> Vec<Complex> {
    rfft_padded(signal, next_pow2(signal.len()))
}

/// Inverse FFT returning only the real parts.
///
/// Intended for spectra of real signals (conjugate-symmetric); the imaginary
/// residue is discarded.
pub fn irfft(spectrum: &[Complex]) -> Vec<f64> {
    ifft(spectrum).into_iter().map(|z| z.re).collect()
}

/// The frequency in hertz of FFT bin `k` for a transform of size `n` at
/// `sample_rate`. Bins above `n/2` are negative frequencies.
#[inline]
pub fn bin_frequency(k: usize, n: usize, sample_rate: f64) -> f64 {
    let k = k % n;
    if k <= n / 2 {
        k as f64 * sample_rate / n as f64
    } else {
        (k as f64 - n as f64) * sample_rate / n as f64
    }
}

fn transform(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(is_pow2(n), "FFT size {n} is not a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            buf.swap(i, j);
        }
    }

    // Danielson–Lanczos butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        let half = len / 2;
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..half {
                let u = buf[start + k];
                let v = buf[start + k + half] * w;
                buf[start + k] = u + v;
                buf[start + k + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Naive O(N²) DFT used as a test oracle.
///
/// Exposed publicly so property tests in other crates can cross-check
/// frequency-domain code against an independent implementation.
pub fn dft_naive(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    (0..n)
        .map(|k| {
            (0..n)
                .map(|t| {
                    input[t] * Complex::cis(-2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64)
                })
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (*x - *y).abs() < tol,
                "mismatch: {x:?} vs {y:?} (tol {tol})"
            );
        }
    }

    #[test]
    fn next_pow2_basics() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1024), 1024);
        assert_eq!(next_pow2(1025), 2048);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        let y = fft(&x);
        for v in y {
            assert!((v - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse_at_dc() {
        let x = vec![Complex::ONE; 16];
        let y = fft(&x);
        assert!((y[0] - Complex::from_real(16.0)).abs() < 1e-10);
        for v in &y[1..] {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<Complex> = (0..32)
            .map(|k| {
                Complex::new(
                    (k as f64 * 0.37).sin() + 0.2 * k as f64,
                    (k as f64 * 1.1).cos(),
                )
            })
            .collect();
        assert_close(&fft(&x), &dft_naive(&x), 1e-9);
    }

    #[test]
    fn roundtrip_identity() {
        let x: Vec<Complex> = (0..64)
            .map(|k| Complex::new((k as f64).sin(), (k as f64 * 0.3).cos()))
            .collect();
        assert_close(&ifft(&fft(&x)), &x, 1e-10);
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(2.0 * std::f64::consts::PI * (k0 * t) as f64 / n as f64))
            .collect();
        let y = fft(&x);
        for (k, v) in y.iter().enumerate() {
            if k == k0 {
                assert!((v.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "leakage at bin {k}: {}", v.abs());
            }
        }
    }

    #[test]
    fn rfft_conjugate_symmetry() {
        let sig: Vec<f64> = (0..50).map(|k| (k as f64 * 0.21).sin()).collect();
        let spec = rfft(&sig);
        let n = spec.len();
        for k in 1..n / 2 {
            let a = spec[k];
            let b = spec[n - k].conj();
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn irfft_recovers_real_signal() {
        let sig: Vec<f64> = (0..64).map(|k| (k as f64 * 0.13).cos()).collect();
        let rec = irfft(&rfft(&sig));
        for (a, b) in sig.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn bin_frequency_wraps_negative() {
        assert_eq!(bin_frequency(0, 8, 8000.0), 0.0);
        assert_eq!(bin_frequency(1, 8, 8000.0), 1000.0);
        assert_eq!(bin_frequency(4, 8, 8000.0), 4000.0);
        assert_eq!(bin_frequency(7, 8, 8000.0), -1000.0);
    }

    #[test]
    fn parseval_energy_conserved() {
        let x: Vec<Complex> = (0..128)
            .map(|k| Complex::new((k as f64 * 0.7).sin(), (k as f64 * 0.2).cos()))
            .collect();
        let y = fft(&x);
        let et: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let ef: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((et - ef).abs() / et < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        let mut x = vec![Complex::ZERO; 12];
        fft_in_place(&mut x);
    }
}
