//! Deterministic test and probe signals.
//!
//! The UNIQ measurement protocol plays known probe chirps from the phone;
//! this module generates those probes plus assorted deterministic signals
//! used by tests. Stochastic signals (white noise, synthetic music/speech)
//! live in `uniq-acoustics::signals` because they need an RNG.

use crate::window::{apply_window, window, WindowKind};
use std::f64::consts::PI;

/// A linear frequency sweep (chirp) from `f0` to `f1` hertz over `duration`
/// seconds, sampled at `sample_rate`, with a Tukey taper to avoid spectral
/// splatter at the edges.
///
/// The instantaneous phase is `2π (f0 t + (f1-f0) t² / 2T)`, the standard
/// linear chirp used by acoustic channel sounders.
pub fn linear_chirp(f0: f64, f1: f64, duration: f64, sample_rate: f64) -> Vec<f64> {
    let n = (duration * sample_rate).round() as usize;
    let mut out: Vec<f64> = (0..n)
        .map(|k| {
            let t = k as f64 / sample_rate;
            let phase = 2.0 * PI * (f0 * t + 0.5 * (f1 - f0) * t * t / duration);
            phase.sin()
        })
        .collect();
    let win = window(WindowKind::Tukey(0.1), n);
    apply_window(&mut out, &win);
    out
}

/// An exponential (logarithmic) sweep from `f0` to `f1` hertz.
///
/// Exponential sweeps distribute energy uniformly per octave and are the
/// classic choice for room/HRTF impulse-response measurement (Farina sweep).
pub fn exponential_chirp(f0: f64, f1: f64, duration: f64, sample_rate: f64) -> Vec<f64> {
    assert!(f0 > 0.0 && f1 > f0, "exponential chirp needs 0 < f0 < f1");
    let n = (duration * sample_rate).round() as usize;
    let k = (f1 / f0).ln();
    let mut out: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 / sample_rate;
            let phase = 2.0 * PI * f0 * duration / k * ((k * t / duration).exp() - 1.0);
            phase.sin()
        })
        .collect();
    let win = window(WindowKind::Tukey(0.05), n);
    apply_window(&mut out, &win);
    out
}

/// A pure sine tone at `freq` hertz.
pub fn tone(freq: f64, duration: f64, sample_rate: f64) -> Vec<f64> {
    let n = (duration * sample_rate).round() as usize;
    (0..n)
        .map(|k| (2.0 * PI * freq * k as f64 / sample_rate).sin())
        .collect()
}

/// A unit impulse (Kronecker delta) at sample `at` in a buffer of `len`.
///
/// # Panics
/// Panics if `at >= len`.
pub fn impulse(len: usize, at: usize) -> Vec<f64> {
    assert!(at < len, "impulse position {at} out of range {len}");
    let mut v = vec![0.0; len];
    v[at] = 1.0;
    v
}

/// Maximum absolute amplitude of a signal (0 for an empty slice).
pub fn peak_amplitude(signal: &[f64]) -> f64 {
    signal.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

/// Root-mean-square level of a signal (0 for an empty slice).
pub fn rms(signal: &[f64]) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    (signal.iter().map(|v| v * v).sum::<f64>() / signal.len() as f64).sqrt()
}

/// Scales a signal in place so its peak amplitude is `target` (no-op for
/// silent input).
pub fn normalize_peak(signal: &mut [f64], target: f64) {
    let peak = peak_amplitude(signal);
    if peak > 0.0 {
        let g = target / peak;
        for v in signal.iter_mut() {
            *v *= g;
        }
    }
}

/// Total energy `Σ x²` of a signal.
pub fn energy(signal: &[f64]) -> f64 {
    signal.iter().map(|v| v * v).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::rfft;

    #[test]
    fn chirp_length_matches_duration() {
        let c = linear_chirp(100.0, 8000.0, 0.05, 48000.0);
        assert_eq!(c.len(), 2400);
    }

    #[test]
    fn chirp_amplitude_bounded() {
        let c = linear_chirp(100.0, 8000.0, 0.02, 48000.0);
        assert!(peak_amplitude(&c) <= 1.0 + 1e-12);
        assert!(peak_amplitude(&c) > 0.9);
    }

    #[test]
    fn chirp_spectrum_covers_band() {
        // Energy should be concentrated between f0 and f1.
        let sr = 16000.0;
        let c = linear_chirp(1000.0, 4000.0, 0.064, sr);
        let spec = rfft(&c);
        let n = spec.len();
        let hz_per_bin = sr / n as f64;
        let band: f64 = spec[..n / 2]
            .iter()
            .enumerate()
            .filter(|(k, _)| {
                let f = *k as f64 * hz_per_bin;
                (900.0..=4100.0).contains(&f)
            })
            .map(|(_, v)| v.norm_sqr())
            .sum();
        let total: f64 = spec[..n / 2].iter().map(|v| v.norm_sqr()).sum();
        assert!(band / total > 0.95, "band fraction {}", band / total);
    }

    #[test]
    fn exponential_chirp_starts_slow() {
        let sr = 48000.0;
        let c = exponential_chirp(100.0, 10000.0, 0.1, sr);
        assert_eq!(c.len(), 4800);
        assert!(peak_amplitude(&c) > 0.9);
    }

    #[test]
    #[should_panic(expected = "0 < f0 < f1")]
    fn exponential_chirp_rejects_zero_start() {
        exponential_chirp(0.0, 1000.0, 0.1, 48000.0);
    }

    #[test]
    fn tone_period_is_correct() {
        let sr = 8000.0;
        let t = tone(1000.0, 0.01, sr);
        // 1 kHz at 8 kHz: period of 8 samples; sample 0 and 8 both ~0, sample 2 is peak.
        assert!(t[0].abs() < 1e-12);
        assert!((t[2] - 1.0).abs() < 1e-12);
        assert!((t[8]).abs() < 1e-9);
    }

    #[test]
    fn impulse_is_delta() {
        let d = impulse(8, 3);
        assert_eq!(energy(&d), 1.0);
        assert_eq!(d[3], 1.0);
    }

    #[test]
    fn rms_of_unit_sine_is_inv_sqrt2() {
        let t = tone(100.0, 1.0, 8000.0);
        assert!((rms(&t) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
    }

    #[test]
    fn normalize_peak_hits_target() {
        let mut s = vec![0.1, -0.4, 0.2];
        normalize_peak(&mut s, 1.0);
        assert!((peak_amplitude(&s) - 1.0).abs() < 1e-12);
        let mut silent = vec![0.0; 4];
        normalize_peak(&mut silent, 1.0);
        assert!(silent.iter().all(|&v| v == 0.0));
    }
}
