//! # uniq-par
//!
//! A scoped work-stealing thread pool for the UNIQ personalization
//! pipeline, built on `std` alone (plus `uniq-obs` for allocation
//! attribution — see below). The build environment has no crates.io
//! access, so this crate implements the small subset of rayon's surface
//! the workspace needs — [`ThreadPool::scope`]/[`Scope::spawn`], a chunked
//! [`ThreadPool::par_map`], and panic propagation — from scratch on
//! `std::thread` + `Mutex`/`Condvar`.
//!
//! Design contract, in order:
//!
//! 1. **Determinism.** Parallel results are bit-identical to sequential
//!    ones. [`ThreadPool::par_map`] writes each chunk's output into its
//!    index-ordered slot and reduces in index order, never in completion
//!    order; [`ThreadPool::try_par_map`] evaluates every item and returns
//!    the lowest-index error, exactly what a sequential in-order scan
//!    reports. No atomics-ordered accumulation anywhere.
//! 2. **Panic propagation.** A panicking task is caught on the worker,
//!    carried to the owning [`ThreadPool::scope`] call, and re-raised
//!    there. The pool survives and stays usable.
//! 3. **One thread means zero overhead.** A pool of size 1 spawns no
//!    workers and `par_map` degenerates to a plain sequential `map` on the
//!    caller's thread, preserving the pre-parallel code path exactly.
//!
//! Pools are deduplicated by size through [`pool`], and the default size
//! comes from `UNIQ_THREADS` or the machine's available parallelism.
//!
//! ## Allocation attribution
//!
//! `uniq-memprof` attributes every heap allocation to the active
//! `uniq-obs` span. For per-stage totals to be bit-identical across
//! thread counts — the memory-determinism hard gate — this pool does two
//! things:
//!
//! 1. [`Scope::spawn`] captures the submitting thread's stage
//!    ([`uniq_obs::alloc_stage_handoff`]) into the job and reinstalls it
//!    on the worker, so a parallel closure's allocations land on the same
//!    stage they land on when the closure runs inline on the caller.
//! 2. Pool-owned allocations whose shape varies with thread count — job
//!    boxes, queue growth, chunk buckets, result concatenation — sit
//!    inside [`uniq_obs::suspend_alloc_stage`] regions and stay out of
//!    the per-stage profile entirely.

#![warn(missing_docs)]

mod pool;
mod scope;

pub use pool::ThreadPool;
pub use scope::Scope;

use std::sync::{Arc, Mutex, OnceLock};

/// Hard cap on pool size: guards against absurd `UNIQ_THREADS` values.
pub const MAX_THREADS: usize = 256;

/// Parses a thread-count override (the `UNIQ_THREADS` environment
/// variable): a positive integer, clamped to [`MAX_THREADS`]. Returns
/// `None` for absent, empty, zero, or unparsable values.
pub fn threads_from_env(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .map(|n| n.min(MAX_THREADS))
}

/// The process-wide default parallelism: `UNIQ_THREADS` if set and valid,
/// otherwise `std::thread::available_parallelism()`. Computed once and
/// cached for the life of the process.
pub fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        // uniq-analyzer: allow(determinism-taint) — UNIQ_THREADS picks the pool width only; par_map output is index-ordered and bit-identical at any width
        threads_from_env(std::env::var("UNIQ_THREADS").ok().as_deref()).unwrap_or_else(|| {
            // uniq-analyzer: allow(determinism-taint) — machine parallelism picks the pool width only; results never depend on it
            std::thread::available_parallelism()
                .map(|n| n.get().min(MAX_THREADS))
                .unwrap_or(1)
        })
    })
}

/// Identity of the calling thread within uniq-par: `Some((pool_id,
/// worker_index))` when called from a pool worker thread, `None` for any
/// other thread (including a caller that is *helping* run jobs while it
/// waits on a scope — helping happens on the caller's own thread).
///
/// This is the thread-attribution hook for observability: a profiling
/// sink calls it while handling a span event (sinks run on the emitting
/// thread) to tag the sample with the worker that produced it, making
/// pool imbalance visible without threading IDs through every event.
pub fn current_worker() -> Option<(usize, usize)> {
    pool::current_worker_identity()
}

/// Returns the shared pool of the requested size, creating it on first
/// use. `threads == 0` means "default" (see [`default_threads`]). Pools
/// are cached per size and live for the rest of the process, so hot paths
/// can call this per invocation without paying thread-spawn costs.
pub fn pool(threads: usize) -> Arc<ThreadPool> {
    type Registry = Mutex<Vec<(usize, Arc<ThreadPool>)>>;
    static POOLS: OnceLock<Registry> = OnceLock::new();
    let n = if threads == 0 {
        default_threads()
    } else {
        threads.min(MAX_THREADS)
    };
    // Registry growth and pool construction (worker stacks, queues) are
    // one-time infrastructure cost, not stage work.
    let _quiet = uniq_obs::suspend_alloc_stage();
    let mut pools = POOLS
        // uniq-analyzer: allow(hot-path-alloc) — the registry Vec is built once per process (and grown once per distinct pool size); steady-state calls only read it
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .expect("pool registry poisoned");
    if let Some((_, p)) = pools.iter().find(|(size, _)| *size == n) {
        return p.clone();
    }
    let p = Arc::new(ThreadPool::new(n));
    pools.push((n, p.clone()));
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing() {
        assert_eq!(threads_from_env(None), None);
        assert_eq!(threads_from_env(Some("")), None);
        assert_eq!(threads_from_env(Some("0")), None);
        assert_eq!(threads_from_env(Some("banana")), None);
        assert_eq!(threads_from_env(Some("4")), Some(4));
        assert_eq!(threads_from_env(Some(" 8 ")), Some(8));
        assert_eq!(threads_from_env(Some("100000")), Some(MAX_THREADS));
    }

    #[test]
    fn pool_registry_dedupes_by_size() {
        let a = pool(3);
        let b = pool(3);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.threads(), 3);
        let c = pool(2);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn zero_means_default() {
        let d = pool(0);
        assert_eq!(d.threads(), default_threads());
    }

    #[test]
    fn current_worker_identifies_pool_threads() {
        // The calling thread is not a worker.
        assert_eq!(current_worker(), None);
        // In a pool of 4 over enough slow-ish items, at least one chunk
        // runs on a spawned worker (index < threads - 1); chunks that the
        // helping caller ran report None.
        let p = pool(4);
        let items: Vec<u64> = (0..64).collect();
        let ids = p.par_map_chunked(&items, 1, |_| current_worker());
        for id in ids.iter().flatten() {
            assert!(id.1 < p.threads() - 1, "worker index out of range: {id:?}");
        }
    }
}
