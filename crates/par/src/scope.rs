//! Scoped tasks: borrow-friendly spawning with panic capture.

use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::pool::{Job, ThreadPool};

/// Shared bookkeeping for one [`ThreadPool::scope`] call: how many
/// spawned tasks are still outstanding, and the first panic any of them
/// raised.
pub(crate) struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl ScopeState {
    pub(crate) fn new() -> ScopeState {
        ScopeState {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn task_started(&self) {
        *self.pending.lock().expect("scope pending poisoned") += 1;
    }

    fn task_finished(&self) {
        let mut pending = self.pending.lock().expect("scope pending poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn store_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = self.panic.lock().expect("scope panic slot poisoned");
        // Keep the first panic: with several failing tasks the earliest
        // arrival wins, and the rest are dropped like rayon does.
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    pub(crate) fn take_panic(&self) -> Option<Box<dyn Any + Send + 'static>> {
        self.panic.lock().expect("scope panic slot poisoned").take()
    }

    pub(crate) fn is_done(&self) -> bool {
        *self.pending.lock().expect("scope pending poisoned") == 0
    }

    /// Blocks briefly until a task completes (or a short timeout, after
    /// which the caller re-checks the queues for newly spawned work).
    pub(crate) fn wait_done_briefly(&self) {
        let pending = self.pending.lock().expect("scope pending poisoned");
        if *pending == 0 {
            return;
        }
        let _unused = self
            .done
            .wait_timeout(pending, Duration::from_micros(200))
            .expect("scope pending poisoned");
    }
}

/// A task scope handed to the closure of [`ThreadPool::scope`]. Tasks
/// spawned through it may borrow anything that outlives `'env`.
pub struct Scope<'env> {
    pool: &'env ThreadPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`: prevents the scope from being coerced to a
    /// longer environment lifetime, which would let tasks borrow data
    /// that dies before the scope drains.
    _env: PhantomData<&'env mut &'env ()>,
}

impl std::fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope").finish_non_exhaustive()
    }
}

impl<'env> Scope<'env> {
    pub(crate) fn new(pool: &'env ThreadPool, state: Arc<ScopeState>) -> Scope<'env> {
        Scope {
            pool,
            state,
            _env: PhantomData,
        }
    }

    /// Spawns `f` onto the pool. The task may borrow from the
    /// environment (`'env`); the owning [`ThreadPool::scope`] call does
    /// not return until the task has run to completion or panicked.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.task_started();
        let state = self.state.clone();
        // Carry the submitting thread's allocation-attribution stage into
        // the job, so the closure's allocations are attributed exactly as
        // they would be running inline on the caller — the property that
        // makes per-stage allocation totals thread-count-invariant. The
        // job box and queue push themselves are pool infrastructure and
        // stay unattributed.
        let stage = uniq_obs::alloc_stage_handoff();
        let _quiet = uniq_obs::suspend_alloc_stage();
        let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            uniq_obs::with_alloc_stage(stage, || {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                    state.store_panic(payload);
                }
                state.task_finished();
            });
        });
        // SAFETY: the job is erased to 'static so it can sit in the
        // pool's 'static queues, but it never outlives 'env in practice:
        // `ThreadPool::scope` blocks (in its Waiter guard, even when the
        // scope closure unwinds) until `pending` reaches zero, and
        // `task_finished` runs strictly after the closure body — so every
        // borrow the closure holds is still alive whenever it executes.
        // The fat-pointer layout of Box<dyn FnOnce> is lifetime-invariant,
        // making the transmute itself a no-op.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send + 'static>>(
                wrapped,
            )
        };
        self.pool.inject(job);
    }
}
