//! The worker pool: threads, queues, and the stealing scheduler.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::scope::{Scope, ScopeState};

/// A unit of queued work. Jobs are always the panic-catching wrappers
/// built by [`Scope::spawn`], so executing one never unwinds into the
/// worker loop.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// Process-unique pool identities, used to tell which pool (if any) the
/// current thread works for.
static NEXT_POOL_ID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// `(pool id, worker index)` when the current thread is a pool worker.
    static WORKER: std::cell::Cell<Option<(usize, usize)>> =
        const { std::cell::Cell::new(None) };
}

/// `(pool id, worker index)` of the calling thread when it is a pool
/// worker, `None` otherwise (see [`crate::current_worker`]).
pub(crate) fn current_worker_identity() -> Option<(usize, usize)> {
    WORKER.with(|w| w.get())
}

/// Wakes sleeping workers; the generation counter prevents lost wakeups
/// (a worker only sleeps if the generation is unchanged since it last
/// searched every queue and found nothing).
struct SleepState {
    generation: u64,
    shutdown: bool,
}

pub(crate) struct Shared {
    /// External submissions (from threads that are not workers of this
    /// pool) land here, FIFO.
    injector: Mutex<VecDeque<Job>>,
    /// One deque per worker: the owner pushes and pops at the back
    /// (LIFO, cache-friendly for nested spawns); thieves steal from the
    /// front (FIFO, oldest-first).
    locals: Vec<Mutex<VecDeque<Job>>>,
    sleep: Mutex<SleepState>,
    wake: Condvar,
}

impl Shared {
    /// Pushes a job from the current thread, preferring the thread's own
    /// local queue when it is a worker of this pool.
    fn push(&self, pool_id: usize, job: Job) {
        match WORKER.with(|w| w.get()) {
            Some((id, idx)) if id == pool_id => {
                self.locals[idx]
                    .lock()
                    .expect("local queue poisoned")
                    .push_back(job);
            }
            _ => {
                self.injector
                    .lock()
                    .expect("injector poisoned")
                    .push_back(job);
            }
        }
        let mut sleep = self.sleep.lock().expect("sleep state poisoned");
        sleep.generation = sleep.generation.wrapping_add(1);
        drop(sleep);
        self.wake.notify_all();
    }

    /// Finds the next runnable job: own local queue (LIFO), then the
    /// injector, then stealing from the other workers (FIFO).
    pub(crate) fn find_job(&self, me: Option<usize>) -> Option<Job> {
        if let Some(idx) = me {
            if let Some(job) = self.locals[idx]
                .lock()
                .expect("local queue poisoned")
                .pop_back()
            {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().expect("injector poisoned").pop_front() {
            return Some(job);
        }
        let n = self.locals.len();
        let start = me.map(|i| i + 1).unwrap_or(0);
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(job) = self.locals[victim]
                .lock()
                .expect("local queue poisoned")
                .pop_front()
            {
                return Some(job);
            }
        }
        None
    }
}

/// A fixed-size pool of worker threads supporting scoped tasks and
/// deterministic parallel maps. See the crate docs for the determinism
/// and panic contracts.
pub struct ThreadPool {
    id: usize,
    threads: usize,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("id", &self.id)
            .field("threads", &self.threads)
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with `threads` total parallelism (clamped to at
    /// least 1). `threads - 1` worker threads are spawned; the caller of
    /// [`ThreadPool::scope`] contributes the final lane by helping to run
    /// queued jobs while it waits, so a pool of size 1 spawns no threads
    /// at all.
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let id = NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed);
        let worker_count = threads - 1;
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..worker_count)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            sleep: Mutex::new(SleepState {
                generation: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
        });
        let workers = (0..worker_count)
            .map(|idx| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    // uniq-analyzer: allow(hot-path-alloc) — thread names are formatted once at pool construction; pools are cached per size for the life of the process
                    .name(format!("uniq-par-{id}-{idx}"))
                    .spawn(move || worker_loop(shared, id, idx))
                    // uniq-analyzer: allow(panic-reachability) — failing to spawn a worker at pool construction is unrecoverable; fail fast before any work is accepted
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            id,
            threads,
            shared,
            workers,
        }
    }

    /// The pool's total parallelism (worker threads plus the helping
    /// scope owner).
    pub fn threads(&self) -> usize {
        self.threads
    }

    pub(crate) fn inject(&self, job: Job) {
        // uniq-analyzer: allow(hot-path-alloc) — queue submission, one per spawned job; the deque's capacity is amortized across the batch
        self.shared.push(self.id, job);
    }

    /// The current thread's worker index in *this* pool, if any.
    fn current_worker(&self) -> Option<usize> {
        WORKER
            .with(|w| w.get())
            .and_then(|(id, idx)| if id == self.id { Some(idx) } else { None })
    }

    /// Creates a task scope: `f` may spawn borrowing tasks via
    /// [`Scope::spawn`]; `scope` returns only after every spawned task has
    /// finished. If any task panicked, the first captured panic is
    /// re-raised here (after all tasks completed, so borrows stay sound).
    pub fn scope<'env, T>(&'env self, f: impl FnOnce(&Scope<'env>) -> T) -> T {
        // Scope bookkeeping is pool infrastructure: unsuspended, its Arc
        // allocation would be charged to the caller's open stage in the
        // parallel path only (the sequential fast path never builds a
        // scope), breaking the thread-count invariance of per-stage
        // allocation totals.
        let state = {
            let _quiet = uniq_obs::suspend_alloc_stage();
            Arc::new(ScopeState::new())
        };
        let scope = Scope::new(self, state.clone());
        let result = {
            // Block until the scope drains even if `f` itself panics:
            // spawned tasks may borrow locals of `f`'s caller.
            struct Waiter<'a> {
                pool: &'a ThreadPool,
                state: &'a ScopeState,
            }
            impl Drop for Waiter<'_> {
                fn drop(&mut self) {
                    self.pool.wait_scope(self.state);
                }
            }
            let _waiter = Waiter {
                pool: self,
                state: &state,
            };
            f(&scope)
        };
        if let Some(payload) = state.take_panic() {
            std::panic::resume_unwind(payload);
        }
        result
    }

    /// Runs queued jobs on the calling thread until `state` has no
    /// pending tasks. Helping (rather than blocking) keeps nested scopes
    /// deadlock-free: a worker waiting on an inner scope executes other
    /// runnable tasks, including the inner scope's own.
    fn wait_scope(&self, state: &ScopeState) {
        let me = self.current_worker();
        loop {
            if state.is_done() {
                return;
            }
            match self.shared.find_job(me) {
                Some(job) => job(),
                None => state.wait_done_briefly(),
            }
        }
    }

    /// Deterministic parallel map with an automatically chosen chunk
    /// size. Output order always matches input order, and every element
    /// is produced by the same `f(&item)` call the sequential map would
    /// make — scheduling affects only *when*, never *what*.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        // Aim for a few chunks per lane so stealing can balance load, but
        // never chunks so small the queue overhead dominates.
        let chunk = (items.len() / (4 * self.threads)).max(1);
        self.par_map_chunked(items, chunk, f)
    }

    /// [`ThreadPool::par_map`] with an explicit chunk size (`>= 1`):
    /// items are processed in `chunk`-sized runs, each run's outputs kept
    /// together and concatenated in index order.
    ///
    /// # Panics
    /// Panics if `chunk == 0`, or re-raises the first panic from `f`.
    pub fn par_map_chunked<T, U, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        assert!(chunk >= 1, "chunk size must be at least 1");
        // Output-collection Vecs are pool infrastructure: their count and
        // sizes depend on the chunking, not the workload, so they are
        // allocated under suspended attribution on *both* paths — per-item
        // work inside `f` is all the memory profiler sees, which keeps
        // per-stage allocation totals identical at any thread count.
        if self.threads == 1 || items.len() <= chunk {
            let mut out = {
                let _quiet = uniq_obs::suspend_alloc_stage();
                Vec::with_capacity(items.len())
            };
            for item in items {
                // uniq-analyzer: allow(hot-path-alloc) — pushes into Vecs pre-sized with with_capacity (here and per chunk below); never reallocates mid-batch
                out.push(f(item));
            }
            return out;
        }
        let buckets: Mutex<Vec<(usize, Vec<U>)>> = {
            let _quiet = uniq_obs::suspend_alloc_stage();
            Mutex::new(Vec::with_capacity(items.len() / chunk + 1))
        };
        self.scope(|s| {
            for (index, run) in items.chunks(chunk).enumerate() {
                let buckets = &buckets;
                let f = &f;
                s.spawn(move || {
                    let mut values = {
                        let _quiet = uniq_obs::suspend_alloc_stage();
                        Vec::with_capacity(run.len())
                    };
                    for item in run {
                        values.push(f(item));
                    }
                    let _quiet = uniq_obs::suspend_alloc_stage();
                    buckets
                        .lock()
                        .expect("par_map buckets poisoned")
                        .push((index, values));
                });
            }
        });
        let _quiet = uniq_obs::suspend_alloc_stage();
        let mut buckets = buckets.into_inner().expect("par_map buckets poisoned");
        // Ordered reduction: completion order is scheduling noise; index
        // order is the sequential truth.
        buckets.sort_unstable_by_key(|(index, _)| *index);
        let mut out = Vec::with_capacity(items.len());
        for (_, values) in buckets {
            out.extend(values);
        }
        debug_assert_eq!(out.len(), items.len());
        out
    }

    /// Fallible deterministic parallel map. Every item is evaluated (so
    /// side channels like metrics see the same set of calls at any thread
    /// count), then the lowest-index error — the one a sequential
    /// in-order scan would hit first — is returned.
    pub fn try_par_map<T, U, E, F>(&self, items: &[T], f: F) -> Result<Vec<U>, E>
    where
        T: Sync,
        U: Send,
        E: Send,
        F: Fn(&T) -> Result<U, E> + Sync,
    {
        let results = self.par_map(items, f);
        let _quiet = uniq_obs::suspend_alloc_stage();
        let mut out = Vec::with_capacity(results.len());
        for result in results {
            out.push(result?);
        }
        Ok(out)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut sleep = self.shared.sleep.lock().expect("sleep state poisoned");
            sleep.shutdown = true;
            sleep.generation = sleep.generation.wrapping_add(1);
        }
        self.shared.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, pool_id: usize, index: usize) {
    WORKER.with(|w| w.set(Some((pool_id, index))));
    loop {
        // Snapshot the wakeup generation *before* searching, so a push
        // that races with the search bumps the generation and the sleep
        // below returns immediately.
        let seen = {
            let sleep = shared.sleep.lock().expect("sleep state poisoned");
            if sleep.shutdown {
                return;
            }
            sleep.generation
        };
        if let Some(job) = shared.find_job(Some(index)) {
            job();
            continue;
        }
        let mut sleep = shared.sleep.lock().expect("sleep state poisoned");
        while sleep.generation == seen && !sleep.shutdown {
            sleep = shared.wake.wait(sleep).expect("sleep state poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_thread_pool_runs_on_caller() {
        let pool = ThreadPool::new(1);
        let caller = std::thread::current().id();
        let ids = pool.par_map(&[1, 2, 3], |_| std::thread::current().id());
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn par_map_preserves_order() {
        let pool = ThreadPool::new(4);
        let items: Vec<u64> = (0..1000).collect();
        let out = pool.par_map_chunked(&items, 7, |&x| x * x);
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn scope_runs_borrowing_tasks() {
        let pool = ThreadPool::new(3);
        let total = AtomicU64::new(0);
        let data = [5u64, 6, 7];
        pool.scope(|s| {
            for &v in &data {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(v, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 18);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = ThreadPool::new(2);
        let out = pool.par_map(&[10usize, 20, 30, 40], |&base| {
            // Inner parallelism on the same (registry) pool from a task.
            let inner = crate::pool(2).par_map_chunked(&[base, base + 1, base + 2], 1, |&x| x);
            inner.iter().sum::<usize>()
        });
        assert_eq!(out, vec![33, 63, 93, 123]);
    }

    #[test]
    fn try_par_map_returns_lowest_index_error() {
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let result: Result<Vec<usize>, usize> =
            pool.try_par_map(&items, |&x| if x == 13 || x == 77 { Err(x) } else { Ok(x) });
        assert_eq!(result, Err(13));
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(3);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.par_map(&[1, 2, 3, 4, 5, 6, 7, 8], |&x| {
                if x == 5 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        let payload = outcome.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("boom at 5"), "payload: {message}");
        // The pool must remain fully usable afterwards.
        let out = pool.par_map_chunked(&[1, 2, 3, 4], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4, 5]);
    }
}
