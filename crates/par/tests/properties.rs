//! Property tests for the uniq-par pool: parallel map must be
//! indistinguishable from sequential map for any input length, chunk
//! size, and thread count, and a panicking worker must not poison the
//! pool.

use proptest::prelude::*;

fn work(x: &i64) -> i64 {
    // Non-commutative with index so ordering bugs can't cancel out.
    x.wrapping_mul(31).wrapping_add(7)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn par_map_matches_sequential_map(
        items in prop::collection::vec(-1_000_000i64..1_000_000, 0..300),
        threads in 1usize..9,
        chunk in 1usize..40,
    ) {
        let pool = uniq_par::pool(threads);
        let parallel = pool.par_map_chunked(&items, chunk, work);
        let sequential: Vec<i64> = items.iter().map(work).collect();
        prop_assert_eq!(parallel, sequential);
    }

    #[test]
    fn par_map_default_chunking_matches(
        items in prop::collection::vec(-1_000_000i64..1_000_000, 0..300),
        threads in 1usize..9,
    ) {
        let pool = uniq_par::pool(threads);
        let parallel = pool.par_map(&items, work);
        let sequential: Vec<i64> = items.iter().map(work).collect();
        prop_assert_eq!(parallel, sequential);
    }

    #[test]
    fn try_par_map_reports_first_error_in_index_order(
        items in prop::collection::vec(0i64..100, 1..200),
        threads in 1usize..9,
    ) {
        let pool = uniq_par::pool(threads);
        let fallible = |x: &i64| -> Result<i64, i64> {
            if *x >= 90 { Err(*x) } else { Ok(work(x)) }
        };
        let parallel = pool.try_par_map(&items, fallible);
        let sequential: Result<Vec<i64>, i64> = items.iter().map(fallible).collect();
        prop_assert_eq!(parallel, sequential);
    }
}

#[test]
fn empty_input_yields_empty_output() {
    let pool = uniq_par::pool(4);
    let out = pool.par_map(&[] as &[i64], work);
    assert!(out.is_empty());
    let out = pool.par_map_chunked(&[] as &[i64], 1, work);
    assert!(out.is_empty());
}

#[test]
fn fewer_items_than_threads() {
    let pool = uniq_par::pool(8);
    for len in 1..8 {
        let items: Vec<i64> = (0..len).collect();
        let expected: Vec<i64> = items.iter().map(work).collect();
        assert_eq!(pool.par_map_chunked(&items, 1, work), expected);
    }
}

#[test]
fn panicking_worker_propagates_and_pool_stays_usable() {
    let pool = uniq_par::pool(4);
    let items: Vec<i64> = (0..64).collect();
    for round in 0..3 {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.par_map_chunked(&items, 2, |&x| {
                if x == 33 {
                    panic!("injected failure in round {round}");
                }
                work(&x)
            })
        }));
        let payload = caught.expect_err("the panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic payload should be the formatted message");
        assert!(msg.contains("injected failure"));
        // The same pool must keep producing correct results afterwards.
        let expected: Vec<i64> = items.iter().map(work).collect();
        assert_eq!(pool.par_map_chunked(&items, 3, work), expected);
    }
}
