//! Golden fixtures for the four interprocedural rule families. Each
//! family gets a known-bad multi-file fixture that must produce exactly
//! the expected findings (with their call traces) and a clean or
//! negative counterpart that must stay silent. The fixtures live under
//! `fixtures/flow/` and are assembled into in-memory workspaces here —
//! no manifests, so call resolution is unrestricted by dependency
//! closure, which is what a self-contained fixture wants.

use uniq_analyzer::{analyze_sources, Severity, SourceSpec, WorkspaceReport};

fn spec(path: &str, crate_name: &str, text: &str) -> SourceSpec {
    SourceSpec {
        path: path.to_string(),
        crate_name: crate_name.to_string(),
        is_crate_root: false,
        text: text.to_string(),
    }
}

fn run(specs: &[SourceSpec], strict: bool) -> WorkspaceReport {
    analyze_sources(specs, strict, 1)
}

const TAINT_ENTRY: &str = include_str!("../fixtures/flow/taint_entry.rs");
const TAINT_HELPER: &str = include_str!("../fixtures/flow/taint_helper.rs");
const TAINT_BENCH: &str = include_str!("../fixtures/flow/taint_bench_entry.rs");
const PANIC_ENTRY: &str = include_str!("../fixtures/flow/panic_entry.rs");
const PANIC_HELPER: &str = include_str!("../fixtures/flow/panic_helper.rs");
const LOCK_CYCLE: &str = include_str!("../fixtures/flow/lock_cycle.rs");
const LOCK_CLEAN: &str = include_str!("../fixtures/flow/lock_clean.rs");
const HOT_ALLOC: &str = include_str!("../fixtures/flow/hot_alloc.rs");
const HOT_CLEAN: &str = include_str!("../fixtures/flow/hot_clean.rs");

#[test]
fn taint_laundered_through_utility_crate_is_flagged_at_the_entry() {
    let report = run(
        &[
            spec("crates/core/src/entry.rs", "core", TAINT_ENTRY),
            spec("crates/par/src/timing.rs", "par", TAINT_HELPER),
        ],
        false,
    );
    let diags = &report.diagnostics;
    assert_eq!(diags.len(), 1, "{diags:#?}");
    let d = &diags[0];
    assert_eq!(d.rule, "determinism-taint");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.file, "crates/core/src/entry.rs");
    assert_eq!(d.line, 8, "reported at the public fn definition");
    assert!(d.message.contains("estimate_with_budget"), "{}", d.message);
    // Source→sink trace: entry definition, the call hop, the clock read.
    assert_eq!(d.trace.len(), 3, "{:#?}", d.trace);
    assert!(d.trace[0].symbol.contains("estimate_with_budget"));
    assert!(d.trace[1].symbol.contains("elapsed_budget_ms"));
    assert_eq!(d.trace[2].file, "crates/par/src/timing.rs");
    assert_eq!(d.trace[2].line, 7);
    assert!(
        d.trace[2].symbol.contains("wall-clock"),
        "{}",
        d.trace[2].symbol
    );
}

#[test]
fn taint_helper_called_only_from_bench_stays_silent() {
    let report = run(
        &[
            spec("crates/bench/src/run.rs", "bench", TAINT_BENCH),
            spec("crates/par/src/timing.rs", "par", TAINT_HELPER),
        ],
        false,
    );
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
}

#[test]
fn panic_site_reachable_from_result_entry_is_flagged_at_the_site() {
    let report = run(
        &[
            spec("crates/core/src/stats.rs", "core", PANIC_ENTRY),
            spec("crates/par/src/qhelper.rs", "par", PANIC_HELPER),
        ],
        false,
    );
    let diags = &report.diagnostics;
    assert_eq!(diags.len(), 1, "{diags:#?}");
    let d = &diags[0];
    assert_eq!(d.rule, "panic-reachability");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.file, "crates/par/src/qhelper.rs");
    assert_eq!(d.line, 8, "reported at the unwrap, not the entry");
    assert!(d.message.contains("first_or_die"), "{}", d.message);
    assert!(d.message.contains("summarize"), "{}", d.message);
    // `orphan_unwrap` has a panic site too; no entry reaches it, so the
    // single finding above is the whole report.
    assert!(d.trace.iter().any(|s| s.symbol.contains("summarize")));
}

#[test]
fn lock_cycle_and_pool_boundary_are_flagged() {
    let report = run(
        &[spec(
            "crates/telemetry/src/locks.rs",
            "telemetry",
            LOCK_CYCLE,
        )],
        false,
    );
    let diags = &report.diagnostics;
    assert_eq!(diags.len(), 3, "{diags:#?}");
    assert!(diags.iter().all(|d| d.rule == "lock-order"));
    assert!(diags.iter().all(|d| d.severity == Severity::Error));
    let cycle_lines: Vec<u32> = diags
        .iter()
        .filter(|d| d.message.contains("cycle"))
        .map(|d| d.line)
        .collect();
    assert_eq!(cycle_lines, vec![15, 23], "one witness per direction");
    let pool = diags
        .iter()
        .find(|d| d.message.contains("pool boundary"))
        .expect("pool-boundary finding");
    assert_eq!(pool.line, 31);
    assert!(pool.message.contains("telemetry.alpha"), "{}", pool.message);
}

#[test]
fn consistent_lock_order_with_early_release_is_quiet() {
    let report = run(
        &[spec(
            "crates/telemetry/src/locks.rs",
            "telemetry",
            LOCK_CLEAN,
        )],
        false,
    );
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
}

#[test]
fn hot_span_allocations_flag_seed_and_reachable_leaf() {
    let report = run(&[spec("crates/core/src/hot.rs", "core", HOT_ALLOC)], false);
    let diags = &report.diagnostics;
    assert_eq!(diags.len(), 2, "{diags:#?}");
    assert!(diags.iter().all(|d| d.rule == "hot-path-alloc"));
    // The seed: its pre-span Vec::new is setup, the in-span push is not.
    assert_eq!(diags[0].line, 10, "{:#?}", diags[0]);
    assert!(diags[0].message.contains("fuse"), "{}", diags[0].message);
    assert!(diags[0]
        .trace
        .iter()
        .any(|s| s.symbol.contains("SPAN_FUSION")));
    // The leaf, two hops down; `shape` between them allocates nothing
    // and is not reported.
    assert_eq!(diags[1].line, 22, "{:#?}", diags[1]);
    assert!(
        diags[1].message.contains("scratch_mean"),
        "{}",
        diags[1].message
    );
}

#[test]
fn pre_sized_buffers_outside_the_span_are_quiet() {
    let report = run(&[spec("crates/core/src/hot.rs", "core", HOT_CLEAN)], false);
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
}

#[test]
fn unmatched_suppression_is_stale_warning_then_strict_error() {
    let src = "\
//! A justified, well-formed allow that silences nothing.

/// Adds one.
pub fn add_one(x: u32) -> u32 {
    // uniq-analyzer: allow(wall-clock) — left over from a removed timing probe
    x + 1
}
";
    let specs = [spec("crates/core/src/tidy.rs", "core", src)];
    let report = run(&specs, false);
    assert_eq!(report.suppressions, 1);
    assert_eq!(report.stale_suppressions, 1);
    assert_eq!(report.diagnostics.len(), 1, "{:#?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.rule, "stale-suppression");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.line, 5);

    let strict = run(&specs, true);
    assert_eq!(strict.diagnostics[0].severity, Severity::Error);
}

#[test]
fn suppression_at_the_taint_source_clears_the_whole_path() {
    let helper_suppressed = TAINT_HELPER.replace(
        "    let t0 = std::time::Instant::now();",
        "    // uniq-analyzer: allow(determinism-taint) — budget probe; callers treat it as advisory\n    let t0 = std::time::Instant::now();",
    );
    let report = run(
        &[
            spec("crates/core/src/entry.rs", "core", TAINT_ENTRY),
            spec("crates/par/src/timing.rs", "par", &helper_suppressed),
        ],
        false,
    );
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    assert_eq!(report.suppressions, 1);
    assert_eq!(report.stale_suppressions, 0, "the allow is consumed");
}
