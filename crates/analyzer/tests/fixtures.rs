//! Golden-fixture tests: every rule has at least one known-bad fixture
//! that must produce exactly the expected findings, and a clean
//! counterpart that must produce none. The fixtures live outside `src/`
//! so the workspace walk (and rustc) never touch them.

use uniq_analyzer::{analyze_str, Severity};

fn check(
    fixture: &str,
    crate_name: &str,
    is_crate_root: bool,
    strict: bool,
) -> Vec<uniq_analyzer::Diagnostic> {
    analyze_str("fixture.rs", crate_name, is_crate_root, fixture, strict)
}

#[test]
fn hash_iteration_bad() {
    let diags = check(
        include_str!("../fixtures/bad_hash_iteration.rs"),
        "dsp",
        false,
        false,
    );
    assert_eq!(diags.len(), 6, "{diags:#?}");
    assert!(diags.iter().all(|d| d.rule == "hash-iteration"));
    assert!(diags.iter().all(|d| d.severity == Severity::Error));
    // The `#[cfg(test)]` module's HashMap uses are exempt.
    assert!(diags.iter().all(|d| d.line < 15), "{diags:#?}");
}

#[test]
fn hash_iteration_clean() {
    let diags = check(
        include_str!("../fixtures/clean_hash_iteration.rs"),
        "dsp",
        false,
        false,
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn hash_iteration_ignored_outside_result_crates() {
    let diags = check(
        include_str!("../fixtures/bad_hash_iteration.rs"),
        "cli",
        false,
        false,
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn wall_clock_bad() {
    let diags = check(
        include_str!("../fixtures/bad_wall_clock.rs"),
        "core",
        false,
        false,
    );
    assert_eq!(diags.len(), 4, "{diags:#?}");
    assert!(diags.iter().all(|d| d.rule == "wall-clock"));
    let lines: Vec<u32> = diags.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![2, 2, 5, 6]);
}

#[test]
fn env_read_bad() {
    let diags = check(
        include_str!("../fixtures/bad_env_read.rs"),
        "optim",
        false,
        false,
    );
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule, "env-read");
    assert_eq!(diags[0].line, 5);
}

#[test]
fn forbid_unsafe_bad() {
    let diags = check(
        include_str!("../fixtures/bad_forbid_unsafe.rs"),
        "geometry",
        true,
        false,
    );
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule, "forbid-unsafe");
    assert_eq!(diags[0].line, 1);
}

#[test]
fn forbid_unsafe_clean() {
    let diags = check(
        include_str!("../fixtures/clean_forbid_unsafe.rs"),
        "geometry",
        true,
        false,
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn forbid_unsafe_only_applies_to_crate_roots() {
    let diags = check(
        include_str!("../fixtures/bad_forbid_unsafe.rs"),
        "geometry",
        false,
        false,
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn forbid_unsafe_exempts_par() {
    let diags = check(
        include_str!("../fixtures/bad_forbid_unsafe.rs"),
        "par",
        true,
        false,
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn safety_comment_bad() {
    let diags = check(
        include_str!("../fixtures/bad_safety_comment.rs"),
        "par",
        false,
        false,
    );
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule, "safety-comment");
    assert_eq!(diags[0].line, 5);
}

#[test]
fn safety_comment_clean() {
    let diags = check(
        include_str!("../fixtures/clean_safety_comment.rs"),
        "par",
        false,
        false,
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn panic_safety_bad() {
    let diags = check(
        include_str!("../fixtures/bad_panic_safety.rs"),
        "acoustics",
        false,
        false,
    );
    assert_eq!(diags.len(), 4, "{diags:#?}");
    assert!(diags.iter().all(|d| d.rule == "panic-safety"));
    let lines: Vec<u32> = diags.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![5, 7, 13, 17]);
}

#[test]
fn panic_safety_clean() {
    let diags = check(
        include_str!("../fixtures/clean_panic_safety.rs"),
        "acoustics",
        false,
        false,
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn slice_index_requires_strict() {
    let fixture = include_str!("../fixtures/bad_slice_index.rs");
    let relaxed = check(fixture, "dsp", false, false);
    assert!(relaxed.is_empty(), "{relaxed:#?}");
    let strict = check(fixture, "dsp", false, true);
    assert_eq!(strict.len(), 1, "{strict:#?}");
    assert_eq!(strict[0].rule, "slice-index");
    assert_eq!(strict[0].severity, Severity::Warning);
    assert_eq!(strict[0].line, 4);
}

#[test]
fn span_guard_bad() {
    let diags = check(
        include_str!("../fixtures/bad_span_guard.rs"),
        "core",
        false,
        false,
    );
    assert_eq!(diags.len(), 2, "{diags:#?}");
    assert!(diags.iter().all(|d| d.rule == "obs-span-guard"));
    let lines: Vec<u32> = diags.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![4, 6]);
}

#[test]
fn span_guard_clean() {
    let diags = check(
        include_str!("../fixtures/clean_span_guard.rs"),
        "core",
        false,
        false,
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn metric_name_bad() {
    let diags = check(
        include_str!("../fixtures/bad_metric_name.rs"),
        "render",
        false,
        false,
    );
    assert_eq!(diags.len(), 2, "{diags:#?}");
    assert!(diags.iter().all(|d| d.rule == "obs-metric-name"));
}

#[test]
fn metric_name_clean() {
    let diags = check(
        include_str!("../fixtures/clean_metric_name.rs"),
        "render",
        false,
        false,
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn metric_name_exempts_obs_itself() {
    let diags = check(
        include_str!("../fixtures/bad_metric_name.rs"),
        "obs",
        false,
        false,
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn obs_context_bad() {
    let diags = check(
        include_str!("../fixtures/bad_obs_context.rs"),
        "cli",
        false,
        false,
    );
    assert_eq!(diags.len(), 4, "{diags:#?}");
    assert!(diags.iter().all(|d| d.rule == "obs-context"));
    assert!(diags.iter().all(|d| d.severity == Severity::Error));
    // The `#[cfg(test)]` module's uncontexted emission is exempt.
    assert!(diags.iter().all(|d| d.line < 28), "{diags:#?}");
}

#[test]
fn obs_context_clean() {
    let diags = check(
        include_str!("../fixtures/clean_obs_context.rs"),
        "cli",
        false,
        false,
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn bad_suppressions_are_themselves_findings() {
    let diags = check(
        include_str!("../fixtures/bad_suppression.rs"),
        "imu",
        false,
        false,
    );
    assert_eq!(diags.len(), 3, "{diags:#?}");
    // Line 4: allow(panic-safety) with no justification. It still
    // suppresses the unwrap on line 5, but is itself flagged.
    assert_eq!((diags[0].rule, diags[0].line), ("bad-suppression", 4));
    // Line 6: names a rule that does not exist …
    assert_eq!((diags[1].rule, diags[1].line), ("bad-suppression", 6));
    // … and therefore does not cover the unwrap on line 7.
    assert_eq!((diags[2].rule, diags[2].line), ("panic-safety", 7));
}

#[test]
fn json_output_shape() {
    let diags = check(
        include_str!("../fixtures/bad_env_read.rs"),
        "optim",
        false,
        false,
    );
    let json = uniq_analyzer::diagnostics::to_json(&diags);
    assert!(json.starts_with('['), "{json}");
    assert!(json.contains("\"rule\":\"env-read\""), "{json}");
    assert!(json.contains("\"line\":5"), "{json}");
    assert!(json.contains("\"severity\":\"error\""), "{json}");
}
