//! The analyzer's own acceptance gate, as a test: the workspace it ships
//! in must analyze clean. This is the same check `scripts/ci.sh` runs
//! via the binary; having it as a test means `cargo test` alone catches
//! a regression (a new unwrap, a missing forbid attribute, a drive-by
//! inline metric name) without needing the CI script.

use uniq_analyzer::{
    analyze_workspace, analyze_workspace_with, to_json_report, ReportSummary, Severity,
};

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = analyze_workspace(&root, false).expect("analysis runs");
    assert!(
        report.files_analyzed > 50,
        "walk found too few files — did the layout change?"
    );
    let errors: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert!(
        errors.is_empty(),
        "workspace must analyze clean; found:\n{}",
        errors
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn diagnostics_are_bit_identical_at_one_and_eight_threads() {
    // The analyzer holds itself to the determinism bar it enforces: the
    // whole report — findings, traces, counts — must not depend on the
    // pool width used to produce it.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let json_of = |threads: usize| {
        let report = analyze_workspace_with(&root, true, threads).expect("analysis runs");
        to_json_report(
            &report.diagnostics,
            &ReportSummary {
                files: report.files_analyzed,
                suppressions: report.suppressions,
                stale_suppressions: report.stale_suppressions,
                strict: true,
            },
        )
    };
    assert_eq!(json_of(1), json_of(8));
}

#[test]
fn scope_job_erasure_is_audited() {
    // Satellite of the analyzer PR: the raw-pointer job erasure in the
    // pool's scope must keep its SAFETY audit. The safety-comment rule
    // enforces the comment's presence; this pins the specific site so a
    // refactor cannot silently move the unsafe out from under its audit.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let scope =
        std::fs::read_to_string(root.join("crates/par/src/scope.rs")).expect("scope.rs exists");
    let safety_idx = scope.find("// SAFETY: the job is erased to 'static");
    let unsafe_idx = scope.find("let job: Job = unsafe {");
    match (safety_idx, unsafe_idx) {
        (Some(s), Some(u)) => assert!(s < u, "SAFETY comment must precede the transmute"),
        _ => panic!("scope.rs job-erasure SAFETY audit went missing"),
    }
}
