//! Per-file analysis context: lexed tokens, test-code regions, and
//! parsed suppression comments.
//!
//! Rules never see raw text; they see a [`SourceFile`] that already
//! knows which lines are test code (`#[cfg(test)]` modules, `#[test]`
//! functions — exempt from every rule) and which lines carry an inline
//! `// uniq-analyzer: allow(<rule>) — <why>` suppression.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::RangeInclusive;

/// A suppression parsed from a `uniq-analyzer: allow(...)` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule names listed inside `allow(...)`.
    pub rules: Vec<String>,
    /// Line the comment sits on. The suppression covers this line and
    /// the next, so it works both trailing and on its own line above.
    pub line: u32,
    /// Free-text justification after the closing paren, trimmed.
    pub justification: String,
}

/// One analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative display path (e.g. `crates/core/src/batch.rs`).
    pub path: String,
    /// Short crate name (`core`, `par`, `suite`, ...).
    pub crate_name: String,
    /// `true` for `src/lib.rs` / `src/main.rs` — the files that must
    /// carry `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
    /// All tokens, comments included, in source order.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens.
    pub sig: Vec<usize>,
    /// Line ranges occupied by test-only code.
    pub test_ranges: Vec<RangeInclusive<u32>>,
    /// Parsed suppressions.
    pub suppressions: Vec<Suppression>,
    /// rule name → lines covered by a suppression for it.
    suppressed_lines: BTreeMap<String, BTreeSet<u32>>,
}

impl SourceFile {
    /// Lexes and indexes `text`.
    pub fn parse(path: &str, crate_name: &str, is_crate_root: bool, text: &str) -> SourceFile {
        let tokens = lex(text);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let test_ranges = find_test_ranges(&tokens, &sig);
        let suppressions = find_suppressions(&tokens);
        let mut suppressed_lines: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
        for s in &suppressions {
            for rule in &s.rules {
                let lines = suppressed_lines.entry(rule.clone()).or_default();
                lines.insert(s.line);
                lines.insert(s.line + 1);
            }
        }
        SourceFile {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            is_crate_root,
            tokens,
            sig,
            test_ranges,
            suppressions,
            suppressed_lines,
        }
    }

    /// Is `line` inside test-only code?
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|r| r.contains(&line))
    }

    /// Is there a suppression for `rule` covering `line`?
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressed_lines
            .get(rule)
            .is_some_and(|lines| lines.contains(&line))
    }

    /// The significant token at significant-index `i`, if any.
    pub fn sig_token(&self, i: usize) -> Option<&Token> {
        self.sig.get(i).map(|&ti| &self.tokens[ti])
    }

    /// Does the significant stream starting at `i` match `pattern`
    /// (kind + exact text for `Some`, any text for `None`)?
    pub fn sig_matches(&self, i: usize, pattern: &[(TokenKind, Option<&str>)]) -> bool {
        pattern.iter().enumerate().all(|(k, (kind, text))| {
            self.sig_token(i + k)
                .is_some_and(|t| t.kind == *kind && text.map(|w| w == t.text).unwrap_or(true))
        })
    }
}

/// Finds line ranges covered by `#[cfg(test)]` / `#[test]` items by
/// scanning attributes and brace-matching the item body that follows.
fn find_test_ranges(tokens: &[Token], sig: &[usize]) -> Vec<RangeInclusive<u32>> {
    let tok = |i: usize| -> &Token { &tokens[sig[i]] };
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < sig.len() {
        // Attribute? `#` `[` ... `]` (outer only; `#![...]` is a crate attr).
        if tok(i).text == "#" && i + 1 < sig.len() && tok(i + 1).text == "[" {
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut attr_idents: Vec<&str> = Vec::new();
            while j < sig.len() && depth > 0 {
                match tok(j).text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {
                        if tok(j).kind == TokenKind::Ident {
                            attr_idents.push(tok(j).text.as_str());
                        }
                    }
                }
                j += 1;
            }
            // `#[cfg(not(test))]` gates *production* code — not a test attr.
            let is_test_attr = attr_idents.first() == Some(&"test")
                || (attr_idents.first() == Some(&"cfg")
                    && attr_idents.contains(&"test")
                    && !attr_idents.contains(&"not"));
            if is_test_attr {
                // Find the body of the annotated item: the first `{` before
                // a top-level `;` (an item without a body, e.g.
                // `#[cfg(test)] use …;`, covers only its own lines).
                let start_line = tok(i).line;
                let mut k = j;
                let mut found_body = false;
                while k < sig.len() {
                    match tok(k).text.as_str() {
                        "{" => {
                            found_body = true;
                            break;
                        }
                        ";" => break,
                        _ => k += 1,
                    }
                }
                if found_body {
                    let mut depth = 0usize;
                    let mut end = k;
                    while end < sig.len() {
                        match tok(end).text.as_str() {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        end += 1;
                    }
                    let end_line = if end < sig.len() {
                        tok(end).line
                    } else {
                        tokens.last().map(|t| t.line).unwrap_or(start_line)
                    };
                    ranges.push(start_line..=end_line);
                    i = end + 1;
                    continue;
                } else if k < sig.len() {
                    ranges.push(start_line..=tok(k).line);
                    i = k + 1;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Extracts suppression comments: `uniq-analyzer:` followed by
/// `allow(<rules>)` and a justification. Doc comments (`///`, `//!`,
/// `/**`, `/*!`) never suppress — they document code for readers, and
/// treating them as directives would let an example in prose silence a
/// real finding.
fn find_suppressions(tokens: &[Token]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in tokens {
        if !t.is_comment() {
            continue;
        }
        let is_doc = t.text.starts_with("///")
            || t.text.starts_with("//!")
            || t.text.starts_with("/**")
            || t.text.starts_with("/*!");
        if is_doc {
            continue;
        }
        let Some(at) = t.text.find("uniq-analyzer:") else {
            continue;
        };
        let rest = &t.text[at + "uniq-analyzer:".len()..];
        let rest = rest.trim_start();
        let Some(body) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = body.find(')') else {
            continue;
        };
        let rules: Vec<String> = body[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let justification = body[close + 1..]
            .trim_start_matches([' ', '\t'])
            .trim_start_matches(['—', '-', ':', '–'])
            .trim()
            .trim_end_matches("*/")
            .trim()
            .to_string();
        out.push(Suppression {
            rules,
            line: t.line,
            justification,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_lines_are_test_code() {
        let src = "fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = SourceFile::parse("x.rs", "core", false, src);
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(3));
        assert!(f.in_test_code(6));
        assert!(f.in_test_code(7));
        assert!(!f.in_test_code(8));
    }

    #[test]
    fn test_fn_outside_module_is_test_code() {
        let src = "fn lib() {}\n#[test]\nfn t() {\n    boom.unwrap();\n}\nfn more() {}\n";
        let f = SourceFile::parse("x.rs", "core", false, src);
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn cfg_test_on_bodyless_item_covers_only_itself() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn real() {}\n";
        let f = SourceFile::parse("x.rs", "core", false, src);
        assert!(f.in_test_code(2));
        assert!(!f.in_test_code(3));
    }

    #[test]
    fn suppression_trailing_and_above() {
        let src = "// uniq-analyzer: allow(wall-clock) — timing feeds metrics only\nlet t = Instant::now();\nlet u = x.unwrap(); // uniq-analyzer: allow(panic-safety) — len checked above\n";
        let f = SourceFile::parse("x.rs", "core", false, src);
        assert!(f.is_suppressed("wall-clock", 2));
        assert!(f.is_suppressed("panic-safety", 3));
        assert!(!f.is_suppressed("panic-safety", 2));
        assert_eq!(f.suppressions.len(), 2);
        assert!(!f.suppressions[0].justification.is_empty());
    }

    #[test]
    fn suppression_multiple_rules() {
        let src =
            "// uniq-analyzer: allow(wall-clock, env-read): startup config only\nlet x = 1;\n";
        let f = SourceFile::parse("x.rs", "core", false, src);
        assert!(f.is_suppressed("wall-clock", 2));
        assert!(f.is_suppressed("env-read", 2));
        assert_eq!(f.suppressions[0].justification, "startup config only");
    }

    #[test]
    fn empty_justification_detected() {
        let src = "let y = m.get(&k).unwrap(); // uniq-analyzer: allow(panic-safety)\n";
        let f = SourceFile::parse("x.rs", "core", false, src);
        assert!(f.suppressions[0].justification.is_empty());
    }
}
