//! Workspace discovery: which files get analyzed, and with what crate
//! identity.
//!
//! The walk is deliberately explicit rather than manifest-driven: the
//! analyzer lints `crates/*/src/**/*.rs` plus the umbrella crate's
//! `src/`, in sorted order so diagnostics are stable run to run (the
//! analyzer holds itself to the determinism bar it enforces).
//!
//! Not walked, by design:
//! - `vendor/` — offline stand-ins for third-party crates; not ours to
//!   lint.
//! - `crates/*/tests/`, `tests/`, `examples/`, benches — test code is
//!   exempt from every rule, so whole test trees are skipped at the
//!   walk level.
//! - `crates/analyzer/fixtures/` — known-bad snippets would obviously
//!   fail (they are outside any `src/`, so the walk never sees them).

use crate::diagnostics::Diagnostic;
use crate::rules::analyze_file;
use crate::source::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The result of analyzing a whole workspace.
#[derive(Debug)]
pub struct WorkspaceReport {
    /// All unsuppressed diagnostics, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files analyzed.
    pub files_analyzed: usize,
    /// Total suppressions encountered (for the audit summary).
    pub suppressions: usize,
}

/// Locates the workspace root at or above `start`: the nearest ancestor
/// containing both `Cargo.toml` and a `crates/` directory.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Analyzes every lintable file under `root`. `strict` enables the
/// warning-level audit rules.
pub fn analyze_workspace(root: &Path, strict: bool) -> io::Result<WorkspaceReport> {
    let mut diagnostics = Vec::new();
    let mut files_analyzed = 0usize;
    let mut suppressions = 0usize;

    let mut units: Vec<(String, PathBuf)> = Vec::new(); // (crate name, src dir)
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src = dir.join("src");
        if src.is_dir() {
            units.push((name, src));
        }
    }
    // The umbrella crate at the workspace root.
    let root_src = root.join("src");
    if root_src.is_dir() {
        units.push(("suite".to_string(), root_src));
    }

    for (crate_name, src_dir) in units {
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for path in files {
            let text = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let is_crate_root = path
                .file_name()
                .is_some_and(|n| n == "lib.rs" || n == "main.rs")
                && path.parent() == Some(src_dir.as_path());
            let file = SourceFile::parse(&rel, &crate_name, is_crate_root, &text);
            suppressions += file.suppressions.len();
            diagnostics.extend(analyze_file(&file, strict));
            files_analyzed += 1;
        }
    }

    diagnostics
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(WorkspaceReport {
        diagnostics,
        files_analyzed,
        suppressions,
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_root_walks_upward() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root above the analyzer crate");
        assert!(root.join("crates").join("analyzer").is_dir());
    }

    #[test]
    fn find_root_fails_cleanly_outside_a_workspace() {
        assert!(find_root(Path::new("/")).is_none());
    }
}
