//! Workspace discovery and the whole-workspace analysis driver.
//!
//! Discovery is manifest-driven: members come from the root
//! `Cargo.toml` `[workspace] members` list (so a new crate can never
//! silently escape analysis), each member's crate name from its own
//! manifest (`uniq-core` → short name `core`), and the umbrella
//! `[package]` at the root contributes its `src/` as well. `vendor/*`
//! members are skipped by design — offline stand-ins for third-party
//! crates are not ours to lint. Test trees (`tests/`, `benches/`,
//! `examples/`) and the analyzer's own `fixtures/` are outside the
//! `src/` directories the walk visits.
//!
//! The driver runs in deterministic parallel phases over `uniq-par`:
//! file parsing is a `par_map` over the sorted file list, the four
//! interprocedural rule families fan out as another `par_map`, and all
//! outputs are index-ordered and then globally sorted — diagnostics are
//! bit-identical at any thread count (the analyzer holds itself to the
//! determinism bar it enforces, and a test pins 1 vs 8 threads).

use crate::callgraph::{self, DepClosure};
use crate::diagnostics::{Diagnostic, Severity};
use crate::facts;
use crate::flow_rules::{self, FlowOutput, UsedSuppression};
use crate::rules;
use crate::source::SourceFile;
use crate::symbols;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Span-registry constants that seed the hot-path allocation rule when
/// `crates/obs/src/names.rs` does not declare `HOT_PATH_SPANS` (or when
/// analyzing virtual sources that do not include the registry).
pub const DEFAULT_HOT_PATH_SPANS: &[&str] = &["SPAN_FUSION", "SPAN_CHANNEL_ESTIMATE"];

/// The result of analyzing a whole workspace.
#[derive(Debug)]
pub struct WorkspaceReport {
    /// All unsuppressed diagnostics, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files analyzed.
    pub files_analyzed: usize,
    /// Total suppressions encountered (for the audit summary).
    pub suppressions: usize,
    /// Suppressions that silenced nothing (each also reported as a
    /// `stale-suppression` finding).
    pub stale_suppressions: usize,
}

/// One source file to analyze, by content rather than by path — the
/// unit the multi-file fixture tests feed in.
#[derive(Debug, Clone)]
pub struct SourceSpec {
    /// Workspace-relative display path.
    pub path: String,
    /// Crate short name (`core`, `obs`, ...).
    pub crate_name: String,
    /// Whether this is the crate root (`lib.rs`/`main.rs`).
    pub is_crate_root: bool,
    /// File contents.
    pub text: String,
}

/// Locates the workspace root at or above `start`: the nearest ancestor
/// containing both `Cargo.toml` and a `crates/` directory.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Reads the `[workspace] members` globs out of the root manifest and
/// expands them to `(crate short name, src dir)` units, plus the
/// umbrella `[package]` if the root manifest declares one. `vendor/*`
/// members are excluded.
pub fn discover_units(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut units: Vec<(String, PathBuf)> = Vec::new();
    for dir in expand_member_dirs(root, &manifest)? {
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let name = fs::read_to_string(dir.join("Cargo.toml"))
            .ok()
            .and_then(|m| manifest_package_name(&m))
            .unwrap_or_else(|| {
                dir.file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default()
            });
        units.push((short_crate_name(&name), src));
    }
    // The umbrella package at the workspace root.
    if let Some(name) = manifest_package_name(&manifest) {
        let root_src = root.join("src");
        if root_src.is_dir() {
            units.push((short_crate_name(&name), root_src));
        }
    }
    units.sort();
    Ok(units)
}

/// Expands the `[workspace] members` globs of the root manifest into
/// member directories, skipping `vendor/*`.
fn expand_member_dirs(root: &Path, manifest: &str) -> io::Result<Vec<PathBuf>> {
    let mut member_dirs: Vec<PathBuf> = Vec::new();
    for member in manifest_members(manifest) {
        if member.starts_with("vendor") {
            continue;
        }
        if let Some(prefix) = member.strip_suffix("/*") {
            let base = root.join(prefix);
            if !base.is_dir() {
                continue;
            }
            let mut dirs: Vec<PathBuf> = fs::read_dir(&base)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            dirs.sort();
            member_dirs.extend(dirs);
        } else {
            member_dirs.push(root.join(&member));
        }
    }
    Ok(member_dirs)
}

/// The transitive dependency closure of every first-party crate, keyed
/// and valued by short name, each crate's set including itself. Direct
/// dependencies are read straight from each member's manifest: any line
/// whose key starts with `uniq-` (dev-dependencies included — an extra
/// edge only widens reachability, which is the conservative direction).
pub fn workspace_dep_closure(root: &Path) -> io::Result<DepClosure> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut closure: DepClosure = BTreeMap::new();
    for dir in expand_member_dirs(root, &manifest)? {
        let Ok(m) = fs::read_to_string(dir.join("Cargo.toml")) else {
            continue;
        };
        let Some(pkg) = manifest_package_name(&m) else {
            continue;
        };
        closure.insert(short_crate_name(&pkg), manifest_uniq_deps(&m));
    }
    // The umbrella package: its manifest names every workspace crate
    // (via `[workspace.dependencies]`), which matches reality — the
    // root `src/` may call anything.
    if let Some(name) = manifest_package_name(&manifest) {
        closure.insert(short_crate_name(&name), manifest_uniq_deps(&manifest));
    }
    for (name, set) in closure.iter_mut() {
        set.insert(name.clone());
    }
    // Transitive fixpoint: union each crate's deps' deps until stable.
    loop {
        let mut changed = false;
        let names: Vec<String> = closure.keys().cloned().collect();
        for name in names {
            let direct = closure[&name].clone();
            let mut merged = direct.clone();
            for dep in &direct {
                if let Some(dd) = closure.get(dep) {
                    merged.extend(dd.iter().cloned());
                }
            }
            if merged.len() > closure[&name].len() {
                closure.insert(name, merged);
                changed = true;
            }
        }
        if !changed {
            return Ok(closure);
        }
    }
}

/// Dependency short names mentioned in a manifest: every line whose key
/// starts with `uniq-` (`uniq-par.workspace = true`, `uniq-obs = { … }`).
fn manifest_uniq_deps(manifest: &str) -> BTreeSet<String> {
    let mut deps = BTreeSet::new();
    for line in manifest.lines() {
        if let Some(rest) = line.trim().strip_prefix("uniq-") {
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
                .collect();
            if !name.is_empty() {
                deps.insert(name);
            }
        }
    }
    deps
}

/// `uniq-core` → `core`; anything else passes through.
fn short_crate_name(package: &str) -> String {
    package.strip_prefix("uniq-").unwrap_or(package).to_string()
}

/// The quoted entries of the `[workspace] members = [...]` array.
fn manifest_members(manifest: &str) -> Vec<String> {
    let Some(ws) = manifest.find("[workspace]") else {
        return Vec::new();
    };
    let after = &manifest[ws..];
    let Some(m) = after.find("members") else {
        return Vec::new();
    };
    let Some(open) = after[m..].find('[') else {
        return Vec::new();
    };
    let list_start = m + open + 1;
    let Some(close) = after[list_start..].find(']') else {
        return Vec::new();
    };
    let list = &after[list_start..list_start + close];
    list.split('"')
        .skip(1)
        .step_by(2)
        .map(str::to_string)
        .collect()
}

/// The `[package] name = "..."` of a manifest, if any.
fn manifest_package_name(manifest: &str) -> Option<String> {
    let pkg = manifest.find("[package]")?;
    for line in manifest[pkg..].lines().skip(1) {
        let trimmed = line.trim();
        if trimmed.starts_with('[') {
            return None; // next section, no name seen
        }
        if let Some(rest) = trimmed.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let rest = rest.trim();
                let mut parts = rest.split('"');
                parts.next();
                return parts.next().map(str::to_string);
            }
        }
    }
    None
}

/// Analyzes every lintable file under `root` with the default thread
/// count (`UNIQ_THREADS` / machine default).
pub fn analyze_workspace(root: &Path, strict: bool) -> io::Result<WorkspaceReport> {
    analyze_workspace_with(root, strict, 0)
}

/// [`analyze_workspace`] with an explicit pool size (`0` = default).
/// The report is bit-identical for any `threads` value.
pub fn analyze_workspace_with(
    root: &Path,
    strict: bool,
    threads: usize,
) -> io::Result<WorkspaceReport> {
    let mut specs: Vec<SourceSpec> = Vec::new();
    for (crate_name, src_dir) in discover_units(root)? {
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for path in files {
            let text = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let is_crate_root = path
                .file_name()
                .is_some_and(|n| n == "lib.rs" || n == "main.rs")
                && path.parent() == Some(src_dir.as_path());
            specs.push(SourceSpec {
                path: rel,
                crate_name: crate_name.clone(),
                is_crate_root,
                text,
            });
        }
    }
    specs.sort_by(|a, b| a.path.cmp(&b.path));
    let deps = workspace_dep_closure(root)?;
    Ok(analyze_sources_with_deps(
        &specs,
        strict,
        threads,
        Some(&deps),
    ))
}

/// [`analyze_sources_with_deps`] without a dependency map: every crate
/// pair resolves (the mode the in-memory fixture tests use — they carry
/// no manifests).
pub fn analyze_sources(specs: &[SourceSpec], strict: bool, threads: usize) -> WorkspaceReport {
    analyze_sources_with_deps(specs, strict, threads, None)
}

/// The whole-workspace analysis over in-memory sources: line-local
/// rules, the call-graph dataflow families, and the stale-suppression
/// audit. Deterministic for any `threads` value. `deps`, when given,
/// restricts call resolution to each caller crate's dependency closure.
pub fn analyze_sources_with_deps(
    specs: &[SourceSpec],
    strict: bool,
    threads: usize,
    deps: Option<&DepClosure>,
) -> WorkspaceReport {
    let pool = uniq_par::pool(threads);

    // Phase 1: parse (parallel, index-ordered).
    let files: Vec<SourceFile> = pool.par_map(specs, |s| {
        SourceFile::parse(&s.path, &s.crate_name, s.is_crate_root, &s.text)
    });

    // Phase 2: line-local rules (parallel per file). Strict-only rules
    // are always *generated* so their suppressions register as used;
    // emission is filtered afterwards.
    let per_file: Vec<(Vec<Diagnostic>, Vec<UsedSuppression>)> = {
        let files_ref = &files;
        pool.par_map(&(0..files.len()).collect::<Vec<_>>(), move |&i| {
            let file = &files_ref[i];
            let mut kept = Vec::new();
            let mut used = Vec::new();
            for d in rules::raw_findings(file, true) {
                if file.is_suppressed(d.rule, d.line) {
                    used.push((i, d.line, d.rule));
                } else if strict || d.rule != "slice-index" {
                    kept.push(d);
                }
            }
            rules::check_suppressions(file, &mut kept);
            (kept, used)
        })
    };

    // Phase 3: symbols → call graph → facts (cheap, serial).
    let mut fns = Vec::new();
    for (i, f) in files.iter().enumerate() {
        fns.extend(symbols::extract_fns(f, i));
    }
    let graph = callgraph::build(&files, fns, deps);
    let hot_spans = hot_span_consts(&files);
    let fn_facts = facts::extract(&files, &graph, &hot_spans);

    // Phase 4: the four dataflow families (parallel, index-ordered).
    let flow_outputs: Vec<FlowOutput> = {
        let files_ref = &files;
        let graph_ref = &graph;
        let facts_ref = &fn_facts;
        pool.par_map(&[0usize, 1, 2, 3], move |&family| match family {
            0 => flow_rules::determinism_taint(files_ref, graph_ref, facts_ref),
            1 => flow_rules::panic_reachability(files_ref, graph_ref, facts_ref, strict),
            2 => flow_rules::lock_order(files_ref, graph_ref, facts_ref),
            _ => flow_rules::hot_path_alloc(files_ref, graph_ref, facts_ref),
        })
    };

    // Phase 5: merge, then the stale-suppression audit.
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut used: Vec<UsedSuppression> = Vec::new();
    for (kept, u) in per_file {
        diagnostics.extend(kept);
        used.extend(u);
    }
    for out in flow_outputs {
        diagnostics.extend(out.diags);
        used.extend(out.used);
    }
    let used: BTreeSet<UsedSuppression> = used.into_iter().collect();

    let mut suppressions = 0usize;
    let mut stale = 0usize;
    for (i, file) in files.iter().enumerate() {
        suppressions += file.suppressions.len();
        for s in &file.suppressions {
            // Malformed suppressions are already `bad-suppression`
            // findings; the stale audit covers only well-formed ones.
            let well_formed = !s.justification.trim().is_empty()
                && s.rules
                    .iter()
                    .all(|r| rules::RULE_NAMES.contains(&r.as_str()));
            if !well_formed {
                continue;
            }
            let is_used = s.rules.iter().any(|r| {
                rules::RULE_NAMES
                    .iter()
                    .find(|known| *known == r)
                    .is_some_and(|&known| {
                        used.contains(&(i, s.line, known)) || used.contains(&(i, s.line + 1, known))
                    })
            });
            if !is_used {
                stale += 1;
                diagnostics.push(Diagnostic::new(
                    file.path.clone(),
                    s.line,
                    "stale-suppression",
                    if strict {
                        Severity::Error
                    } else {
                        Severity::Warning
                    },
                    format!(
                        "suppression `allow({})` matches no finding; remove it \
                         (stale allows erode the audit trail)",
                        s.rules.join(", ")
                    ),
                ));
            }
        }
    }

    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
    WorkspaceReport {
        diagnostics,
        files_analyzed: files.len(),
        suppressions,
        stale_suppressions: stale,
    }
}

/// Reads the hot-span constant names out of the obs span registry
/// (`HOT_PATH_SPANS` in `crates/obs/src/names.rs`); falls back to
/// [`DEFAULT_HOT_PATH_SPANS`] when the registry is not in the file set.
fn hot_span_consts(files: &[SourceFile]) -> Vec<String> {
    use crate::lexer::TokenKind;
    for file in files {
        if file.crate_name != "obs" || !file.path.ends_with("names.rs") {
            continue;
        }
        for i in 0..file.sig.len() {
            let Some(t) = file.sig_token(i) else { continue };
            if t.kind != TokenKind::Ident || t.text != "HOT_PATH_SPANS" {
                continue;
            }
            // Collect identifiers inside the *initializer* brackets —
            // the `[` of the `&[&str]` type annotation must not count,
            // so the list only opens after the `=`.
            let mut j = i + 1;
            let mut names = Vec::new();
            let mut seen_eq = false;
            let mut in_list = false;
            while let Some(tok) = file.sig_token(j) {
                match (tok.kind, tok.text.as_str()) {
                    (TokenKind::Punct, "=") => seen_eq = true,
                    (TokenKind::Punct, "[") if seen_eq => in_list = true,
                    (TokenKind::Punct, "]") if in_list => return names,
                    (TokenKind::Punct, ";") => break,
                    (TokenKind::Ident, name) if in_list => {
                        names.push(name.to_string());
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
    DEFAULT_HOT_PATH_SPANS
        .iter()
        .map(|s| s.to_string())
        .collect()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_root_walks_upward() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root above the analyzer crate");
        assert!(root.join("crates").join("analyzer").is_dir());
    }

    #[test]
    fn find_root_fails_cleanly_outside_a_workspace() {
        assert!(find_root(Path::new("/")).is_none());
    }

    #[test]
    fn members_parse_from_manifest() {
        let m = "[workspace]\nmembers = [\n    \"crates/*\",\n    \"vendor/*\",\n]\n";
        assert_eq!(manifest_members(m), vec!["crates/*", "vendor/*"]);
    }

    #[test]
    fn package_name_parses() {
        let m = "[package]\nname = \"uniq-suite\"\nversion = \"0.1.0\"\n";
        assert_eq!(manifest_package_name(m), Some("uniq-suite".to_string()));
        assert_eq!(short_crate_name("uniq-suite"), "suite");
        assert_eq!(short_crate_name("analyzer"), "analyzer");
    }

    #[test]
    fn discovery_is_manifest_driven() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).unwrap();
        let units = discover_units(&root).unwrap();
        let names: Vec<&str> = units.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"core"), "{names:?}");
        assert!(names.contains(&"store"), "{names:?}");
        assert!(names.contains(&"render"), "{names:?}");
        assert!(
            !names.iter().any(|n| n.starts_with("vendor")),
            "vendor members must be excluded: {names:?}"
        );
    }
}
