//! The four interprocedural rule families, built on the call graph
//! ([`crate::callgraph`]), per-function facts ([`crate::facts`]) and the
//! dataflow engine ([`crate::dataflow`]).
//!
//! Each family returns its diagnostics plus the list of suppressions it
//! consumed, so the workspace driver can run the stale-suppression
//! audit. All outputs are deterministic: inputs are iterated in sorted
//! order and path witnesses come from the deterministic BFS in
//! `dataflow`.

use crate::callgraph::CallGraph;
use crate::dataflow::{self, Hop};
use crate::diagnostics::{Diagnostic, Severity, TraceStep};
use crate::facts::{Fact, FnFacts, OBSERVABILITY_CRATES};
use crate::rules::RESULT_CRATES;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// A suppression consumed by a rule: (file index, line, rule name).
pub type UsedSuppression = (usize, u32, &'static str);

/// Output of one rule family.
#[derive(Debug, Default)]
pub struct FlowOutput {
    /// Findings (unsorted; the driver sorts globally).
    pub diags: Vec<Diagnostic>,
    /// Suppressions that matched and silenced a would-be finding.
    pub used: Vec<UsedSuppression>,
}

/// Marker id injected into the lock closure for "this function may hand
/// work to the pool" (never a real lock identity: lock ids are
/// `crate.receiver` and receivers cannot contain `§`).
const POOL_MARKER: &str = "\u{a7}pool";

fn sym(graph: &CallGraph, f: usize) -> &str {
    &graph.fns[f].symbol
}

fn path_of<'a>(files: &'a [SourceFile], graph: &CallGraph, f: usize) -> &'a str {
    &files[graph.fns[f].file].path
}

/// Is this fn a result-crate public entry point (a taint sink / panic
/// reachability root)?
fn is_result_entry(graph: &CallGraph, f: usize) -> bool {
    let d = &graph.fns[f];
    d.is_pub && RESULT_CRATES.contains(&d.crate_name.as_str())
}

/// Checks a suppression for `rule` (or any of `alt_rules`) at `line` in
/// `file`; returns the rule name that matched, if any.
fn matching_suppression(
    file: &SourceFile,
    line: u32,
    rule: &'static str,
    alt_rules: &[&'static str],
) -> Option<&'static str> {
    if file.is_suppressed(rule, line) {
        return Some(rule);
    }
    alt_rules
        .iter()
        .find(|r| file.is_suppressed(r, line))
        .copied()
}

/// Walks the hop chain from `start` toward the seed it was reached
/// from, emitting one call step per hop. For upward walks
/// ([`dataflow::reach_callers`]) the call site lies in the current
/// function; for downward walks ([`dataflow::reach_callees`]) it lies
/// in `hop.next`.
fn call_chain(
    files: &[SourceFile],
    graph: &CallGraph,
    reached: &BTreeMap<usize, Option<Hop>>,
    start: usize,
    upward: bool,
) -> (Vec<TraceStep>, usize) {
    let mut steps = Vec::new();
    let mut cur = start;
    while let Some(Some(hop)) = reached.get(&cur) {
        let (site_fn, called) = if upward {
            (cur, hop.next)
        } else {
            (hop.next, cur)
        };
        steps.push(TraceStep {
            file: path_of(files, graph, site_fn).to_string(),
            line: hop.line,
            symbol: format!("calls `{}`", sym(graph, called)),
        });
        cur = hop.next;
    }
    (steps, cur)
}

/// Rule family 1: determinism taint. Sources propagate up the call
/// graph; any tainted result-crate public fn is an error, reported at
/// the public fn with a source→sink trace.
pub fn determinism_taint(
    files: &[SourceFile],
    graph: &CallGraph,
    facts: &BTreeMap<usize, FnFacts>,
) -> FlowOutput {
    let mut out = FlowOutput::default();
    // Seed functions and their witness fact (smallest line wins).
    let mut seed_fact: BTreeMap<usize, &Fact> = BTreeMap::new();
    for (&f, ff) in facts {
        let def = &graph.fns[f];
        if OBSERVABILITY_CRATES.contains(&def.crate_name.as_str()) {
            continue;
        }
        let file = &files[def.file];
        for fact in &ff.taint {
            let alts: &[&'static str] = if fact.what.starts_with("wall-clock") {
                &["wall-clock"]
            } else if fact.what.starts_with("environment") {
                &["env-read"]
            } else if fact.what.starts_with("hash-order") {
                &["hash-iteration"]
            } else {
                &[]
            };
            if let Some(rule) = matching_suppression(file, fact.line, "determinism-taint", alts) {
                out.used.push((def.file, fact.line, rule));
                continue;
            }
            let slot = seed_fact.entry(f).or_insert(fact);
            if fact.line < slot.line {
                *slot = fact;
            }
        }
    }
    let seeds: BTreeSet<usize> = seed_fact.keys().copied().collect();
    if seeds.is_empty() {
        return out;
    }
    let reached = dataflow::reach_callers(graph, &seeds);
    for (&f, _) in reached.iter() {
        if !is_result_entry(graph, f) {
            continue;
        }
        let def = &graph.fns[f];
        let file = &files[def.file];
        if file.is_suppressed("determinism-taint", def.line) {
            out.used.push((def.file, def.line, "determinism-taint"));
            continue;
        }
        let (chain, seed) = call_chain(files, graph, &reached, f, true);
        let fact = seed_fact[&seed];
        let mut trace = vec![TraceStep {
            file: path_of(files, graph, f).to_string(),
            line: def.line,
            symbol: format!("`{}` (public result-crate fn)", def.symbol),
        }];
        trace.extend(chain);
        trace.push(TraceStep {
            file: path_of(files, graph, seed).to_string(),
            line: fact.line,
            symbol: fact.what.clone(),
        });
        out.diags.push(Diagnostic {
            file: path_of(files, graph, f).to_string(),
            line: def.line,
            rule: "determinism-taint",
            severity: Severity::Error,
            message: format!(
                "public fn `{}` can observe nondeterminism: {} at {}:{} ({} call hop(s) away)",
                def.symbol,
                fact.what,
                path_of(files, graph, seed),
                fact.line,
                trace.len() - 2
            ),
            trace,
        });
    }
    out
}

/// Rule family 2: panic reachability. Unsuppressed panic sites in
/// non-result crates that a result-crate public fn can reach are
/// errors, reported at the panic site with an entry→site trace.
/// (Result-crate sites are already covered line-locally by
/// `panic-safety`.)
pub fn panic_reachability(
    files: &[SourceFile],
    graph: &CallGraph,
    facts: &BTreeMap<usize, FnFacts>,
    strict: bool,
) -> FlowOutput {
    let mut out = FlowOutput::default();
    let entries: BTreeSet<usize> = (0..graph.fns.len())
        .filter(|&f| is_result_entry(graph, f))
        .collect();
    for (&f, ff) in facts {
        let def = &graph.fns[f];
        if RESULT_CRATES.contains(&def.crate_name.as_str()) || ff.panics.is_empty() {
            continue;
        }
        let file = &files[def.file];
        let mut live: Vec<&Fact> = Vec::new();
        for fact in &ff.panics {
            if let Some(rule) =
                matching_suppression(file, fact.line, "panic-reachability", &["panic-safety"])
            {
                out.used.push((def.file, fact.line, rule));
                continue;
            }
            if fact.strict_only && !strict {
                continue;
            }
            live.push(fact);
        }
        if live.is_empty() {
            continue;
        }
        // Which result entries reach this function?
        let reached = dataflow::reach_callers(graph, &BTreeSet::from([f]));
        let mut roots: Vec<usize> = reached
            .keys()
            .copied()
            .filter(|&r| entries.contains(&r))
            .collect();
        if roots.is_empty() {
            continue;
        }
        roots.sort_by_key(|&r| (path_of(files, graph, r).to_string(), graph.fns[r].line));
        let root = roots[0];
        let (chain, _) = call_chain(files, graph, &reached, root, true);
        for fact in live {
            let mut trace = vec![TraceStep {
                file: path_of(files, graph, root).to_string(),
                line: graph.fns[root].line,
                symbol: format!("`{}` (public result-crate fn)", sym(graph, root)),
            }];
            trace.extend(chain.iter().cloned());
            trace.push(TraceStep {
                file: path_of(files, graph, f).to_string(),
                line: fact.line,
                symbol: fact.what.clone(),
            });
            out.diags.push(Diagnostic {
                file: path_of(files, graph, f).to_string(),
                line: fact.line,
                rule: "panic-reachability",
                severity: if fact.strict_only {
                    Severity::Warning
                } else {
                    Severity::Error
                },
                message: format!(
                    "{} in `{}` is reachable from {} result-crate entry point(s), e.g. `{}`",
                    fact.what,
                    def.symbol,
                    roots.len(),
                    sym(graph, root)
                ),
                trace,
            });
        }
    }
    out
}

/// One directed lock-order edge with its best (smallest) witness.
#[derive(Debug)]
struct LockEdge {
    first_file: usize,
    first_line: u32,
    second_file: usize,
    second_line: u32,
}

/// Rule family 3: lock order. Builds the Mutex acquisition graph for
/// the lock-scope crates and fails on cycles (including re-entry of the
/// same lock) and on locks held across pool boundaries.
pub fn lock_order(
    files: &[SourceFile],
    graph: &CallGraph,
    facts: &BTreeMap<usize, FnFacts>,
) -> FlowOutput {
    let mut out = FlowOutput::default();
    // Local set: lock ids a function acquires directly, plus the pool
    // marker if it hands work to the pool.
    let mut local: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for (&f, ff) in facts {
        let mut set = BTreeSet::new();
        for l in &ff.locks {
            set.insert(l.id.clone());
        }
        if !ff.pool_calls.is_empty() {
            set.insert(POOL_MARKER.to_string());
        }
        if !set.is_empty() {
            local.insert(f, set);
        }
    }
    let may_acquire = dataflow::closure_over_callees(graph, &local);

    // acquired-before edges: id → id with the smallest witness site.
    let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
    let mut pool_findings: Vec<(usize, u32, String, u32)> = Vec::new(); // (file, line, lock id, acquired line)
    for (&f, ff) in facts {
        let def = &graph.fns[f];
        let file = &files[def.file];
        let line_at =
            |sig_idx: usize| -> u32 { file.sig_token(sig_idx).map(|t| t.line).unwrap_or(u32::MAX) };
        for l in &ff.locks {
            let end = l.held_until.unwrap_or(l.stmt_end);
            let end_line = line_at(end.min(file.sig.len().saturating_sub(1)));
            // Later direct acquisitions while this guard is live.
            for l2 in &ff.locks {
                if l2.sig_idx > l.sig_idx && l2.sig_idx < end {
                    insert_edge(
                        &mut edges,
                        &l.id,
                        &l2.id,
                        LockEdge {
                            first_file: def.file,
                            first_line: l.line,
                            second_file: def.file,
                            second_line: l2.line,
                        },
                    );
                }
            }
            // Direct pool boundary while held.
            for &(pl, pi) in &ff.pool_calls {
                if pi > l.sig_idx && pi < end {
                    pool_findings.push((def.file, pl, l.id.clone(), l.line));
                }
            }
            // Via calls in the live region: the callee's transitive set.
            for &ei in &graph.out_edges[f] {
                let edge = &graph.edges[ei];
                if edge.line < l.line || edge.line > end_line {
                    continue;
                }
                if let Some(set) = may_acquire.get(&edge.callee) {
                    for id in set {
                        if id == POOL_MARKER {
                            pool_findings.push((def.file, edge.line, l.id.clone(), l.line));
                        } else if *id != l.id {
                            insert_edge(
                                &mut edges,
                                &l.id,
                                id,
                                LockEdge {
                                    first_file: def.file,
                                    first_line: l.line,
                                    second_file: def.file,
                                    second_line: edge.line,
                                },
                            );
                        } else {
                            // Re-entry of the same lock through a callee:
                            // immediate self-deadlock with std Mutex.
                            insert_edge(
                                &mut edges,
                                &l.id,
                                &l.id,
                                LockEdge {
                                    first_file: def.file,
                                    first_line: l.line,
                                    second_file: def.file,
                                    second_line: edge.line,
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    // Cycle detection: an edge (a, b) participates in a cycle iff b
    // transitively reaches a (self-loops included).
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().insert(b.as_str());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = adj.get(n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    };
    for ((a, b), e) in &edges {
        let cyclic = if a == b { true } else { reaches(b, a) };
        if !cyclic {
            continue;
        }
        let file = &files[e.second_file];
        if file.is_suppressed("lock-order", e.second_line) {
            out.used.push((e.second_file, e.second_line, "lock-order"));
            continue;
        }
        let message = if a == b {
            format!("lock `{a}` may be re-acquired while already held (self-deadlock)")
        } else {
            format!(
                "lock-order cycle: `{a}` is held when `{b}` is acquired here, but elsewhere `{b}` is held when `{a}` is acquired"
            )
        };
        out.diags.push(Diagnostic {
            file: file.path.clone(),
            line: e.second_line,
            rule: "lock-order",
            severity: Severity::Error,
            message,
            trace: vec![
                TraceStep {
                    file: files[e.first_file].path.clone(),
                    line: e.first_line,
                    symbol: format!("acquires `{a}`"),
                },
                TraceStep {
                    file: files[e.second_file].path.clone(),
                    line: e.second_line,
                    symbol: format!("acquires `{b}` while `{a}` is held"),
                },
            ],
        });
    }
    pool_findings.sort();
    pool_findings.dedup();
    for (fi, line, id, acq_line) in pool_findings {
        let file = &files[fi];
        if file.is_suppressed("lock-order", line) {
            out.used.push((fi, line, "lock-order"));
            continue;
        }
        out.diags.push(Diagnostic {
            file: file.path.clone(),
            line,
            rule: "lock-order",
            severity: Severity::Error,
            message: format!(
                "lock `{id}` (acquired at line {acq_line}) is held across a pool boundary; \
                 worker panics would poison it and stall the pool"
            ),
            trace: vec![
                TraceStep {
                    file: file.path.clone(),
                    line: acq_line,
                    symbol: format!("acquires `{id}`"),
                },
                TraceStep {
                    file: file.path.clone(),
                    line,
                    symbol: "hands work to the pool while the guard is live".into(),
                },
            ],
        });
    }
    out
}

fn insert_edge(edges: &mut BTreeMap<(String, String), LockEdge>, a: &str, b: &str, e: LockEdge) {
    use std::collections::btree_map::Entry;
    match edges.entry((a.to_string(), b.to_string())) {
        Entry::Vacant(v) => {
            v.insert(e);
        }
        Entry::Occupied(mut o) => {
            let cur = o.get();
            if (e.second_file, e.second_line) < (cur.second_file, cur.second_line) {
                o.insert(e);
            }
        }
    }
}

/// Rule family 4: hot-path allocation. Functions transitively reachable
/// from a hot span site must not allocate per call. One diagnostic per
/// offending function, anchored at its first qualifying allocation
/// site; a suppression there covers the function.
pub fn hot_path_alloc(
    files: &[SourceFile],
    graph: &CallGraph,
    facts: &BTreeMap<usize, FnFacts>,
) -> FlowOutput {
    let mut out = FlowOutput::default();
    // Seed fns and the line/name of their first hot span.
    let mut seed_span: BTreeMap<usize, (u32, String)> = BTreeMap::new();
    for (&f, ff) in facts {
        for (line, name) in &ff.hot_spans {
            let slot = seed_span.entry(f).or_insert((*line, name.clone()));
            if *line < slot.0 {
                *slot = (*line, name.clone());
            }
        }
    }
    let seeds: BTreeSet<usize> = seed_span.keys().copied().collect();
    if seeds.is_empty() {
        return out;
    }
    let reached = dataflow::reach_callees(graph, &seeds);
    for (&f, _) in reached.iter() {
        let Some(ff) = facts.get(&f) else { continue };
        // The observability plane pays its allocation cost per *event*,
        // not per sample — exempt, same rationale as the taint audit.
        if OBSERVABILITY_CRATES.contains(&graph.fns[f].crate_name.as_str()) {
            continue;
        }
        let qualifying: Vec<&Fact> = match seed_span.get(&f) {
            // In the seed itself, allocation before the span starts is
            // setup; only per-iteration work inside the measured region
            // counts.
            Some((span_line, _)) => ff.allocs.iter().filter(|a| a.line > *span_line).collect(),
            None => ff.allocs.iter().collect(),
        };
        if qualifying.is_empty() {
            continue;
        }
        let def = &graph.fns[f];
        let file = &files[def.file];
        let first = qualifying
            .iter()
            .min_by_key(|a| (a.line, a.what.clone()))
            .unwrap();
        if file.is_suppressed("hot-path-alloc", first.line) {
            out.used.push((def.file, first.line, "hot-path-alloc"));
            continue;
        }
        let (chain, seed) = call_chain(files, graph, &reached, f, false);
        let (span_line, span_name) = &seed_span[&seed];
        let mut trace = vec![TraceStep {
            file: path_of(files, graph, seed).to_string(),
            line: *span_line,
            symbol: format!("hot span `{span_name}` in `{}`", sym(graph, seed)),
        }];
        trace.extend(chain.into_iter().rev());
        trace.push(TraceStep {
            file: file.path.clone(),
            line: first.line,
            symbol: format!("allocates: {}", first.what),
        });
        out.diags.push(Diagnostic {
            file: file.path.clone(),
            line: first.line,
            rule: "hot-path-alloc",
            severity: Severity::Error,
            message: format!(
                "`{}` is reachable from hot span `{span_name}` and allocates per call \
                 ({}; {} site(s) — use a caller-provided scratch buffer)",
                def.symbol,
                first.what,
                qualifying.len()
            ),
            trace,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::facts;
    use crate::symbols::extract_fns;

    fn setup(
        srcs: &[(&str, &str, &str)],
        hot: &[&str],
    ) -> (Vec<SourceFile>, CallGraph, BTreeMap<usize, FnFacts>) {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(p, c, s)| SourceFile::parse(p, c, false, s))
            .collect();
        let mut fns = Vec::new();
        for (i, f) in files.iter().enumerate() {
            fns.extend(extract_fns(f, i));
        }
        let graph = callgraph::build(&files, fns, None);
        let hot: Vec<String> = hot.iter().map(|s| s.to_string()).collect();
        let f = facts::extract(&files, &graph, &hot);
        (files, graph, f)
    }

    #[test]
    fn taint_flows_across_crates_into_public_result_fn() {
        let (files, graph, f) = setup(
            &[
                (
                    "crates/core/src/session.rs",
                    "core",
                    "pub fn personalize(x: f64) -> f64 { helper(x) }",
                ),
                (
                    "crates/cli/src/util.rs",
                    "cli",
                    "pub fn helper(x: f64) -> f64 { let _t = Instant::now(); x }",
                ),
            ],
            &[],
        );
        let out = determinism_taint(&files, &graph, &f);
        assert_eq!(out.diags.len(), 1, "{:#?}", out.diags);
        let d = &out.diags[0];
        assert_eq!(d.rule, "determinism-taint");
        assert_eq!(d.file, "crates/core/src/session.rs");
        assert_eq!(d.trace.len(), 3);
        assert!(d.trace[2].symbol.contains("Instant::now"));
    }

    #[test]
    fn taint_from_bench_only_helper_is_silent() {
        let (files, graph, f) = setup(
            &[(
                "crates/bench/src/main.rs",
                "bench",
                "fn bench_only() { let _t = Instant::now(); }\npub fn run() { bench_only(); }",
            )],
            &[],
        );
        let out = determinism_taint(&files, &graph, &f);
        assert!(out.diags.is_empty(), "{:#?}", out.diags);
    }

    #[test]
    fn suppressed_source_kills_downstream_findings() {
        let (files, graph, f) = setup(
            &[
                (
                    "crates/core/src/session.rs",
                    "core",
                    "pub fn personalize(x: f64) -> f64 { helper(x) }",
                ),
                (
                    "crates/par/src/util.rs",
                    "par",
                    "// uniq-analyzer: allow(determinism-taint) — audited\npub fn helper(x: f64) -> f64 { let _t = Instant::now(); x }",
                ),
            ],
            &[],
        );
        let out = determinism_taint(&files, &graph, &f);
        assert!(out.diags.is_empty(), "{:#?}", out.diags);
        assert_eq!(out.used, vec![(1, 2, "determinism-taint")]);
    }

    #[test]
    fn panic_reachability_traces_to_entry() {
        let (files, graph, f) = setup(
            &[
                (
                    "crates/dsp/src/fft.rs",
                    "dsp",
                    "pub fn forward(x: &[f64]) -> f64 { support(x) }",
                ),
                (
                    "crates/par/src/util.rs",
                    "par",
                    "pub fn support(x: &[f64]) -> f64 { x.first().unwrap() + 1.0 }",
                ),
            ],
            &[],
        );
        let out = panic_reachability(&files, &graph, &f, false);
        assert_eq!(out.diags.len(), 1, "{:#?}", out.diags);
        let d = &out.diags[0];
        assert_eq!(d.file, "crates/par/src/util.rs");
        assert!(d.message.contains("dsp::fft::forward"));
        assert_eq!(d.trace.first().unwrap().file, "crates/dsp/src/fft.rs");
    }

    #[test]
    fn unreachable_panic_is_silent() {
        let (files, graph, f) = setup(
            &[(
                "crates/cli/src/main.rs",
                "cli",
                "pub fn standalone(x: Option<u8>) -> u8 { x.unwrap() }",
            )],
            &[],
        );
        let out = panic_reachability(&files, &graph, &f, false);
        assert!(out.diags.is_empty(), "{:#?}", out.diags);
    }

    #[test]
    fn lock_cycle_detected_across_fns() {
        let (files, graph, f) = setup(
            &[(
                "crates/store/src/a.rs",
                "store",
                "impl S {\n    fn ab(&self) {\n        let g = self.alpha.lock().unwrap();\n        let h = self.beta.lock().unwrap();\n    }\n    fn ba(&self) {\n        let g = self.beta.lock().unwrap();\n        let h = self.alpha.lock().unwrap();\n    }\n}\n",
            )],
            &[],
        );
        let out = lock_order(&files, &graph, &f);
        assert_eq!(out.diags.len(), 2, "{:#?}", out.diags);
        assert!(out.diags.iter().all(|d| d.rule == "lock-order"));
        assert!(out.diags[0].message.contains("cycle"));
    }

    #[test]
    fn lock_held_across_pool_boundary() {
        let (files, graph, f) = setup(
            &[(
                "crates/telemetry/src/m.rs",
                "telemetry",
                "impl M {\n    fn flush(&self, xs: &[u8]) {\n        let g = self.shard.lock().unwrap();\n        let p = pool(0);\n        p.par_map(xs, |x| *x);\n    }\n}\n",
            )],
            &[],
        );
        let out = lock_order(&files, &graph, &f);
        assert_eq!(out.diags.len(), 1, "{:#?}", out.diags);
        assert!(out.diags[0].message.contains("pool boundary"));
        assert_eq!(out.diags[0].line, 5);
    }

    #[test]
    fn ordered_acquisition_without_cycle_is_clean() {
        let (files, graph, f) = setup(
            &[(
                "crates/store/src/a.rs",
                "store",
                "impl S {\n    fn ab(&self) {\n        let g = self.alpha.lock().unwrap();\n        let h = self.beta.lock().unwrap();\n    }\n    fn also_ab(&self) {\n        let g = self.alpha.lock().unwrap();\n        let h = self.beta.lock().unwrap();\n    }\n}\n",
            )],
            &[],
        );
        let out = lock_order(&files, &graph, &f);
        assert!(out.diags.is_empty(), "{:#?}", out.diags);
    }

    #[test]
    fn hot_path_alloc_flags_callee_not_setup() {
        let (files, graph, f) = setup(
            &[
                (
                    "crates/core/src/fusion.rs",
                    "core",
                    "pub fn fuse(xs: &[f64]) -> f64 {\n    let mut scratch = Vec::new();\n    let _span = span(SPAN_FUSION);\n    inner_sum(xs)\n}\n",
                ),
                (
                    "crates/dsp/src/window.rs",
                    "dsp",
                    "pub fn inner_sum(xs: &[f64]) -> f64 {\n    let copied = xs.to_vec();\n    copied.iter().sum()\n}\n",
                ),
            ],
            &["SPAN_FUSION"],
        );
        let out = hot_path_alloc(&files, &graph, &f);
        assert_eq!(out.diags.len(), 1, "{:#?}", out.diags);
        let d = &out.diags[0];
        assert_eq!(d.file, "crates/dsp/src/window.rs");
        assert!(d.message.contains("dsp::window::inner_sum"));
        assert_eq!(
            d.trace[0].symbol,
            "hot span `SPAN_FUSION` in `core::fusion::fuse`"
        );
    }

    #[test]
    fn alloc_after_span_in_seed_is_flagged() {
        let (files, graph, f) = setup(
            &[(
                "crates/core/src/fusion.rs",
                "core",
                "pub fn fuse(xs: &[f64]) -> f64 {\n    let _span = span(SPAN_FUSION);\n    let mut v = Vec::new();\n    v.push(1.0);\n    0.0\n}\n",
            )],
            &["SPAN_FUSION"],
        );
        let out = hot_path_alloc(&files, &graph, &f);
        assert_eq!(out.diags.len(), 1, "{:#?}", out.diags);
        assert_eq!(out.diags[0].line, 3);
        assert!(out.diags[0].message.contains("2 site(s)"));
    }
}
