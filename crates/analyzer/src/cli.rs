//! The command-line driver, shared between the standalone
//! `uniq-analyzer` binary and the `uniq analyze` verb. Both present the
//! same options and the same 0/1/2 exit contract (0 clean, 1 findings,
//! 2 usage or I/O error), so CI can gate on either entry point.

use std::path::PathBuf;

use crate::diagnostics::{to_json_report, ReportSummary, Severity};
use crate::workspace::{analyze_workspace_with, find_root};

/// The option block shared by both entry points, for embedding in each
/// binary's usage text.
pub const OPTIONS_HELP: &str = "\
\x20   --format <text|json>   output format (default: text)\n\
\x20   --strict               also run audit-level warning rules\n\
\x20   --root <path>          workspace root (default: auto-detect\n\
\x20                          from the current directory)\n\
\x20   --threads <n>          analysis pool size (0 = default);\n\
\x20                          diagnostics are identical for any n\n\
\x20   --out <file>           also write the JSON findings report\n\
\x20                          (schema 1: summary + findings) there\n\
\x20   --budget-seconds <s>   warn on stderr if the run exceeds the\n\
\x20                          wall-time budget (default: 10)";

struct Options {
    json: bool,
    strict: bool,
    root: Option<PathBuf>,
    threads: usize,
    out: Option<PathBuf>,
    budget_seconds: f64,
}

fn parse_opts(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        strict: false,
        root: None,
        threads: 0,
        out: None,
        budget_seconds: 10.0,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--strict" => opts.strict = true,
            "--root" => match it.next() {
                Some(p) => opts.root = Some(PathBuf::from(p)),
                None => return Err("--root expects a path".to_string()),
            },
            "--threads" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) => opts.threads = n,
                None => return Err("--threads expects a number".to_string()),
            },
            "--out" => match it.next() {
                Some(p) => opts.out = Some(PathBuf::from(p)),
                None => return Err("--out expects a path".to_string()),
            },
            "--budget-seconds" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(s) if s > 0.0 => opts.budget_seconds = s,
                _ => return Err("--budget-seconds expects a positive number".to_string()),
            },
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

/// Runs a whole-workspace check from option arguments (everything after
/// the `check`/`analyze` verb). Prints to stdout/stderr and returns the
/// process exit code: 0 clean, 1 findings, 2 usage or I/O error. Parse
/// errors print `usage` after the message.
pub fn run_check(args: &[String], usage: &str) -> i32 {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{usage}");
            return 2;
        }
    };

    let root = match opts
        .root
        .or_else(|| std::env::current_dir().ok().and_then(|cwd| find_root(&cwd)))
    {
        Some(r) => r,
        None => {
            eprintln!("error: could not locate the workspace root (pass --root)");
            return 2;
        }
    };

    // Self-timed via the obs stopwatch: the analyzer is a CI gate with a
    // wall-time budget, and it confines its clock reads to obs like
    // everyone else.
    let watch = uniq_obs::Stopwatch::start();
    let report = match analyze_workspace_with(&root, opts.strict, opts.threads) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: analysis failed: {e}");
            return 2;
        }
    };
    let elapsed = watch.elapsed_seconds();

    let errors = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = report.diagnostics.len() - errors;
    let summary = ReportSummary {
        files: report.files_analyzed,
        suppressions: report.suppressions,
        stale_suppressions: report.stale_suppressions,
        strict: opts.strict,
    };

    if let Some(out_path) = &opts.out {
        if let Some(parent) = out_path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(out_path, to_json_report(&report.diagnostics, &summary)) {
            eprintln!("error: cannot write {}: {e}", out_path.display());
            return 2;
        }
    }

    if opts.json {
        println!("{}", to_json_report(&report.diagnostics, &summary));
    } else {
        for d in &report.diagnostics {
            println!("{d}");
            for step in &d.trace {
                println!("    trace: {step}");
            }
        }
        println!(
            "uniq-analyzer: {} files, {} suppressions ({} stale), {} errors, {} warnings [{:.2}s]",
            report.files_analyzed,
            report.suppressions,
            report.stale_suppressions,
            errors,
            warnings,
            elapsed
        );
    }

    if elapsed > opts.budget_seconds {
        eprintln!(
            "uniq-analyzer: warning: run took {elapsed:.2}s, over the {:.0}s budget",
            opts.budget_seconds
        );
    }

    if errors > 0 {
        1
    } else {
        0
    }
}
