//! Symbol table: every function definition in the workspace, with
//! enough identity for conservative name/arity call resolution.
//!
//! The extractor walks a file's significant-token stream tracking brace
//! depth, inline `mod` nesting, and `impl`/`trait` blocks, and records
//! each `fn` it meets: name, visibility, parameter count, receiver
//! (`self`) presence, the body's token range, and the module path the
//! file's location implies (`crates/core/src/fusion.rs` → `core::fusion`,
//! `mod inner {}` appends). Bodies of functions in test regions are
//! skipped entirely — test code is exempt from every rule, so it must
//! neither seed nor carry dataflow.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// How a function is defined, which constrains how calls resolve to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FnKind {
    /// A free function at module scope.
    Free,
    /// A function inside an `impl` or `trait` block, tagged with the
    /// (last path segment of the) self type or trait name.
    Method {
        /// Type or trait the function is attached to.
        owner: String,
        /// Whether the first parameter is a `self` receiver.
        has_self: bool,
    },
}

/// One function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Index of the defining file in the analysis file list.
    pub file: usize,
    /// Bare function name.
    pub name: String,
    /// Crate short name (`core`, `obs`, ...).
    pub crate_name: String,
    /// Fully qualified display symbol, e.g. `core::fusion::fuse`.
    pub symbol: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Number of declared parameters, `self` included.
    pub params: usize,
    /// `pub` without a restriction like `pub(crate)`.
    pub is_pub: bool,
    /// Free function or method, see [`FnKind`].
    pub kind: FnKind,
    /// Significant-token index range of the body (exclusive end).
    /// Empty for bodyless trait-method declarations.
    pub body: std::ops::Range<usize>,
}

/// The module path a file's location implies: `src/lib.rs` and
/// `src/main.rs` are the crate root (empty path); any other file under
/// `src/` contributes its relative path segments (`mod.rs` folds into
/// its directory).
pub fn file_module_path(rel_path: &str) -> Vec<String> {
    let Some(idx) = rel_path.find("src/") else {
        return Vec::new();
    };
    let under_src = &rel_path[idx + 4..];
    let mut parts: Vec<String> = under_src.split('/').map(str::to_string).collect();
    let Some(last) = parts.pop() else {
        return Vec::new();
    };
    let stem = last.trim_end_matches(".rs");
    if stem != "lib" && stem != "main" && stem != "mod" {
        parts.push(stem.to_string());
    }
    parts
}

/// Extracts every function defined in `file`. `file_index` is stamped
/// into each [`FnDef`] so call resolution can find the defining file.
pub fn extract_fns(file: &SourceFile, file_index: usize) -> Vec<FnDef> {
    let base_path = file_module_path(&file.path);
    let mut out = Vec::new();
    // Scope stack entries: (brace depth at open, kind).
    enum Ctx {
        Mod(String),
        Impl(String),
    }
    let mut ctx: Vec<(usize, Ctx)> = Vec::new();
    let mut depth = 0usize;
    let n = file.sig.len();
    let mut i = 0usize;
    while i < n {
        let Some(t) = file.sig_token(i) else { break };
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "{") => {
                depth += 1;
                i += 1;
            }
            (TokenKind::Punct, "}") => {
                depth = depth.saturating_sub(1);
                while ctx.last().is_some_and(|(d, _)| *d > depth) {
                    ctx.pop();
                }
                i += 1;
            }
            (TokenKind::Ident, "mod") => {
                // `mod name {` opens an inline module; `mod name;` is an
                // out-of-line declaration handled by file paths.
                let name = file
                    .sig_token(i + 1)
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text.clone());
                if let (Some(name), Some(open)) = (name, file.sig_token(i + 2)) {
                    if open.kind == TokenKind::Punct && open.text == "{" {
                        ctx.push((depth + 1, Ctx::Mod(name)));
                    }
                }
                i += 1;
            }
            (TokenKind::Ident, "impl" | "trait") => {
                // Find the owner name: for `impl Trait for Type {` the
                // last path segment before `{`; for `impl Type {` and
                // `trait Name {` likewise. Generic arguments are skipped
                // by taking the last plain identifier at angle depth 0.
                let mut owner = String::new();
                let mut angle = 0i32;
                let mut j = i + 1;
                while let Some(tok) = file.sig_token(j) {
                    match (tok.kind, tok.text.as_str()) {
                        (TokenKind::Punct, "{") if angle <= 0 => break,
                        (TokenKind::Punct, ";") => break,
                        (TokenKind::Punct, "<") => angle += 1,
                        (TokenKind::Punct, ">") => angle -= 1,
                        (TokenKind::Ident, "where") if angle <= 0 => break,
                        (TokenKind::Ident, name)
                            if angle <= 0 && name != "for" && name != "dyn" =>
                        {
                            owner = name.to_string();
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if file
                    .sig_token(j)
                    .is_some_and(|t| t.kind == TokenKind::Punct && t.text == "{")
                {
                    ctx.push((depth + 1, Ctx::Impl(owner)));
                }
                i = j;
            }
            (TokenKind::Ident, "fn") => {
                let Some(name_tok) = file.sig_token(i + 1) else {
                    i += 1;
                    continue;
                };
                if name_tok.kind != TokenKind::Ident {
                    i += 1;
                    continue;
                }
                let fn_line = t.line;
                let name = name_tok.text.clone();
                let is_pub = is_pub_before(file, i);
                // Parameter list: skip generics, then bracket-match the
                // paren group counting top-level commas.
                let mut j = i + 2;
                let mut angle = 0i32;
                while let Some(tok) = file.sig_token(j) {
                    match (tok.kind, tok.text.as_str()) {
                        (TokenKind::Punct, "<") => angle += 1,
                        (TokenKind::Punct, ">") => angle -= 1,
                        (TokenKind::Punct, "(") if angle <= 0 => break,
                        (TokenKind::Punct, "{" | ";") => break,
                        _ => {}
                    }
                    j += 1;
                }
                let mut params = 0usize;
                let mut has_self = false;
                if file
                    .sig_token(j)
                    .is_some_and(|t| t.kind == TokenKind::Punct && t.text == "(")
                {
                    let mut pd = 1usize;
                    let mut k = j + 1;
                    let mut any = false;
                    let mut first = true;
                    while pd > 0 {
                        let Some(tok) = file.sig_token(k) else { break };
                        match (tok.kind, tok.text.as_str()) {
                            (TokenKind::Punct, "(" | "[") => pd += 1,
                            (TokenKind::Punct, ")" | "]") => pd -= 1,
                            (TokenKind::Punct, ",") if pd == 1 => {
                                // A trailing comma right before `)` (the
                                // rustfmt vertical-list style) separates
                                // nothing.
                                let trailing = file
                                    .sig_token(k + 1)
                                    .is_some_and(|n| n.kind == TokenKind::Punct && n.text == ")");
                                if !trailing {
                                    params += 1;
                                }
                                first = false;
                            }
                            (TokenKind::Ident, "self") if pd == 1 && first => has_self = true,
                            _ => any = true,
                        }
                        k += 1;
                    }
                    if any || params > 0 || has_self {
                        params += 1;
                    }
                    j = k;
                }
                // Body: next `{` before a `;` at this nesting level.
                let mut body = 0..0;
                let mut k = j;
                let mut angle2 = 0i32;
                while let Some(tok) = file.sig_token(k) {
                    match (tok.kind, tok.text.as_str()) {
                        (TokenKind::Punct, "<") => angle2 += 1,
                        (TokenKind::Punct, ">") => angle2 -= 1,
                        (TokenKind::Punct, ";") if angle2 <= 0 => break,
                        (TokenKind::Punct, "{") => {
                            let mut bd = 1usize;
                            let mut e = k + 1;
                            while bd > 0 {
                                let Some(b) = file.sig_token(e) else { break };
                                if b.kind == TokenKind::Punct {
                                    match b.text.as_str() {
                                        "{" => bd += 1,
                                        "}" => bd -= 1,
                                        _ => {}
                                    }
                                }
                                e += 1;
                            }
                            body = (k + 1)..(e.saturating_sub(1));
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                if !file.in_test_code(fn_line) {
                    let kind = match ctx.iter().rev().find_map(|(_, c)| match c {
                        Ctx::Impl(owner) => Some(owner.clone()),
                        Ctx::Mod(_) => None,
                    }) {
                        Some(owner) => FnKind::Method { owner, has_self },
                        None => FnKind::Free,
                    };
                    let mut path: Vec<String> = vec![file.crate_name.clone()];
                    path.extend(base_path.iter().cloned());
                    for (_, c) in &ctx {
                        if let Ctx::Mod(m) = c {
                            path.push(m.clone());
                        }
                    }
                    if let FnKind::Method { owner, .. } = &kind {
                        if !owner.is_empty() {
                            path.push(owner.clone());
                        }
                    }
                    path.push(name.clone());
                    out.push(FnDef {
                        file: file_index,
                        name,
                        crate_name: file.crate_name.clone(),
                        symbol: path.join("::"),
                        line: fn_line,
                        params,
                        is_pub,
                        kind,
                        body: body.clone(),
                    });
                }
                // Continue scanning *inside* the body too: nested fns and
                // closures contain calls attributed by innermost-range
                // lookup later. Jumping to just past the body's `{` skips
                // that brace token, so account for it in `depth` by hand
                // (the body's closing `}` will rebalance it).
                if body.is_empty() {
                    i = k + 1;
                } else {
                    i = body.start;
                    depth += 1;
                }
            }
            _ => {
                i += 1;
            }
        }
    }
    out
}

/// Does an unrestricted `pub` precede the `fn` at significant index
/// `fn_idx` (allowing the qualifiers `const`/`unsafe`/`async`/`extern`
/// and an ABI string in between)? `pub(crate)`/`pub(super)` are treated
/// as non-public: they are not library entry points.
fn is_pub_before(file: &SourceFile, fn_idx: usize) -> bool {
    let mut i = fn_idx;
    let mut hops = 0;
    while i > 0 && hops < 6 {
        i -= 1;
        hops += 1;
        let Some(t) = file.sig_token(i) else {
            return false;
        };
        match (t.kind, t.text.as_str()) {
            (TokenKind::Ident, "const" | "unsafe" | "async" | "extern") => continue,
            (TokenKind::Str, _) => continue, // extern "C"
            (TokenKind::Ident, "pub") => {
                // `pub(...)` restricts visibility below public.
                return !file
                    .sig_token(i + 1)
                    .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "(");
            }
            _ => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/core/src/fusion.rs", "core", false, src)
    }

    #[test]
    fn free_fn_extraction() {
        let f = parse("pub fn fuse(a: f64, b: &[f64]) -> f64 { a }\nfn helper() {}\n");
        let fns = extract_fns(&f, 0);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "fuse");
        assert_eq!(fns[0].params, 2);
        assert!(fns[0].is_pub);
        assert_eq!(fns[0].symbol, "core::fusion::fuse");
        assert!(!fns[1].is_pub);
        assert_eq!(fns[1].params, 0);
    }

    #[test]
    fn methods_record_owner_and_self() {
        let f = parse("impl Grid {\n    pub fn len(&self) -> usize { 0 }\n    fn new(n: usize) -> Grid { Grid }\n}\n");
        let fns = extract_fns(&f, 0);
        assert_eq!(fns.len(), 2);
        assert_eq!(
            fns[0].kind,
            FnKind::Method {
                owner: "Grid".into(),
                has_self: true
            }
        );
        assert_eq!(fns[0].params, 1);
        assert_eq!(
            fns[1].kind,
            FnKind::Method {
                owner: "Grid".into(),
                has_self: false
            }
        );
        assert_eq!(fns[1].symbol, "core::fusion::Grid::new");
    }

    #[test]
    fn trait_impl_owner_is_the_type() {
        let f = parse("impl Sink for StderrSink {\n    fn handle(&self, e: &Event) {}\n}\n");
        let fns = extract_fns(&f, 0);
        assert_eq!(
            fns[0].kind,
            FnKind::Method {
                owner: "StderrSink".into(),
                has_self: true
            }
        );
        assert_eq!(fns[0].params, 2);
    }

    #[test]
    fn inline_mod_extends_the_path() {
        let f = parse("mod inner {\n    pub fn helper() {}\n}\n");
        let fns = extract_fns(&f, 0);
        assert_eq!(fns[0].symbol, "core::fusion::inner::helper");
    }

    #[test]
    fn test_region_fns_are_skipped() {
        let f = parse("fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n");
        let fns = extract_fns(&f, 0);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
    }

    #[test]
    fn pub_crate_is_not_public() {
        let f = parse("pub(crate) fn internal() {}\npub const fn speedy() {}\n");
        let fns = extract_fns(&f, 0);
        assert!(!fns[0].is_pub);
        assert!(fns[1].is_pub);
    }

    #[test]
    fn trailing_comma_params_count_once() {
        let f = parse("pub fn fuse_weighted(\n    inputs: &[f64],\n    weights: Option<&[f64]>,\n    cfg: &str,\n) -> f64 {\n    0.0\n}\n");
        let fns = extract_fns(&f, 0);
        assert_eq!(fns[0].params, 3);
    }

    #[test]
    fn module_paths_from_files() {
        assert!(file_module_path("crates/core/src/lib.rs").is_empty());
        assert_eq!(
            file_module_path("crates/core/src/fusion.rs"),
            vec!["fusion".to_string()]
        );
        assert_eq!(
            file_module_path("crates/dsp/src/fft/plan.rs"),
            vec!["fft".to_string(), "plan".to_string()]
        );
        assert_eq!(
            file_module_path("crates/dsp/src/fft/mod.rs"),
            vec!["fft".to_string()]
        );
    }
}
