//! Fixed-point dataflow over the call graph.
//!
//! Everything here is deterministic by construction: worklists are
//! `BTreeSet`s (processed in ascending function order), edges are
//! pre-sorted by the call-graph builder, and ties between equal-length
//! paths break toward the smaller `(function, line)` pair. The lattice
//! for reachability is the two-point `{unreached, reached}` lattice with
//! a path witness attached; the transfer function is union over call
//! edges, and the BFS below is its fixpoint.

use crate::callgraph::CallGraph;
use std::collections::{BTreeMap, BTreeSet};

/// How a reached function connects one hop closer to the seed set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// The neighbouring function one step closer to a seed.
    pub next: usize,
    /// Call-site line (in the *current* function for downward walks, in
    /// the caller for upward walks — see the direction helpers).
    pub line: u32,
}

/// Functions reachable *upward* from `seeds`: every function that can
/// transitively call into a seed. The returned map contains all reached
/// functions; seeds map to `None`, others to the hop toward the seed.
/// `hop.line` is the call-site line inside the reached (calling)
/// function.
pub fn reach_callers(graph: &CallGraph, seeds: &BTreeSet<usize>) -> BTreeMap<usize, Option<Hop>> {
    let mut state: BTreeMap<usize, Option<Hop>> = seeds.iter().map(|&s| (s, None)).collect();
    let mut frontier: BTreeSet<usize> = seeds.clone();
    while !frontier.is_empty() {
        let mut nxt = BTreeSet::new();
        for &f in &frontier {
            for &e in &graph.in_edges[f] {
                let edge = &graph.edges[e];
                let entry = state.entry(edge.caller).or_insert_with(|| {
                    nxt.insert(edge.caller);
                    Some(Hop {
                        next: f,
                        line: edge.line,
                    })
                });
                // Within the same BFS level, prefer the smaller
                // (next, line) witness for determinism.
                if let Some(h) = entry {
                    if nxt.contains(&edge.caller) && (f, edge.line) < (h.next, h.line) {
                        *h = Hop {
                            next: f,
                            line: edge.line,
                        };
                    }
                }
            }
        }
        frontier = nxt;
    }
    state
}

/// Functions reachable *downward* from `seeds`: every function a seed
/// transitively calls. `hop.line` is the call-site line inside the
/// function one step closer to the seed (`hop.next`).
pub fn reach_callees(graph: &CallGraph, seeds: &BTreeSet<usize>) -> BTreeMap<usize, Option<Hop>> {
    let mut state: BTreeMap<usize, Option<Hop>> = seeds.iter().map(|&s| (s, None)).collect();
    let mut frontier: BTreeSet<usize> = seeds.clone();
    while !frontier.is_empty() {
        let mut nxt = BTreeSet::new();
        for &f in &frontier {
            for &e in &graph.out_edges[f] {
                let edge = &graph.edges[e];
                let entry = state.entry(edge.callee).or_insert_with(|| {
                    nxt.insert(edge.callee);
                    Some(Hop {
                        next: f,
                        line: edge.line,
                    })
                });
                if let Some(h) = entry {
                    if nxt.contains(&edge.callee) && (f, edge.line) < (h.next, h.line) {
                        *h = Hop {
                            next: f,
                            line: edge.line,
                        };
                    }
                }
            }
        }
        frontier = nxt;
    }
    state
}

/// Transitive closure of a per-function set-valued fact (e.g. "locks
/// this function may acquire, directly or via callees"). Classic
/// worklist fixpoint on the powerset lattice: iterate until no
/// function's set grows.
pub fn closure_over_callees(
    graph: &CallGraph,
    local: &BTreeMap<usize, BTreeSet<String>>,
) -> BTreeMap<usize, BTreeSet<String>> {
    let mut sets: BTreeMap<usize, BTreeSet<String>> = local.clone();
    let mut work: BTreeSet<usize> = (0..graph.fns.len()).collect();
    while let Some(&f) = work.iter().next() {
        work.remove(&f);
        let mut merged: BTreeSet<String> = sets.get(&f).cloned().unwrap_or_default();
        let before = merged.len();
        for &e in &graph.out_edges[f] {
            if let Some(callee_set) = sets.get(&graph.edges[e].callee) {
                merged.extend(callee_set.iter().cloned());
            }
        }
        if merged.len() > before || (!merged.is_empty() && !sets.contains_key(&f)) {
            sets.insert(f, merged);
            for &e in &graph.in_edges[f] {
                work.insert(graph.edges[e].caller);
            }
        }
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::source::SourceFile;
    use crate::symbols::extract_fns;

    fn graph(srcs: &[(&str, &str, &str)]) -> (Vec<SourceFile>, CallGraph) {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(p, c, s)| SourceFile::parse(p, c, false, s))
            .collect();
        let mut fns = Vec::new();
        for (i, f) in files.iter().enumerate() {
            fns.extend(extract_fns(f, i));
        }
        let g = callgraph::build(&files, fns, None);
        (files, g)
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        g.fns.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn upward_reachability_with_witness() {
        let (_, g) = graph(&[(
            "crates/core/src/a.rs",
            "core",
            "pub fn entry() {\n    helper(1);\n}\nfn helper(x: u32) {\n    leaf(x);\n}\nfn leaf(x: u32) {\n    let _ = x;\n}\n",
        )]);
        let leaf = idx(&g, "leaf");
        let reached = reach_callers(&g, &BTreeSet::from([leaf]));
        let entry = idx(&g, "entry");
        let helper = idx(&g, "helper");
        assert!(reached.contains_key(&entry));
        let hop = reached[&entry].unwrap();
        assert_eq!(hop.next, helper);
        assert_eq!(hop.line, 2);
        assert_eq!(reached[&leaf], None);
    }

    #[test]
    fn downward_reachability() {
        let (_, g) = graph(&[(
            "crates/core/src/a.rs",
            "core",
            "pub fn entry() {\n    helper(1);\n}\nfn helper(x: u32) {\n    leaf(x);\n}\nfn leaf(x: u32) {\n    let _ = x;\n}\nfn unrelated() {}\n",
        )]);
        let entry = idx(&g, "entry");
        let reached = reach_callees(&g, &BTreeSet::from([entry]));
        assert!(reached.contains_key(&idx(&g, "leaf")));
        assert!(!reached.contains_key(&idx(&g, "unrelated")));
    }

    #[test]
    fn closure_unions_callee_sets_through_cycles() {
        let (_, g) = graph(&[(
            "crates/store/src/a.rs",
            "store",
            "fn a() {\n    b();\n}\nfn b() {\n    a();\n    c();\n}\nfn c() {}\n",
        )]);
        let c = idx(&g, "c");
        let local = BTreeMap::from([(c, BTreeSet::from(["store.inner".to_string()]))]);
        let closed = closure_over_callees(&g, &local);
        assert!(closed[&idx(&g, "a")].contains("store.inner"));
        assert!(closed[&idx(&g, "b")].contains("store.inner"));
    }
}
