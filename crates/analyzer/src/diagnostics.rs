//! Diagnostics: severity, rendering, and machine-readable JSON output.

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported, but only fails the run under `--strict`.
    Warning,
    /// Fails the run unless suppressed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding at a file:line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (stable identifier, used in `allow(...)`).
    pub rule: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}]: {}",
            self.file, self.line, self.severity, self.rule, self.message
        )
    }
}

/// Renders diagnostics as a JSON array (hand-rolled: the workspace has
/// no serde). Output is stable: the caller sorts before rendering.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str("  {");
        out.push_str(&format!("\"file\":{},", json_str(&d.file)));
        out.push_str(&format!("\"line\":{},", d.line));
        out.push_str(&format!("\"rule\":{},", json_str(d.rule)));
        out.push_str(&format!(
            "\"severity\":{},",
            json_str(&d.severity.to_string())
        ));
        out.push_str(&format!("\"message\":{}", json_str(&d.message)));
        out.push('}');
        if i + 1 < diags.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// Escapes a string for JSON.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_rule_message() {
        let d = Diagnostic {
            file: "crates/core/src/x.rs".into(),
            line: 7,
            rule: "wall-clock",
            severity: Severity::Error,
            message: "no".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/core/src/x.rs:7: error[wall-clock]: no"
        );
    }

    #[test]
    fn json_escapes_and_shapes() {
        let d = Diagnostic {
            file: "a\"b.rs".into(),
            line: 1,
            rule: "panic-safety",
            severity: Severity::Warning,
            message: "line1\nline2".into(),
        };
        let j = to_json(&[d]);
        assert!(j.contains("\"file\":\"a\\\"b.rs\""));
        assert!(j.contains("\\nline2"));
        assert!(j.starts_with('[') && j.ends_with(']'));
    }

    #[test]
    fn empty_json_is_empty_array() {
        assert_eq!(to_json(&[]), "[\n]");
    }
}
