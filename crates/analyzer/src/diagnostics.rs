//! Diagnostics: severity, call-path traces, rendering, and
//! machine-readable JSON output.

use std::collections::BTreeMap;
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported, but only fails the run under `--strict`.
    Warning,
    /// Fails the run unless suppressed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One hop of an interprocedural finding's call path. The first step is
/// the path's origin (for taint: the result-crate entry point; for
/// hot-path allocation: the span site) and the last step is the site the
/// diagnostic anchors on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Workspace-relative path of the hop.
    pub file: String,
    /// 1-based line of the call site (or source/sink site).
    pub line: u32,
    /// Human-readable symbol at this hop (e.g. `core::fusion::fuse`).
    pub symbol: String,
}

impl fmt::Display for TraceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.symbol)
    }
}

/// One finding at a file:line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (stable identifier, used in `allow(...)`).
    pub rule: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// Call path for interprocedural findings (empty for line-local
    /// rules). Ordered source→sink or seed→site; see [`TraceStep`].
    pub trace: Vec<TraceStep>,
}

impl Diagnostic {
    /// A line-local diagnostic with no call path.
    pub fn new(
        file: String,
        line: u32,
        rule: &'static str,
        severity: Severity,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            file,
            line,
            rule,
            severity,
            message,
            trace: Vec::new(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}]: {}",
            self.file, self.line, self.severity, self.rule, self.message
        )
    }
}

/// Renders diagnostics as a JSON array (hand-rolled: the workspace has
/// no serde). Output is stable: the caller sorts before rendering.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str("  ");
        push_diag_json(&mut out, d);
        if i + 1 < diags.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

fn push_diag_json(out: &mut String, d: &Diagnostic) {
    out.push('{');
    out.push_str(&format!("\"file\":{},", json_str(&d.file)));
    out.push_str(&format!("\"line\":{},", d.line));
    out.push_str(&format!("\"rule\":{},", json_str(d.rule)));
    out.push_str(&format!(
        "\"severity\":{},",
        json_str(&d.severity.to_string())
    ));
    out.push_str(&format!("\"message\":{}", json_str(&d.message)));
    if !d.trace.is_empty() {
        out.push_str(",\"trace\":[");
        for (i, step) in d.trace.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"file\":{},\"line\":{},\"symbol\":{}}}",
                json_str(&step.file),
                step.line,
                json_str(&step.symbol)
            ));
        }
        out.push(']');
    }
    out.push('}');
}

/// Summary counters for a whole analysis run, embedded in the findings
/// report so CI and the run ledger can track finding counts over time.
#[derive(Debug, Clone)]
pub struct ReportSummary {
    /// Files analyzed.
    pub files: usize,
    /// Total suppressions encountered.
    pub suppressions: usize,
    /// Suppressions that matched no finding (stale).
    pub stale_suppressions: usize,
    /// Whether strict (audit-level) rules ran.
    pub strict: bool,
}

/// Renders the versioned machine-readable findings report: schema tag,
/// summary counters, per-rule finding counts, and the findings
/// themselves (traces included). Deliberately carries no timestamps so
/// back-to-back runs on the same tree are byte-identical.
pub fn to_json_report(diags: &[Diagnostic], summary: &ReportSummary) -> String {
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for d in diags {
        *by_rule.entry(d.rule).or_insert(0) += 1;
    }
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"files\": {},\n", summary.files));
    out.push_str(&format!("  \"suppressions\": {},\n", summary.suppressions));
    out.push_str(&format!(
        "  \"stale_suppressions\": {},\n",
        summary.stale_suppressions
    ));
    out.push_str(&format!("  \"strict\": {},\n", summary.strict));
    out.push_str(&format!("  \"errors\": {},\n", errors));
    out.push_str(&format!("  \"warnings\": {},\n", diags.len() - errors));
    out.push_str("  \"counts\": {");
    for (i, (rule, n)) in by_rule.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", json_str(rule), n));
    }
    out.push_str("},\n");
    out.push_str("  \"findings\": [\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str("    ");
        push_diag_json(&mut out, d);
        if i + 1 < diags.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}");
    out
}

/// Escapes a string for JSON.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_rule_message() {
        let d = Diagnostic::new(
            "crates/core/src/x.rs".into(),
            7,
            "wall-clock",
            Severity::Error,
            "no".into(),
        );
        assert_eq!(
            d.to_string(),
            "crates/core/src/x.rs:7: error[wall-clock]: no"
        );
    }

    #[test]
    fn json_escapes_and_shapes() {
        let d = Diagnostic::new(
            "a\"b.rs".into(),
            1,
            "panic-safety",
            Severity::Warning,
            "line1\nline2".into(),
        );
        let j = to_json(&[d]);
        assert!(j.contains("\"file\":\"a\\\"b.rs\""));
        assert!(j.contains("\\nline2"));
        assert!(j.starts_with('[') && j.ends_with(']'));
    }

    #[test]
    fn empty_json_is_empty_array() {
        assert_eq!(to_json(&[]), "[\n]");
    }

    #[test]
    fn trace_round_trips_into_json() {
        let mut d = Diagnostic::new(
            "crates/core/src/fusion.rs".into(),
            9,
            "determinism-taint",
            Severity::Error,
            "tainted".into(),
        );
        d.trace.push(TraceStep {
            file: "crates/obs/src/lib.rs".into(),
            line: 3,
            symbol: "obs::clock".into(),
        });
        let j = to_json(&[d]);
        assert!(j.contains("\"trace\":[{\"file\":\"crates/obs/src/lib.rs\""));
        assert!(j.contains("\"symbol\":\"obs::clock\""));
    }

    #[test]
    fn report_carries_schema_and_counts() {
        let d = Diagnostic::new("x.rs".into(), 1, "lock-order", Severity::Error, "m".into());
        let r = to_json_report(
            &[d],
            &ReportSummary {
                files: 3,
                suppressions: 2,
                stale_suppressions: 1,
                strict: false,
            },
        );
        assert!(r.contains("\"schema\": 1"));
        assert!(r.contains("\"counts\": {\"lock-order\":1}"));
        assert!(r.contains("\"errors\": 1"));
        assert!(r.contains("\"stale_suppressions\": 1"));
    }
}
