//! The `uniq-analyzer` binary: `uniq-analyzer check [--format json]
//! [--strict] [--root <path>]`. See the library docs for the rule set.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use uniq_analyzer::diagnostics::{to_json, Severity};
use uniq_analyzer::{analyze_workspace, find_root};

fn usage() -> &'static str {
    "uniq-analyzer — static analysis for the UNIQ workspace\n\
     \n\
     USAGE:\n\
     \x20   uniq-analyzer check [OPTIONS]\n\
     \n\
     OPTIONS:\n\
     \x20   --format <text|json>   output format (default: text)\n\
     \x20   --strict               also run audit-level warning rules\n\
     \x20   --root <path>          workspace root (default: auto-detect\n\
     \x20                          from the current directory)\n\
     \n\
     EXIT STATUS:\n\
     \x20   0  no unsuppressed error-severity findings\n\
     \x20   1  findings present\n\
     \x20   2  usage or I/O error"
}

struct Options {
    json: bool,
    strict: bool,
    root: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some(other) => return Err(format!("unknown command `{other}`")),
        None => return Err("missing command (expected `check`)".to_string()),
    }
    let mut opts = Options {
        json: false,
        strict: false,
        root: None,
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--strict" => opts.strict = true,
            "--root" => match it.next() {
                Some(p) => opts.root = Some(PathBuf::from(p)),
                None => return Err("--root expects a path".to_string()),
            },
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let root = match opts
        .root
        .or_else(|| std::env::current_dir().ok().and_then(|cwd| find_root(&cwd)))
    {
        Some(r) => r,
        None => {
            eprintln!("error: could not locate the workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };

    let report = match analyze_workspace(&root, opts.strict) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    let errors = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = report.diagnostics.len() - errors;

    if opts.json {
        println!("{}", to_json(&report.diagnostics));
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!(
            "uniq-analyzer: {} files, {} suppressions, {} errors, {} warnings",
            report.files_analyzed, report.suppressions, errors, warnings
        );
    }

    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
