//! The `uniq-analyzer` binary: `uniq-analyzer check [--format json]
//! [--strict] [--root <path>] [--threads <n>] [--out <file>]
//! [--budget-seconds <s>]`. See the library docs for the rule set. The
//! same driver backs the `uniq analyze` verb.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use uniq_analyzer::cli::{run_check, OPTIONS_HELP};

fn usage() -> String {
    format!(
        "uniq-analyzer — static analysis for the UNIQ workspace\n\
         \n\
         USAGE:\n\
         \x20   uniq-analyzer check [OPTIONS]\n\
         \n\
         OPTIONS:\n\
         {OPTIONS_HELP}\n\
         \n\
         EXIT STATUS:\n\
         \x20   0  no unsuppressed error-severity findings\n\
         \x20   1  findings present\n\
         \x20   2  usage or I/O error"
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => ExitCode::from(run_check(&args[1..], &usage()) as u8),
        Some(other) => {
            eprintln!("error: unknown command `{other}`\n\n{}", usage());
            ExitCode::from(2)
        }
        None => {
            eprintln!("error: missing command (expected `check`)\n\n{}", usage());
            ExitCode::from(2)
        }
    }
}
