//! # uniq-analyzer
//!
//! A self-contained static-analysis pass over the UNIQ workspace,
//! enforcing the domain invariants the paper reproduction silently
//! depends on: **determinism** (no unordered iteration, wall-clock
//! reads, or environment reads in result-producing crates),
//! **unsafe-audit** (`unsafe` confined to `uniq-par`, every block
//! carrying a `// SAFETY:` comment, every other crate root declaring
//! `#![forbid(unsafe_code)]`), **panic-safety** (no
//! `unwrap`/`expect`/`panic!` in result-crate library paths), and
//! **observability hygiene** (span guards bound, metric names shared
//! constants).
//!
//! Since v2 the analyzer also reasons *across* function calls: a
//! workspace-wide symbol table ([`symbols`]), a conservative name/arity
//! call graph ([`callgraph`]), and a fixed-point dataflow engine
//! ([`dataflow`]) drive four interprocedural rule families
//! ([`flow_rules`]): determinism taint (nondeterminism sources may not
//! reach result-crate public fns, however many helpers launder them),
//! panic reachability (panic sites in support crates reachable from
//! result entry points), lock order (Mutex acquisition cycles and
//! guards held across pool boundaries), and hot-path allocation
//! (functions reachable from hot spans must not allocate per call).
//! A stale-suppression audit closes the loop: an `allow(...)` that
//! silences nothing is itself a finding.
//!
//! Why a bespoke tool instead of clippy lints: the invariants are
//! *domain* rules — "crate X may not read the clock", "metric names
//! must come from `uniq_obs::names`" — that no general-purpose lint
//! expresses, and the offline build environment has no `syn`/`dylint`
//! to build on. The analyzer therefore hand-rolls a lossless-enough
//! tokenizer ([`lexer`]), a per-file context with test-region and
//! suppression tracking ([`source`]), and a small rule engine
//! ([`rules`]) with `file:line` diagnostics and machine-readable JSON
//! output ([`diagnostics`]).
//!
//! Run it over the workspace:
//!
//! ```text
//! cargo run -p uniq-analyzer -- check             # human-readable
//! cargo run -p uniq-analyzer -- check --format json
//! cargo run -p uniq-analyzer -- check --strict    # + audit-level rules
//! ```
//!
//! Exit status is nonzero iff any unsuppressed **error**-severity
//! diagnostic remains. Individual sites are silenced with an inline
//! comment naming the rule and the reason:
//!
//! ```text
//! // uniq-analyzer: allow(wall-clock) — timing feeds obs metrics only
//! ```
//!
//! A suppression without a justification (or naming an unknown rule) is
//! itself an error, so the audit trail stays honest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod cli;
pub mod dataflow;
pub mod diagnostics;
pub mod facts;
pub mod flow_rules;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod symbols;
pub mod workspace;

pub use diagnostics::{to_json_report, Diagnostic, ReportSummary, Severity, TraceStep};
pub use source::SourceFile;
pub use workspace::{
    analyze_sources, analyze_workspace, analyze_workspace_with, find_root, SourceSpec,
    WorkspaceReport,
};

/// Analyzes a single source text as if it were at `path` in crate
/// `crate_name`. The entry point the golden-fixture tests use.
pub fn analyze_str(
    path: &str,
    crate_name: &str,
    is_crate_root: bool,
    text: &str,
    strict: bool,
) -> Vec<Diagnostic> {
    let file = SourceFile::parse(path, crate_name, is_crate_root, text);
    rules::analyze_file(&file, strict)
}
