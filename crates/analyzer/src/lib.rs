//! # uniq-analyzer
//!
//! A self-contained static-analysis pass over the UNIQ workspace,
//! enforcing the domain invariants the paper reproduction silently
//! depends on: **determinism** (no unordered iteration, wall-clock
//! reads, or environment reads in result-producing crates),
//! **unsafe-audit** (`unsafe` confined to `uniq-par`, every block
//! carrying a `// SAFETY:` comment, every other crate root declaring
//! `#![forbid(unsafe_code)]`), **panic-safety** (no
//! `unwrap`/`expect`/`panic!` in result-crate library paths), and
//! **observability hygiene** (span guards bound, metric names shared
//! constants).
//!
//! Why a bespoke tool instead of clippy lints: the invariants are
//! *domain* rules — "crate X may not read the clock", "metric names
//! must come from `uniq_obs::names`" — that no general-purpose lint
//! expresses, and the offline build environment has no `syn`/`dylint`
//! to build on. The analyzer therefore hand-rolls a lossless-enough
//! tokenizer ([`lexer`]), a per-file context with test-region and
//! suppression tracking ([`source`]), and a small rule engine
//! ([`rules`]) with `file:line` diagnostics and machine-readable JSON
//! output ([`diagnostics`]).
//!
//! Run it over the workspace:
//!
//! ```text
//! cargo run -p uniq-analyzer -- check             # human-readable
//! cargo run -p uniq-analyzer -- check --format json
//! cargo run -p uniq-analyzer -- check --strict    # + audit-level rules
//! ```
//!
//! Exit status is nonzero iff any unsuppressed **error**-severity
//! diagnostic remains. Individual sites are silenced with an inline
//! comment naming the rule and the reason:
//!
//! ```text
//! // uniq-analyzer: allow(wall-clock) — timing feeds obs metrics only
//! ```
//!
//! A suppression without a justification (or naming an unknown rule) is
//! itself an error, so the audit trail stays honest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagnostics;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

pub use diagnostics::{Diagnostic, Severity};
pub use source::SourceFile;
pub use workspace::{analyze_workspace, find_root, WorkspaceReport};

/// Analyzes a single source text as if it were at `path` in crate
/// `crate_name`. The entry point the golden-fixture tests use.
pub fn analyze_str(
    path: &str,
    crate_name: &str,
    is_crate_root: bool,
    text: &str,
    strict: bool,
) -> Vec<Diagnostic> {
    let file = SourceFile::parse(path, crate_name, is_crate_root, text);
    rules::analyze_file(&file, strict)
}
