//! The rule set: domain invariants the UNIQ reproduction depends on.
//!
//! Every rule is a token-pattern check over a [`SourceFile`]. Rules are
//! deliberately narrow and explainable — each diagnostic names the
//! invariant it protects, and every rule can be silenced at one site
//! with `// uniq-analyzer: allow(<rule>) — <one-line justification>`
//! (the justification is mandatory; an empty one is itself a finding).
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `hash-iteration` | result crates | no `HashMap`/`HashSet` (iteration order nondeterminism) |
//! | `wall-clock` | result crates | no `Instant`/`SystemTime` (results must not depend on time) |
//! | `env-read` | result crates | no `env::` reads (results must not depend on ambient state) |
//! | `forbid-unsafe` | all crate roots except `par` | `#![forbid(unsafe_code)]` present |
//! | `safety-comment` | everywhere | every `unsafe` has a `// SAFETY:` audit comment |
//! | `panic-safety` | result crates | no `unwrap`/`expect`/`panic!` in library paths |
//! | `slice-index` | result crates, `--strict` | direct indexing audited (warning) |
//! | `obs-span-guard` | everywhere | span guards bound, not dropped on the spot |
//! | `obs-metric-name` | everywhere but `obs` | metric/counter names are shared constants |
//! | `obs-context` | everywhere | emission in pool closures runs under a captured `ObsContext` |
//! | `bad-suppression` | everywhere | suppressions carry a justification and name real rules |
//!
//! The interprocedural rule families live in [`crate::flow_rules`] and
//! run at workspace scope (they need the whole call graph):
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `determinism-taint` | workspace | no call path from a result-crate public fn to a nondeterminism source |
//! | `panic-reachability` | workspace | no panic site in support crates reachable from result-crate entry points |
//! | `lock-order` | `store`/`telemetry`/`obs` | Mutex acquisition graph is acyclic; no guard held across a pool boundary |
//! | `hot-path-alloc` | workspace | fns reachable from hot spans do not allocate per call |
//! | `stale-suppression` | workspace | every `allow(...)` still matches a finding |
//!
//! "Result crates" are the crates whose output feeds the paper's
//! evaluation numbers: a nondeterministic iteration or wall-clock read
//! there silently breaks run-to-run bit-identity of per-subject HRTF
//! error and AoA accuracy.

use crate::diagnostics::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Crates whose numeric output lands in the paper's evaluation; the
/// determinism and panic-safety rules apply to their library code.
pub const RESULT_CRATES: &[&str] = &[
    "core",
    "dsp",
    "geometry",
    "acoustics",
    "imu",
    "optim",
    "render",
    "subjects",
    "faults",
    "store",
];

/// The only crates allowed to contain `unsafe` code: the pool's job
/// erasure (`par`) and the counting global allocator (`memprof`, whose
/// `GlobalAlloc` impl is unsafe by trait contract). Both are audited by
/// `safety-comment`.
pub const UNSAFE_ALLOWED_CRATES: &[&str] = &["par", "memprof"];

/// All rule names the suppression parser accepts.
pub const RULE_NAMES: &[&str] = &[
    "hash-iteration",
    "wall-clock",
    "env-read",
    "forbid-unsafe",
    "safety-comment",
    "panic-safety",
    "slice-index",
    "obs-span-guard",
    "obs-metric-name",
    "obs-context",
    "bad-suppression",
    "determinism-taint",
    "panic-reachability",
    "lock-order",
    "hot-path-alloc",
    "stale-suppression",
];

/// Runs every rule over `file`, applies suppressions, and validates the
/// suppressions themselves. `strict` enables the warning-level audit
/// rules (currently `slice-index`).
pub fn analyze_file(file: &SourceFile, strict: bool) -> Vec<Diagnostic> {
    let raw = raw_findings(file, strict);
    let mut out: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| !file.is_suppressed(d.rule, d.line))
        .collect();
    check_suppressions(file, &mut out);
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Runs every line-local rule over `file` WITHOUT applying suppressions
/// or validating them. The workspace driver uses this so it can track
/// which suppressions actually silence something (the stale-suppression
/// audit); [`analyze_file`] keeps the filtered per-file behavior.
pub(crate) fn raw_findings(file: &SourceFile, strict: bool) -> Vec<Diagnostic> {
    let mut raw = Vec::new();
    hash_iteration(file, &mut raw);
    wall_clock(file, &mut raw);
    env_read(file, &mut raw);
    forbid_unsafe(file, &mut raw);
    safety_comment(file, &mut raw);
    panic_safety(file, &mut raw);
    if strict {
        slice_index(file, &mut raw);
    }
    obs_span_guard(file, &mut raw);
    obs_metric_name(file, &mut raw);
    obs_context(file, &mut raw);
    raw
}

fn is_result_crate(file: &SourceFile) -> bool {
    RESULT_CRATES.contains(&file.crate_name.as_str())
}

fn diag(
    file: &SourceFile,
    line: u32,
    rule: &'static str,
    severity: Severity,
    message: String,
) -> Diagnostic {
    Diagnostic::new(file.path.clone(), line, rule, severity, message)
}

/// `hash-iteration`: `HashMap`/`HashSet` banned in result crates. Their
/// iteration order varies run to run (`RandomState`), so any fold, sum,
/// or output assembled from one is nondeterministic; use `BTreeMap`,
/// `Vec`, or an index keyed by position instead. The ban is on the type
/// rather than just `.iter()` calls: every unordered map eventually gets
/// iterated, and the type name is the reviewable chokepoint.
fn hash_iteration(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !is_result_crate(file) {
        return;
    }
    for i in 0..file.sig.len() {
        let Some(t) = file.sig_token(i) else { continue };
        if t.kind == TokenKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !file.in_test_code(t.line)
        {
            out.push(diag(
                file,
                t.line,
                "hash-iteration",
                Severity::Error,
                format!(
                    "`{}` in result-producing crate `{}`: iteration order is \
                     nondeterministic and breaks run-to-run bit-identity; use \
                     `BTreeMap`/`BTreeSet`/`Vec` instead",
                    t.text, file.crate_name
                ),
            ));
        }
    }
}

/// `wall-clock`: `Instant`/`SystemTime` banned in result crates. Paper
/// numbers must be a pure function of the input dataset; a time read in
/// a compute path (e.g. a time-seeded perturbation or a timeout that
/// truncates an optimizer) silently varies results across machines.
fn wall_clock(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !is_result_crate(file) {
        return;
    }
    for i in 0..file.sig.len() {
        let Some(t) = file.sig_token(i) else { continue };
        if t.kind == TokenKind::Ident
            && (t.text == "Instant" || t.text == "SystemTime")
            && !file.in_test_code(t.line)
        {
            out.push(diag(
                file,
                t.line,
                "wall-clock",
                Severity::Error,
                format!(
                    "wall-clock type `{}` in result-producing crate `{}`: \
                     results must not depend on time; if this only feeds \
                     observability, suppress with a justification",
                    t.text, file.crate_name
                ),
            ));
        }
    }
}

/// `env-read`: `env::…` reads banned in result crates. Ambient process
/// state (env vars, argv, temp dirs) reaching a compute path makes two
/// runs with the same dataset incomparable. Thread configuration
/// belongs in `par`; I/O paths belong to the CLI.
fn env_read(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !is_result_crate(file) {
        return;
    }
    for i in 0..file.sig.len() {
        if file.sig_matches(
            i,
            &[
                (TokenKind::Ident, Some("env")),
                (TokenKind::Punct, Some(":")),
                (TokenKind::Punct, Some(":")),
            ],
        ) {
            let t = match file.sig_token(i) {
                Some(t) => t,
                None => continue,
            };
            if file.in_test_code(t.line) {
                continue;
            }
            out.push(diag(
                file,
                t.line,
                "env-read",
                Severity::Error,
                format!(
                    "`env::` access in result-producing crate `{}`: ambient \
                     process state must not reach compute paths; take the \
                     value as a parameter instead",
                    file.crate_name
                ),
            ));
        }
    }
}

/// `forbid-unsafe`: every crate root outside [`UNSAFE_ALLOWED_CRATES`]
/// must declare `#![forbid(unsafe_code)]`, so the unsafe surface stays
/// confined to the crates whose job demands it and is audited by
/// `safety-comment`.
fn forbid_unsafe(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_crate_root || UNSAFE_ALLOWED_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    for i in 0..file.sig.len() {
        if file.sig_matches(
            i,
            &[
                (TokenKind::Punct, Some("#")),
                (TokenKind::Punct, Some("!")),
                (TokenKind::Punct, Some("[")),
                (TokenKind::Ident, Some("forbid")),
                (TokenKind::Punct, Some("(")),
                (TokenKind::Ident, Some("unsafe_code")),
                (TokenKind::Punct, Some(")")),
                (TokenKind::Punct, Some("]")),
            ],
        ) {
            return;
        }
    }
    out.push(diag(
        file,
        1,
        "forbid-unsafe",
        Severity::Error,
        format!(
            "crate root of `{}` lacks `#![forbid(unsafe_code)]`: unsafe code \
             is confined to {:?} by design",
            file.crate_name, UNSAFE_ALLOWED_CRATES
        ),
    ));
}

/// `safety-comment`: every `unsafe` keyword must be preceded (within a
/// short window) by a `// SAFETY:` comment stating the invariant that
/// makes it sound. Applies everywhere; in practice only `par` can
/// contain `unsafe` at all.
fn safety_comment(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (idx, t) in file.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "unsafe" || file.in_test_code(t.line) {
            continue;
        }
        let window_start = t.line.saturating_sub(14);
        let documented = file.tokens[..idx]
            .iter()
            .rev()
            .any(|c| c.is_comment() && c.line >= window_start && c.text.contains("SAFETY:"));
        if !documented {
            out.push(diag(
                file,
                t.line,
                "safety-comment",
                Severity::Error,
                "`unsafe` without a `// SAFETY:` comment: state the invariant \
                 that makes this sound and why it cannot be violated"
                    .to_string(),
            ));
        }
    }
}

/// `panic-safety`: `unwrap()`, `expect(...)`, and the panicking macros
/// are banned in result-crate library code. A panic in a batch worker
/// kills the whole batch (the pool propagates it by design); library
/// paths must return `Result` and let the session layer decide.
/// `assert!`/`debug_assert!` remain allowed: they document impossible
/// states rather than handle fallible ones.
fn panic_safety(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !is_result_crate(file) {
        return;
    }
    for i in 0..file.sig.len() {
        let Some(t) = file.sig_token(i) else { continue };
        if t.kind != TokenKind::Ident || file.in_test_code(t.line) {
            continue;
        }
        let name = t.text.as_str();
        let finding = match name {
            "unwrap" | "expect" => {
                // Method call: `.unwrap()` / `.expect(`. Requiring the dot
                // keeps `fn unwrap…` definitions and paths out.
                let prev_dot = i > 0
                    && file
                        .sig_token(i - 1)
                        .is_some_and(|p| p.kind == TokenKind::Punct && p.text == ".");
                let next_paren = file
                    .sig_token(i + 1)
                    .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "(");
                prev_dot && next_paren
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                // Macro invocation `name!(…)`; `core::panic!` included.
                file.sig_token(i + 1)
                    .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "!")
            }
            _ => false,
        };
        if finding {
            out.push(diag(
                file,
                t.line,
                "panic-safety",
                Severity::Error,
                format!(
                    "`{}` in library code of result crate `{}`: a panic here \
                     kills the whole batch; return `Result` (or suppress with \
                     the invariant that rules the panic out)",
                    name, file.crate_name
                ),
            ));
        }
    }
}

/// `slice-index` (strict only, warning): direct `x[i]` indexing in
/// result crates. Indexing is pervasive and usually bounds-safe in the
/// DSP inner loops, so this is an audit lens rather than a gate — run
/// `check --strict` to enumerate sites when hunting a panic.
fn slice_index(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !is_result_crate(file) {
        return;
    }
    for i in 1..file.sig.len() {
        let Some(t) = file.sig_token(i) else { continue };
        if t.kind != TokenKind::Punct || t.text != "[" || file.in_test_code(t.line) {
            continue;
        }
        // `[` is an index expression iff it directly follows a value:
        // an identifier, `)`, or `]`. (`#[attr]`, `vec![…]`, `: [f64; 3]`
        // all follow punctuation.)
        let is_index = file.sig_token(i - 1).is_some_and(|p| {
            p.kind == TokenKind::Ident
                || (p.kind == TokenKind::Punct && (p.text == ")" || p.text == "]"))
        });
        // Exclude macro brackets: ident `!` `[`.
        let after_bang = i >= 2
            && file
                .sig_token(i - 1)
                .is_some_and(|p| p.kind == TokenKind::Punct && p.text == "!");
        if is_index && !after_bang {
            out.push(diag(
                file,
                t.line,
                "slice-index",
                Severity::Warning,
                "direct slice indexing: audit that the bound is established \
                 on every path, or use `get`"
                    .to_string(),
            ));
        }
    }
}

/// `obs-span-guard`: a span is a RAII guard; `let _ = span(...)` or a
/// bare `span(...);` statement drops it immediately, recording a
/// zero-length span and unbalancing the enter/exit tree that the
/// stderr/jsonl sinks and the report builder rely on.
fn obs_span_guard(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for i in 0..file.sig.len() {
        let Some(t) = file.sig_token(i) else { continue };
        if t.kind != TokenKind::Ident || t.text != "span" || file.in_test_code(t.line) {
            continue;
        }
        // Only the call form `span(` (optionally `uniq_obs::span(`).
        if !file
            .sig_token(i + 1)
            .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "(")
        {
            continue;
        }
        // Walk back over a `uniq_obs ::` / `obs ::` qualifier.
        let mut head = i;
        if head >= 2
            && file.sig_matches(
                head - 2,
                &[(TokenKind::Punct, Some(":")), (TokenKind::Punct, Some(":"))],
            )
            && head >= 3
            && file
                .sig_token(head - 3)
                .is_some_and(|q| q.kind == TokenKind::Ident)
        {
            head -= 3;
        }
        // Case 1: `let _ = [qualifier::]span(…)` — guard dropped at once.
        let underscore_bind = head >= 3
            && file.sig_matches(
                head - 3,
                &[
                    (TokenKind::Ident, Some("let")),
                    (TokenKind::Ident, Some("_")),
                    (TokenKind::Punct, Some("=")),
                ],
            );
        // Case 2: statement-position call `span(…);` — previous
        // significant token ends a statement or opens a block.
        let statement_position = head == 0
            || file.sig_token(head - 1).is_some_and(|p| {
                p.kind == TokenKind::Punct && (p.text == ";" || p.text == "{" || p.text == "}")
            });
        if underscore_bind || statement_position {
            out.push(diag(
                file,
                t.line,
                "obs-span-guard",
                Severity::Error,
                "span guard dropped immediately (`let _ = …` or bare \
                 statement): bind it — `let _span = span(…);` — so the span \
                 covers the scope it names"
                    .to_string(),
            ));
        }
    }
}

/// `obs-metric-name`: `metric(…)`/`counter(…)` called with an inline
/// string literal outside `uniq-obs`. Names must come from
/// `uniq_obs::names` so producers and the consumers that aggregate or
/// assert on them (reports, experiments, CI checks) cannot drift apart.
fn obs_metric_name(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.crate_name == "obs" {
        return;
    }
    for i in 0..file.sig.len() {
        let Some(t) = file.sig_token(i) else { continue };
        if t.kind != TokenKind::Ident
            || (t.text != "metric" && t.text != "counter")
            || file.in_test_code(t.line)
        {
            continue;
        }
        let literal_first_arg = file
            .sig_token(i + 1)
            .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "(")
            && file
                .sig_token(i + 2)
                .is_some_and(|a| a.kind == TokenKind::Str);
        if literal_first_arg {
            out.push(diag(
                file,
                t.line,
                "obs-metric-name",
                Severity::Error,
                format!(
                    "inline string name in `{}(…)`: use a constant from \
                     `uniq_obs::names` so metric names cannot drift between \
                     the crate that emits and the code that aggregates",
                    t.text
                ),
            ));
        }
    }
}

/// `obs-context`: span/metric/counter emission inside a pool closure
/// (`par_map`, `par_map_chunked`, `try_par_map`) must run under a
/// captured `ObsContext` (`uniq_obs::capture()`) — `ctx.run(…)` or
/// `ctx.run_indexed(…)`. Workers carry no ambient span stack: an
/// uncontexted emission still reaches the sink, but with no trace/span
/// ids linking it to the submitting span, so the causal tree that
/// `uniq trace report` rebuilds grows orphans and the per-worker
/// telemetry shards cannot attribute the event to a lane.
fn obs_context(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    const ENTRY_POINTS: &[&str] = &["par_map", "par_map_chunked", "try_par_map"];
    const EMITTERS: &[&str] = &["span", "metric", "counter"];
    for i in 0..file.sig.len() {
        let Some(t) = file.sig_token(i) else { continue };
        if t.kind != TokenKind::Ident
            || !ENTRY_POINTS.contains(&t.text.as_str())
            || file.in_test_code(t.line)
        {
            continue;
        }
        // Only the call form `par_map…(`, not definitions or doc paths.
        if !file
            .sig_token(i + 1)
            .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "(")
        {
            continue;
        }
        // Walk the call's argument region (paren depth), flagging any
        // emission ident that appears before a `run`/`run_indexed`.
        let mut depth = 1usize;
        let mut j = i + 2;
        let mut has_context = false;
        while depth > 0 {
            let Some(tok) = file.sig_token(j) else { break };
            if tok.kind == TokenKind::Punct {
                match tok.text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    _ => {}
                }
            } else if tok.kind == TokenKind::Ident {
                if tok.text == "run" || tok.text == "run_indexed" {
                    has_context = true;
                } else if !has_context && EMITTERS.contains(&tok.text.as_str()) {
                    out.push(diag(
                        file,
                        tok.line,
                        "obs-context",
                        Severity::Error,
                        format!(
                            "`{}` emitted inside a `{}` closure without a \
                             captured context: wrap the closure body in \
                             `ctx.run(…)`/`ctx.run_indexed(…)` (from \
                             `uniq_obs::capture()`) so the event keeps its \
                             causal trace ids",
                            tok.text, t.text
                        ),
                    ));
                }
            }
            j += 1;
        }
    }
}

/// `bad-suppression`: validates the suppressions themselves — a
/// suppression must name known rules and carry a non-empty one-line
/// justification, otherwise the audit trail the suppressions exist to
/// provide is worthless.
pub(crate) fn check_suppressions(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for s in &file.suppressions {
        if s.justification.trim().is_empty() {
            out.push(diag(
                file,
                s.line,
                "bad-suppression",
                Severity::Error,
                "suppression without a justification: append `— <why this \
                 site is sound>` after `allow(…)`"
                    .to_string(),
            ));
        }
        for rule in &s.rules {
            if !RULE_NAMES.contains(&rule.as_str()) {
                out.push(diag(
                    file,
                    s.line,
                    "bad-suppression",
                    Severity::Error,
                    format!("suppression names unknown rule `{rule}`"),
                ));
            }
        }
    }
}
