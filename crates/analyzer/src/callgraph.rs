//! A conservative whole-workspace call graph.
//!
//! Resolution is name- and arity-based, deliberately over-approximate
//! (an edge too many widens a reachability set; an edge too few hides a
//! real path, so ties break toward adding the edge):
//!
//! - **Free calls** `foo(…)` resolve to every first-party free function
//!   named `foo` whose parameter count matches the argument count, in
//!   any crate (cross-crate laundering through a helper is exactly what
//!   the dataflow rules exist to catch).
//! - **Method calls** `x.foo(…)` resolve to every first-party method
//!   named `foo` with a `self` receiver and `args + 1` parameters —
//!   receiver types are unknown, and trait objects (`dyn Sink`) make
//!   even known types insufficient, so all impls stay candidates.
//! - **Qualified calls** `Qual::foo(…)` narrow by the qualifier: a
//!   first-party type name keeps only that type's associated functions
//!   and methods; a first-party crate or module name keeps only that
//!   scope's free functions; an unknown qualifier (`Vec`, `String`,
//!   `std`, …) resolves to nothing — calls into the standard library
//!   are facts about the caller, not edges.
//! - **Closures** need no special casing for reachability: a closure's
//!   body lies inside its defining function's token range, so calls made
//!   from a closure handed to `uniq-par` attribute to the submitting
//!   function, which is the causal truth the rules want. The pool
//!   *boundary* (what is live across `par_map`) is tracked separately by
//!   the lock-order facts.
//!
//! Call sites inside test regions are skipped, matching the rule
//! engine's test exemption.

use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::symbols::{FnDef, FnKind};
use std::collections::{BTreeMap, BTreeSet};

/// Which crates each crate can name: the transitive dependency closure
/// (itself included). Resolution filters candidate callees through this
/// — a call in `geometry` cannot land in `obs` if `geometry` does not
/// depend on `obs`, which kills the worst name-collision edges
/// (`.expect(…)` resolving into a JSON parser three crates away).
pub type DepClosure = BTreeMap<String, BTreeSet<String>>;

/// The names `uniq-par` exposes for handing work to the pool; calls to
/// these mark a parallel boundary at the call site.
pub const POOL_ENTRY_POINTS: &[&str] = &["par_map", "par_map_chunked", "try_par_map", "scope"];

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Calling function (index into the graph's `fns`).
    pub caller: usize,
    /// Called function (index into the graph's `fns`).
    pub callee: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
}

/// The workspace call graph over all extracted [`FnDef`]s.
#[derive(Debug)]
pub struct CallGraph {
    /// All function definitions, workspace-wide, in file order.
    pub fns: Vec<FnDef>,
    /// All resolved edges, sorted.
    pub edges: Vec<Edge>,
    /// Forward adjacency: `fns` index → callee edge indices.
    pub out_edges: Vec<Vec<usize>>,
    /// Reverse adjacency: `fns` index → caller edge indices.
    pub in_edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Index of the innermost function in `file_index` whose body
    /// contains significant-token index `sig_idx`, if any.
    pub fn enclosing_fn(&self, file_index: usize, sig_idx: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        let mut best_len = usize::MAX;
        for (i, f) in self.fns.iter().enumerate() {
            if f.file == file_index && f.body.contains(&sig_idx) {
                let len = f.body.end - f.body.start;
                if len < best_len {
                    best_len = len;
                    best = Some(i);
                }
            }
        }
        best
    }
}

/// How a call site names its target.
#[derive(Debug, PartialEq, Eq)]
enum CallStyle {
    Free,
    Method,
    Qualified(String),
}

/// Builds the call graph for a set of parsed files and their extracted
/// functions. `fns` must hold the concatenated output of
/// [`crate::symbols::extract_fns`] over `files`, in file order.
/// `deps`, when given, restricts resolution to each caller crate's
/// dependency closure; `None` (fixture analyses without manifests)
/// allows every crate pair.
pub fn build(files: &[SourceFile], fns: Vec<FnDef>, deps: Option<&DepClosure>) -> CallGraph {
    let allowed = |caller: &str, callee: &str| -> bool {
        caller == callee
            || deps.is_none_or(|m| m.get(caller).is_some_and(|set| set.contains(callee)))
    };
    // Name indices for resolution.
    let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut owners: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut crate_names: BTreeMap<&str, ()> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        crate_names.entry(f.crate_name.as_str()).or_insert(());
        match &f.kind {
            FnKind::Free => free_by_name.entry(f.name.as_str()).or_default().push(i),
            FnKind::Method { owner, .. } => {
                methods_by_name.entry(f.name.as_str()).or_default().push(i);
                owners.entry(owner.as_str()).or_default().push(i);
            }
        }
    }

    let mut edges: Vec<Edge> = Vec::new();
    for (caller_idx, caller) in fns.iter().enumerate() {
        let file = &files[caller.file];
        let body = caller.body.clone();
        let mut i = body.start;
        while i < body.end {
            let Some(t) = file.sig_token(i) else { break };
            if t.kind != TokenKind::Ident || file.in_test_code(t.line) {
                i += 1;
                continue;
            }
            // Call form: ident followed by `(`; skip definitions
            // (`fn name(`) and macros (`name!(`).
            let open = file
                .sig_token(i + 1)
                .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "(");
            if !open {
                i += 1;
                continue;
            }
            let prev = i.checked_sub(1).and_then(|p| file.sig_token(p));
            if prev.is_some_and(|p| p.kind == TokenKind::Ident && p.text == "fn") {
                i += 1;
                continue;
            }
            let style = match prev {
                Some(p) if p.kind == TokenKind::Punct && p.text == "." => CallStyle::Method,
                Some(p) if p.kind == TokenKind::Punct && p.text == ":" => {
                    // `Qual::name(` — the qualifier ident sits before the
                    // double colon.
                    match i
                        .checked_sub(3)
                        .and_then(|q| file.sig_token(q))
                        .filter(|q| q.kind == TokenKind::Ident)
                    {
                        Some(q) => CallStyle::Qualified(q.text.clone()),
                        None => CallStyle::Free,
                    }
                }
                Some(p) if p.kind == TokenKind::Punct && p.text == "!" => {
                    i += 1;
                    continue;
                }
                _ => CallStyle::Free,
            };
            // Attribute the call to the innermost fn only: outer bodies
            // contain inner fns' tokens.
            if !is_innermost(&fns, caller_idx, caller.file, i) {
                i += 1;
                continue;
            }
            let argc = count_args(file, i + 1, body.end);
            let name = t.text.as_str();
            let mut targets: Vec<usize> = Vec::new();
            let in_scope =
                |c: usize| allowed(caller.crate_name.as_str(), fns[c].crate_name.as_str());
            match &style {
                CallStyle::Free => {
                    if let Some(cands) = free_by_name.get(name) {
                        targets.extend(
                            cands
                                .iter()
                                .filter(|&&c| fns[c].params == argc && in_scope(c)),
                        );
                    }
                }
                CallStyle::Method => {
                    if let Some(cands) = methods_by_name.get(name) {
                        targets.extend(cands.iter().filter(|&&c| {
                            matches!(&fns[c].kind, FnKind::Method { has_self: true, .. })
                                && fns[c].params == argc + 1
                                && in_scope(c)
                        }));
                    }
                }
                CallStyle::Qualified(q) => {
                    let crate_q = q.strip_prefix("uniq_").unwrap_or(q);
                    if let Some(members) = owners.get(q.as_str()) {
                        // Type-qualified: that type's associated fns and
                        // methods (UFCS passes self positionally).
                        targets.extend(members.iter().filter(|&&c| {
                            fns[c].name == name && fns[c].params == argc && in_scope(c)
                        }));
                    } else if crate_names.contains_key(crate_q) || q == "crate" {
                        if let Some(cands) = free_by_name.get(name) {
                            targets.extend(cands.iter().filter(|&&c| {
                                fns[c].params == argc
                                    && (q == "crate" && fns[c].crate_name == caller.crate_name
                                        || fns[c].crate_name == crate_q)
                                    && in_scope(c)
                            }));
                        }
                    } else if is_module_qualifier(&fns, q) {
                        if let Some(cands) = free_by_name.get(name) {
                            targets.extend(cands.iter().filter(|&&c| {
                                fns[c].params == argc
                                    && fns[c].symbol.contains(&format!("::{q}::"))
                                    && in_scope(c)
                            }));
                        }
                    }
                    // Unknown qualifier (std, Vec, String, …): no edge.
                }
            }
            for callee in targets {
                if callee != caller_idx {
                    edges.push(Edge {
                        caller: caller_idx,
                        callee,
                        line: t.line,
                    });
                }
            }
            i += 1;
        }
    }
    edges.sort();
    edges.dedup();

    let mut out_edges = vec![Vec::new(); fns.len()];
    let mut in_edges = vec![Vec::new(); fns.len()];
    for (ei, e) in edges.iter().enumerate() {
        out_edges[e.caller].push(ei);
        in_edges[e.callee].push(ei);
    }
    CallGraph {
        fns,
        edges,
        out_edges,
        in_edges,
    }
}

/// Is `fn_idx` the innermost function whose body contains `sig_idx`?
fn is_innermost(fns: &[FnDef], fn_idx: usize, file: usize, sig_idx: usize) -> bool {
    let own = &fns[fn_idx].body;
    let own_len = own.end - own.start;
    !fns.iter().any(|other| {
        other.file == file
            && other.body.contains(&sig_idx)
            && (other.body.end - other.body.start) < own_len
    })
}

/// Counts the arguments of the call whose `(` sits at significant index
/// `open_idx`: top-level commas + 1 for a non-empty list. Commas inside
/// nested brackets or closure parameter pipes are not separators.
fn count_args(file: &SourceFile, open_idx: usize, limit: usize) -> usize {
    let mut depth = 1usize;
    let mut i = open_idx + 1;
    let mut commas = 0usize;
    let mut any = false;
    let mut pipes = 0u8; // inside |…| closure params when odd
    while depth > 0 && i < limit + 64 {
        let Some(t) = file.sig_token(i) else { break };
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "(" | "[" | "{") => {
                depth += 1;
                any = true;
            }
            (TokenKind::Punct, ")" | "]" | "}") => depth -= 1,
            (TokenKind::Punct, "|") if depth == 1 => {
                pipes ^= 1;
                any = true;
            }
            (TokenKind::Punct, ",") if depth == 1 && pipes == 0 => {
                let trailing = file
                    .sig_token(i + 1)
                    .is_some_and(|n| n.kind == TokenKind::Punct && n.text == ")");
                if !trailing {
                    commas += 1;
                }
            }
            _ => any = true,
        }
        i += 1;
    }
    if any || commas > 0 {
        commas + 1
    } else {
        0
    }
}

/// Does any function's symbol path contain `q` as a module segment?
fn is_module_qualifier(fns: &[FnDef], q: &str) -> bool {
    let needle = format!("::{q}::");
    fns.iter().any(|f| f.symbol.contains(&needle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::extract_fns;

    fn graph(sources: &[(&str, &str, &str)]) -> CallGraph {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(path, krate, text)| SourceFile::parse(path, krate, false, text))
            .collect();
        let mut fns = Vec::new();
        for (i, f) in files.iter().enumerate() {
            fns.extend(extract_fns(f, i));
        }
        build(&files, fns, None)
    }

    fn has_edge(g: &CallGraph, caller: &str, callee: &str) -> bool {
        g.edges
            .iter()
            .any(|e| g.fns[e.caller].name == caller && g.fns[e.callee].name == callee)
    }

    #[test]
    fn free_calls_resolve_cross_crate_by_name_and_arity() {
        let g = graph(&[
            (
                "crates/core/src/a.rs",
                "core",
                "pub fn entry(x: f64) -> f64 { helper(x) }",
            ),
            (
                "crates/obs/src/b.rs",
                "obs",
                "pub fn helper(x: f64) -> f64 { x }\npub fn helper(x: f64, y: f64) -> f64 { x + y }",
            ),
        ]);
        let callees: Vec<_> = g
            .edges
            .iter()
            .filter(|e| g.fns[e.caller].name == "entry")
            .map(|e| g.fns[e.callee].params)
            .collect();
        assert_eq!(callees, vec![1], "only the arity-1 helper matches");
    }

    #[test]
    fn method_calls_resolve_to_all_impls() {
        let g = graph(&[
            (
                "crates/core/src/a.rs",
                "core",
                "pub fn go(s: &S) { s.handle(1); }",
            ),
            (
                "crates/obs/src/b.rs",
                "obs",
                "impl A { pub fn handle(&self, x: u8) {} }\nimpl B { pub fn handle(&self, x: u8) {} }\nimpl C { pub fn handle(&self) {} }",
            ),
        ]);
        let n = g
            .edges
            .iter()
            .filter(|e| g.fns[e.caller].name == "go")
            .count();
        assert_eq!(n, 2, "both arity-matching impls are candidates");
    }

    #[test]
    fn unknown_qualifiers_produce_no_edges() {
        let g = graph(&[
            (
                "crates/core/src/a.rs",
                "core",
                "pub fn go() { let v = Vec::new(); }",
            ),
            (
                "crates/obs/src/b.rs",
                "obs",
                "impl Thing { pub fn new() -> Thing { Thing } }",
            ),
        ]);
        assert!(!has_edge(&g, "go", "new"), "Vec is not a first-party type");
    }

    #[test]
    fn type_qualified_calls_narrow_to_the_owner() {
        let g = graph(&[
            (
                "crates/core/src/a.rs",
                "core",
                "pub fn go() { let t = Thing::new(); }",
            ),
            (
                "crates/obs/src/b.rs",
                "obs",
                "impl Thing { pub fn new() -> Thing { Thing } }\nimpl Other { pub fn new() -> Other { Other } }",
            ),
        ]);
        let callees: Vec<_> = g
            .edges
            .iter()
            .filter(|e| g.fns[e.caller].name == "go")
            .map(|e| g.fns[e.callee].symbol.clone())
            .collect();
        assert_eq!(callees, vec!["obs::b::Thing::new".to_string()]);
    }

    #[test]
    fn crate_qualified_calls_narrow_to_the_crate() {
        let g = graph(&[
            (
                "crates/core/src/a.rs",
                "core",
                "pub fn go() { uniq_obs::flush(); }",
            ),
            ("crates/obs/src/b.rs", "obs", "pub fn flush() {}"),
            ("crates/par/src/c.rs", "par", "pub fn flush() {}"),
        ]);
        let callees: Vec<_> = g
            .edges
            .iter()
            .filter(|e| g.fns[e.caller].name == "go")
            .map(|e| g.fns[e.callee].crate_name.clone())
            .collect();
        assert_eq!(callees, vec!["obs".to_string()]);
    }

    #[test]
    fn closure_calls_attribute_to_the_enclosing_fn() {
        let g = graph(&[
            (
                "crates/core/src/a.rs",
                "core",
                "pub fn submit(xs: &[f64]) { run(xs, |x| crunch(x)); }\nfn crunch(x: &f64) -> f64 { *x }\nfn run(xs: &[f64], f: impl Fn(&f64) -> f64) {}",
            ),
        ]);
        assert!(has_edge(&g, "submit", "crunch"));
        assert!(!has_edge(&g, "crunch", "crunch"));
    }

    #[test]
    fn macro_invocations_are_not_calls() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "core",
            "pub fn go() { helper!(); }\nfn helper() {}",
        )]);
        assert!(!has_edge(&g, "go", "helper"));
    }

    #[test]
    fn test_region_calls_are_skipped() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "core",
            "fn helper() {}\n#[cfg(test)]\nmod tests {\n    fn t() { super::helper(); }\n}\n",
        )]);
        assert!(g.edges.is_empty());
    }
}
