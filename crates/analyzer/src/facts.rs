//! Per-function local facts: the leaf observations the dataflow rules
//! propagate through the call graph.
//!
//! Facts are extracted once per file from the significant-token stream
//! and attributed to the innermost enclosing function. Test regions
//! contribute nothing. Each fact class records the source line and a
//! short human-readable description that ends up verbatim in traces.

use crate::callgraph::{CallGraph, POOL_ENTRY_POINTS};
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// The observability plane (`obs`, its sink consumers
/// `profile`/`telemetry`, and the allocation profiler `memprof`),
/// audited by design and one-directional —
/// events flow in, reports flow out-of-band — so two interprocedural
/// rules treat it specially: its clock/env/hash-order reads do not seed
/// determinism taint (its nondeterminism cannot steer result values),
/// and its functions are exempt from the hot-path allocation budget
/// (formatting an event is the accepted cost of having a sink
/// installed, paid per *event*, not per sample). The line-local rules
/// still bar result crates from touching these APIs directly, and the
/// observability crates carry their own bit-identity tests.
pub const OBSERVABILITY_CRATES: &[&str] = &["obs", "profile", "telemetry", "memprof"];

/// Crates whose mutexes participate in the lock-order analysis. The
/// pool's own synchronization (`par`) is the audited domain of the one
/// unsafe crate and is excluded.
pub const LOCK_SCOPE_CRATES: &[&str] = &["store", "telemetry", "obs", "serve"];

/// One located fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fact {
    /// 1-based line.
    pub line: u32,
    /// What was observed (e.g. "wall-clock read (`Instant::now`)").
    pub what: String,
    /// Only reportable under `--strict` (slice-indexing panics).
    pub strict_only: bool,
}

/// One `.lock()` acquisition site.
#[derive(Debug, Clone)]
pub struct LockFact {
    /// 1-based line of the acquisition.
    pub line: u32,
    /// Lock identity: `crate.receiver` (e.g. `store.inner`).
    pub id: String,
    /// Significant-token index of the `lock` identifier.
    pub sig_idx: usize,
    /// `Some(end)` when the guard is bound with `let` and plausibly held
    /// to that significant-token index (end of the enclosing body or an
    /// explicit `drop(guard)`); `None` for a statement-scoped temporary.
    pub held_until: Option<usize>,
    /// End of the statement the acquisition sits in (for temporaries).
    pub stmt_end: usize,
}

/// All facts for one function.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    /// Determinism-taint sources.
    pub taint: Vec<Fact>,
    /// Panic sites (unwrap/expect/panicking macros; indexing is
    /// `strict_only`).
    pub panics: Vec<Fact>,
    /// Per-call allocation sites (`Vec::new`/`push`/`to_vec`/`format!`).
    pub allocs: Vec<Fact>,
    /// Mutex acquisitions (lock-order scope crates only).
    pub locks: Vec<LockFact>,
    /// Pool-boundary call sites (`par_map`/`scope`…): (line, sig index).
    pub pool_calls: Vec<(u32, usize)>,
    /// Hot-path span seed sites: (line, span constant name).
    pub hot_spans: Vec<(u32, String)>,
}

/// Extracts facts for every function in the graph. Returned map is
/// keyed by function index; functions without facts are absent.
pub fn extract(
    files: &[SourceFile],
    graph: &CallGraph,
    hot_spans: &[String],
) -> BTreeMap<usize, FnFacts> {
    let mut out: BTreeMap<usize, FnFacts> = BTreeMap::new();
    for (file_idx, file) in files.iter().enumerate() {
        scan_file(file, file_idx, graph, hot_spans, &mut out);
    }
    out
}

fn scan_file(
    file: &SourceFile,
    file_idx: usize,
    graph: &CallGraph,
    hot_spans: &[String],
    out: &mut BTreeMap<usize, FnFacts>,
) {
    let lock_scope = LOCK_SCOPE_CRATES.contains(&file.crate_name.as_str());
    let n = file.sig.len();
    for i in 0..n {
        let Some(t) = file.sig_token(i) else { continue };
        if file.in_test_code(t.line) {
            continue;
        }
        let Some(fn_idx) = graph.enclosing_fn(file_idx, i) else {
            continue;
        };
        let push = |out: &mut BTreeMap<usize, FnFacts>, f: &dyn Fn(&mut FnFacts)| {
            f(out.entry(fn_idx).or_default());
        };
        match (t.kind, t.text.as_str()) {
            // ---- determinism-taint sources ----
            (TokenKind::Ident, "Instant" | "SystemTime")
                if file.sig_matches(
                    i + 1,
                    &[
                        (TokenKind::Punct, Some(":")),
                        (TokenKind::Punct, Some(":")),
                        (TokenKind::Ident, Some("now")),
                    ],
                ) =>
            {
                let what = format!("wall-clock read (`{}::now`)", t.text);
                push(out, &|f| {
                    f.taint.push(Fact {
                        line: t.line,
                        what: what.clone(),
                        strict_only: false,
                    })
                });
            }
            (TokenKind::Ident, "env")
                if file.sig_matches(
                    i + 1,
                    &[(TokenKind::Punct, Some(":")), (TokenKind::Punct, Some(":"))],
                ) && file
                    .sig_token(i + 3)
                    .is_some_and(|v| v.kind == TokenKind::Ident) =>
            {
                let var = file
                    .sig_token(i + 3)
                    .map(|v| v.text.clone())
                    .unwrap_or_default();
                let what = format!("environment read (`env::{var}`)");
                push(out, &|f| {
                    f.taint.push(Fact {
                        line: t.line,
                        what: what.clone(),
                        strict_only: false,
                    })
                });
            }
            (TokenKind::Ident, "available_parallelism") => {
                push(out, &|f| {
                    f.taint.push(Fact {
                        line: t.line,
                        what: "machine-state read (`available_parallelism`)".into(),
                        strict_only: false,
                    })
                });
            }
            (TokenKind::Ident, "RandomState" | "HashMap" | "HashSet") => {
                let what = format!("hash-order nondeterminism (`{}`)", t.text);
                push(out, &|f| {
                    f.taint.push(Fact {
                        line: t.line,
                        what: what.clone(),
                        strict_only: false,
                    })
                });
            }
            (TokenKind::Ident, "thread")
                if file.sig_matches(
                    i + 1,
                    &[
                        (TokenKind::Punct, Some(":")),
                        (TokenKind::Punct, Some(":")),
                        (TokenKind::Ident, Some("current")),
                    ],
                ) =>
            {
                push(out, &|f| {
                    f.taint.push(Fact {
                        line: t.line,
                        what: "thread-identity read (`thread::current`)".into(),
                        strict_only: false,
                    })
                });
            }
            (TokenKind::Ident, "as")
                if file
                    .sig_token(i + 1)
                    .is_some_and(|n| n.kind == TokenKind::Ident && n.text == "usize")
                    && looks_like_pointer_cast(file, i) =>
            {
                push(out, &|f| {
                    f.taint.push(Fact {
                        line: t.line,
                        what: "pointer-as-value cast (`as usize` on a pointer)".into(),
                        strict_only: false,
                    })
                });
            }
            // ---- panic sites ----
            (TokenKind::Ident, "unwrap" | "expect")
                if is_method_call(file, i) && !is_lock_poison_chain(file, i) =>
            {
                let what = format!("`.{}()` panic site", t.text);
                push(out, &|f| {
                    f.panics.push(Fact {
                        line: t.line,
                        what: what.clone(),
                        strict_only: false,
                    })
                });
            }
            (TokenKind::Ident, "panic" | "unreachable" | "todo" | "unimplemented")
                if file
                    .sig_token(i + 1)
                    .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "!") =>
            {
                let what = format!("`{}!` panic site", t.text);
                push(out, &|f| {
                    f.panics.push(Fact {
                        line: t.line,
                        what: what.clone(),
                        strict_only: false,
                    })
                });
            }
            (TokenKind::Punct, "[") if is_index_expr(file, i) => {
                push(out, &|f| {
                    f.panics.push(Fact {
                        line: t.line,
                        what: "slice-indexing panic site".into(),
                        strict_only: true,
                    })
                });
            }
            // ---- per-call allocation sites ----
            (TokenKind::Ident, "Vec")
                if file.sig_matches(
                    i + 1,
                    &[
                        (TokenKind::Punct, Some(":")),
                        (TokenKind::Punct, Some(":")),
                        (TokenKind::Ident, Some("new")),
                    ],
                ) =>
            {
                push(out, &|f| {
                    f.allocs.push(Fact {
                        line: t.line,
                        what: "`Vec::new`".into(),
                        strict_only: false,
                    })
                });
            }
            (TokenKind::Ident, "push" | "to_vec") if is_method_call(file, i) => {
                let what = format!("`.{}(…)`", t.text);
                push(out, &|f| {
                    f.allocs.push(Fact {
                        line: t.line,
                        what: what.clone(),
                        strict_only: false,
                    })
                });
            }
            (TokenKind::Ident, "format")
                if file
                    .sig_token(i + 1)
                    .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "!") =>
            {
                push(out, &|f| {
                    f.allocs.push(Fact {
                        line: t.line,
                        what: "`format!`".into(),
                        strict_only: false,
                    })
                });
            }
            // ---- lock and pool-boundary sites ----
            (TokenKind::Ident, "lock")
                if lock_scope
                    && is_method_call(file, i)
                    && file
                        .sig_token(i + 2)
                        .is_some_and(|n| n.kind == TokenKind::Punct && n.text == ")") =>
            {
                let receiver = lock_receiver(file, i).unwrap_or_else(|| "<unknown>".into());
                let id = format!("{}.{}", file.crate_name, receiver);
                let held_until = bound_guard_extent(file, i, graph, file_idx);
                let stmt_end = statement_end(file, i);
                push(out, &|f| {
                    f.locks.push(LockFact {
                        line: t.line,
                        id: id.clone(),
                        sig_idx: i,
                        held_until,
                        stmt_end,
                    })
                });
            }
            (TokenKind::Ident, name)
                if POOL_ENTRY_POINTS.contains(&name)
                    && file
                        .sig_token(i + 1)
                        .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "(") =>
            {
                push(out, &|f| f.pool_calls.push((t.line, i)));
            }
            // ---- hot-path span seeds ----
            (TokenKind::Ident, "span")
                if file
                    .sig_token(i + 1)
                    .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "(") =>
            {
                // Scan the argument tokens for a hot-path span constant.
                let mut depth = 1usize;
                let mut j = i + 2;
                let mut hit: Option<String> = None;
                while depth > 0 {
                    let Some(tok) = file.sig_token(j) else { break };
                    match (tok.kind, tok.text.as_str()) {
                        (TokenKind::Punct, "(") => depth += 1,
                        (TokenKind::Punct, ")") => depth -= 1,
                        (TokenKind::Ident, name) if hot_spans.iter().any(|h| h == name) => {
                            hit = Some(name.to_string());
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(name) = hit {
                    push(out, &|f| f.hot_spans.push((t.line, name.clone())));
                }
            }
            _ => {}
        }
    }
}

/// `ident` at `i` is in method-call position: `.ident(`.
fn is_method_call(file: &SourceFile, i: usize) -> bool {
    i > 0
        && file
            .sig_token(i - 1)
            .is_some_and(|p| p.kind == TokenKind::Punct && p.text == ".")
        && file
            .sig_token(i + 1)
            .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "(")
}

/// `.unwrap()`/`.expect(…)` directly chained on a `lock()` result, or an
/// `expect` whose message names poisoning. Lock poisoning only occurs
/// after another thread has already panicked — these sites amplify an
/// existing panic rather than originate one, so panic-reachability
/// exempts them (the originating site is the finding).
fn is_lock_poison_chain(file: &SourceFile, i: usize) -> bool {
    let chained_on_lock = i >= 4
        && file.sig_matches(
            i - 4,
            &[
                (TokenKind::Ident, Some("lock")),
                (TokenKind::Punct, Some("(")),
                (TokenKind::Punct, Some(")")),
                (TokenKind::Punct, Some(".")),
            ],
        );
    let poison_message = file
        .sig_token(i + 2)
        .is_some_and(|a| a.kind == TokenKind::Str && a.text.contains("poison"));
    chained_on_lock || poison_message
}

/// The slice-index heuristic shared with the line-local rule: `[` that
/// directly follows a value (identifier, `)`, or `]`), excluding macro
/// brackets.
fn is_index_expr(file: &SourceFile, i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let is_index = file.sig_token(i - 1).is_some_and(|p| {
        p.kind == TokenKind::Ident
            || (p.kind == TokenKind::Punct && (p.text == ")" || p.text == "]"))
    });
    let after_bang = i >= 2
        && file
            .sig_token(i - 1)
            .is_some_and(|p| p.kind == TokenKind::Punct && p.text == "!");
    is_index && !after_bang
}

/// `as usize` applied to something pointer-shaped: an `as_ptr()` call or
/// a `ptr`-named value within the preceding few tokens.
fn looks_like_pointer_cast(file: &SourceFile, as_idx: usize) -> bool {
    let start = as_idx.saturating_sub(6);
    (start..as_idx).any(|j| {
        file.sig_token(j).is_some_and(|t| {
            t.kind == TokenKind::Ident
                && (t.text == "as_ptr" || t.text == "ptr" || t.text.ends_with("_ptr"))
        })
    })
}

/// The receiver identity of `.lock()` at significant index `lock_idx`:
/// the nearest identifier before the `.`, skipping one matched call
/// group (`self.shard().lock()` → `shard`).
fn lock_receiver(file: &SourceFile, lock_idx: usize) -> Option<String> {
    let mut j = lock_idx.checked_sub(2)?; // skip the `.`
    let t = file.sig_token(j)?;
    if t.kind == TokenKind::Punct && t.text == ")" {
        // Walk back over the matched paren group.
        let mut depth = 1usize;
        while depth > 0 {
            j = j.checked_sub(1)?;
            let t = file.sig_token(j)?;
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    ")" => depth += 1,
                    "(" => depth -= 1,
                    _ => {}
                }
            }
        }
        j = j.checked_sub(1)?;
    }
    let t = file.sig_token(j)?;
    (t.kind == TokenKind::Ident).then(|| t.text.clone())
}

/// If the lock chain is bound with `let`, the extent the guard is
/// plausibly held for: up to an explicit `drop(<name>)` or the end of
/// the enclosing function body. `None` for statement-scoped temporaries.
fn bound_guard_extent(
    file: &SourceFile,
    lock_idx: usize,
    graph: &CallGraph,
    file_idx: usize,
) -> Option<usize> {
    // Walk back to the statement head looking for `let [mut] name =`.
    let mut j = lock_idx;
    let mut name: Option<String> = None;
    let mut hops = 0;
    while j > 0 && hops < 16 {
        j -= 1;
        hops += 1;
        let t = file.sig_token(j)?;
        if t.kind == TokenKind::Punct && (t.text == ";" || t.text == "{" || t.text == "}") {
            break;
        }
        if t.kind == TokenKind::Ident && t.text == "let" {
            let mut k = j + 1;
            if file
                .sig_token(k)
                .is_some_and(|m| m.kind == TokenKind::Ident && m.text == "mut")
            {
                k += 1;
            }
            let n = file.sig_token(k)?;
            let eq = file
                .sig_token(k + 1)
                .is_some_and(|e| e.kind == TokenKind::Punct && e.text == "=");
            if n.kind == TokenKind::Ident && eq {
                name = Some(n.text.clone());
            }
            break;
        }
    }
    let name = name?;
    let body_end = graph
        .enclosing_fn(file_idx, lock_idx)
        .map(|f| graph.fns[f].body.end)?;
    // An explicit `drop(name)` releases early.
    let mut k = lock_idx;
    while k < body_end {
        let Some(t) = file.sig_token(k) else { break };
        if t.kind == TokenKind::Ident
            && t.text == "drop"
            && file
                .sig_token(k + 1)
                .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "(")
            && file
                .sig_token(k + 2)
                .is_some_and(|n| n.kind == TokenKind::Ident && n.text == name)
        {
            return Some(k);
        }
        k += 1;
    }
    Some(body_end)
}

/// The significant-token index just past the statement containing
/// `idx` (the next `;` at the current nesting level).
fn statement_end(file: &SourceFile, idx: usize) -> usize {
    let mut depth = 0i32;
    let mut j = idx;
    while let Some(t) = file.sig_token(j) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return j;
                    }
                }
                ";" if depth == 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::symbols::extract_fns;

    fn facts_for(crate_name: &str, src: &str) -> BTreeMap<usize, FnFacts> {
        let file = SourceFile::parse("crates/x/src/a.rs", crate_name, false, src);
        let fns = extract_fns(&file, 0);
        let files = vec![file];
        let graph = callgraph::build(&files, fns, None);
        extract(&files, &graph, &["SPAN_FUSION".to_string()])
    }

    #[test]
    fn clock_env_and_hash_sources() {
        let f = facts_for(
            "cli",
            "fn f() {\n    let t = Instant::now();\n    let v = env::var(\"X\");\n    let m: HashMap<u8, u8> = Default::default();\n}\n",
        );
        let taint = &f[&0].taint;
        assert_eq!(taint.len(), 3, "{taint:#?}");
        assert!(taint[0].what.contains("Instant::now"));
        assert!(taint[1].what.contains("env::var"));
        assert!(taint[2].what.contains("HashMap"));
    }

    #[test]
    fn lock_poison_chains_are_not_panic_sites() {
        let f = facts_for(
            "par",
            "fn f(m: &Mutex<u8>, o: Option<u8>) {\n    let a = m.lock().unwrap();\n    let b = m.lock().expect(\"state poisoned\");\n    let c = o.unwrap();\n}\n",
        );
        let panics = &f[&0].panics;
        assert_eq!(panics.len(), 1, "{panics:#?}");
        assert_eq!(panics[0].line, 4);
    }

    #[test]
    fn alloc_sites() {
        let f = facts_for(
            "core",
            "fn f(xs: &[f64]) -> Vec<f64> {\n    let mut v = Vec::new();\n    v.push(1.0);\n    let w = xs.to_vec();\n    let s = format!(\"{}\", 1);\n    v\n}\n",
        );
        let allocs = &f[&0].allocs;
        assert_eq!(allocs.len(), 4, "{allocs:#?}");
    }

    #[test]
    fn lock_receiver_identity() {
        let f = facts_for(
            "store",
            "impl S {\n    fn a(&self) { let g = self.inner.lock().unwrap(); }\n    fn b(&self) { self.shard().lock().expect(\"poisoned\"); }\n}\n",
        );
        let ids: Vec<&str> = f
            .values()
            .flat_map(|ff| ff.locks.iter().map(|l| l.id.as_str()))
            .collect();
        assert!(ids.contains(&"store.inner"), "{ids:?}");
        assert!(ids.contains(&"store.shard"), "{ids:?}");
    }

    #[test]
    fn bound_guard_held_to_fn_end_temporary_is_not() {
        let f = facts_for(
            "store",
            "impl S {\n    fn a(&self) {\n        let g = self.inner.lock().unwrap();\n        use_it(&g);\n    }\n    fn b(&self) { self.inner.lock().unwrap().len(); }\n}\n",
        );
        let locks: Vec<&LockFact> = f.values().flat_map(|ff| ff.locks.iter()).collect();
        assert_eq!(locks.len(), 2);
        assert!(locks[0].held_until.is_some());
        assert!(locks[1].held_until.is_none());
    }

    #[test]
    fn hot_span_seeds_by_constant_name() {
        let f = facts_for(
            "core",
            "fn fuse() {\n    let _span = uniq_obs::span(uniq_obs::names::SPAN_FUSION);\n}\nfn other() {\n    let _span = uniq_obs::span(uniq_obs::names::SPAN_BATCH);\n}\n",
        );
        assert_eq!(f[&0].hot_spans.len(), 1);
        assert_eq!(f[&0].hot_spans[0].1, "SPAN_FUSION");
        assert!(f.get(&1).map(|x| x.hot_spans.is_empty()).unwrap_or(true));
    }

    #[test]
    fn pointer_as_value_cast() {
        let f = facts_for(
            "par",
            "fn f(xs: &[u8]) -> usize {\n    xs.as_ptr() as usize\n}\nfn g(n: u32) -> usize { n as usize }\n",
        );
        assert_eq!(f[&0].taint.len(), 1);
        assert!(f[&0].taint[0].what.contains("pointer-as-value"));
        assert!(f.get(&1).map(|x| x.taint.is_empty()).unwrap_or(true));
    }
}
