//! A hand-rolled Rust tokenizer.
//!
//! The analyzer needs just enough lexical structure to pattern-match
//! token sequences reliably: identifiers, literals, punctuation, and —
//! crucially — comments kept as first-class tokens, because suppressions
//! (`// uniq-analyzer: allow(...)`) and `// SAFETY:` audits live in
//! them. String and comment contents must never leak into the
//! significant-token stream (a doc example mentioning `unwrap()` is not
//! a finding), which is exactly the property ad-hoc `grep`-style checks
//! get wrong.
//!
//! The grammar subset is deliberately loose where looseness is safe
//! (numeric literal shapes, multi-char operators arriving as single
//! punctuation tokens) and exact where the rules depend on it (nested
//! block comments, raw strings, lifetime-vs-char-literal
//! disambiguation).

/// The lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, ...).
    Ident,
    /// Lifetime such as `'env` (the tick is included in the text).
    Lifetime,
    /// Numeric literal (integers and floats, suffixes included).
    Number,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A `// …` comment, doc comments included. Text keeps the slashes.
    LineComment,
    /// A `/* … */` comment (possibly nested). Text keeps the delimiters.
    BlockComment,
    /// A single punctuation character (`.`, `!`, `[`, `::` arrives as
    /// two `:` tokens).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Raw source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// `true` for comment trivia (not part of the significant stream).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenizes `src`. Never fails: unterminated constructs are closed at
/// end of input, so the analyzer degrades gracefully on mid-edit files.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                'r' | 'b' if self.raw_or_byte_string_starts() => self.raw_or_byte_string(line),
                '"' => self.string(line),
                '\'' => self.tick(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphanumeric() => self.ident(line),
                _ => {
                    let c = self.bump().unwrap_or(' ');
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::BlockComment, text, line);
    }

    /// Is the current `r`/`b` the head of a raw/byte string (`r"`, `r#`,
    /// `b"`, `br"`, `br#`, `b'`) rather than a plain identifier?
    fn raw_or_byte_string_starts(&self) -> bool {
        match self.peek(0) {
            Some('r') => matches!(self.peek(1), Some('"') | Some('#')),
            Some('b') => match self.peek(1) {
                Some('"') | Some('\'') => true,
                Some('r') => matches!(self.peek(2), Some('"') | Some('#')),
                _ => false,
            },
            _ => false,
        }
    }

    fn raw_or_byte_string(&mut self, line: u32) {
        let mut text = String::new();
        // Consume the prefix letters (r, b, br).
        while matches!(self.peek(0), Some('r') | Some('b')) {
            text.push(self.bump().unwrap_or('r'));
        }
        if self.peek(0) == Some('\'') {
            // Byte char literal b'…'.
            text.push(self.bump().unwrap_or('\''));
            self.char_body(&mut text);
            self.push(TokenKind::Char, text, line);
            return;
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push(self.bump().unwrap_or('#'));
        }
        if self.peek(0) == Some('"') {
            text.push(self.bump().unwrap_or('"'));
        }
        let raw = hashes > 0 || text.contains('r');
        loop {
            match self.peek(0) {
                None => break,
                Some('\\') if !raw => {
                    text.push(self.bump().unwrap_or('\\'));
                    if let Some(c) = self.bump() {
                        text.push(c);
                    }
                }
                Some('"') => {
                    text.push(self.bump().unwrap_or('"'));
                    let mut closing = 0usize;
                    while closing < hashes && self.peek(0) == Some('#') {
                        closing += 1;
                        text.push(self.bump().unwrap_or('#'));
                    }
                    if closing == hashes {
                        break;
                    }
                }
                Some(c) => {
                    text.push(c);
                    self.bump();
                }
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    fn string(&mut self, line: u32) {
        let mut text = String::new();
        text.push(self.bump().unwrap_or('"'));
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(self.bump().unwrap_or('\\'));
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '"' {
                text.push(self.bump().unwrap_or('"'));
                break;
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    /// A tick starts either a lifetime (`'env`) or a char literal
    /// (`'x'`, `'\n'`). Lifetime iff the next char starts an identifier
    /// and the char after it is not a closing tick.
    fn tick(&mut self, line: u32) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime =
            matches!(next, Some(c) if c == '_' || c.is_alphabetic()) && after != Some('\'');
        if is_lifetime {
            let mut text = String::new();
            text.push(self.bump().unwrap_or('\''));
            while matches!(self.peek(0), Some(c) if c == '_' || c.is_alphanumeric()) {
                text.push(self.bump().unwrap_or('_'));
            }
            self.push(TokenKind::Lifetime, text, line);
        } else {
            let mut text = String::new();
            text.push(self.bump().unwrap_or('\''));
            self.char_body(&mut text);
            self.push(TokenKind::Char, text, line);
        }
    }

    /// Consumes the body of a char literal up to and including the
    /// closing tick (the opening tick is already in `text`).
    fn char_body(&mut self, text: &mut String) {
        if self.peek(0) == Some('\\') {
            text.push(self.bump().unwrap_or('\\'));
            if let Some(e) = self.bump() {
                text.push(e);
            }
            // Multi-char escapes (\u{…}, \x41) run until the tick.
            while let Some(c) = self.peek(0) {
                if c == '\'' {
                    break;
                }
                text.push(c);
                self.bump();
            }
        } else if let Some(c) = self.bump() {
            text.push(c);
        }
        if self.peek(0) == Some('\'') {
            text.push(self.bump().unwrap_or('\''));
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
                // Scientific notation: consume a sign directly after e/E,
                // but only in a decimal (non-0x) literal.
                if (c == 'e' || c == 'E')
                    && !text.starts_with("0x")
                    && matches!(self.peek(0), Some('+') | Some('-'))
                    && matches!(self.peek(1), Some(d) if d.is_ascii_digit())
                {
                    text.push(self.bump().unwrap_or('+'));
                }
            } else if c == '.'
                && self.peek(1) != Some('.')
                && matches!(self.peek(1), Some(d) if d.is_ascii_digit())
            {
                // A fractional part, but never the start of a `..` range.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_keywords_puncts() {
        let toks = kinds("fn main() { x.unwrap(); }");
        assert!(toks.contains(&(TokenKind::Ident, "unwrap".into())));
        assert!(toks.contains(&(TokenKind::Punct, ".".into())));
    }

    #[test]
    fn comments_are_tokens_not_code() {
        let toks = lex("// a.unwrap() in prose\nlet x = 1;");
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert_eq!(toks[0].line, 1);
        assert!(toks[1..]
            .iter()
            .all(|t| t.kind != TokenKind::Ident || t.text != "unwrap"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ still */ ident");
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert_eq!(toks[1].text, "ident");
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "HashMap.unwrap()";"#);
        assert!(!toks.contains(&(TokenKind::Ident, "HashMap".into())));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("HashMap")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex(r##"let s = r#"quote " inside"#; next"##);
        assert!(toks.iter().any(|t| t.kind == TokenKind::Str));
        assert_eq!(toks.last().map(|t| t.text.clone()), Some("next".into()));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("fn f<'a>(c: char) { let x = 'x'; let n = '\\n'; }");
        assert!(toks.contains(&(TokenKind::Lifetime, "'a".into())));
        assert!(toks.contains(&(TokenKind::Char, "'x'".into())));
        assert!(toks.contains(&(TokenKind::Char, "'\\n'".into())));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = kinds("for i in 0..10 { let y = 1.5e-3; }");
        assert!(toks.contains(&(TokenKind::Number, "0".into())));
        assert!(toks.contains(&(TokenKind::Number, "10".into())));
        assert!(toks.contains(&(TokenKind::Number, "1.5e-3".into())));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = lex(r#"b"bytes" br"raw bytes" b'x'"#);
        assert_eq!(toks[0].kind, TokenKind::Str);
        assert_eq!(toks[1].kind, TokenKind::Str);
        assert_eq!(toks[2].kind, TokenKind::Char);
    }
}
