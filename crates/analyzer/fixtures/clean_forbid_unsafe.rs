//! Fixture: a crate root that declares the forbid attribute.

#![forbid(unsafe_code)]

pub fn area(r: f64) -> f64 {
    std::f64::consts::PI * r * r
}
