//! Fixture: ordered containers only — nothing to report.
use std::collections::BTreeMap;

pub fn histogram(samples: &[u32]) -> BTreeMap<u32, usize> {
    let mut counts = BTreeMap::new();
    for &s in samples {
        *counts.entry(s).or_insert(0) += 1;
    }
    counts
}
