//! Fixture: inline metric/counter names outside `uniq-obs` (analyzed as
//! `render`).

pub fn emit(v: f64) {
    uniq_obs::metric("render.latency_ms", v, "ms");
    uniq_obs::counter("render.frames", 1);
}
