//! Fixture: malformed suppressions (analyzed as `imu`).

pub fn f(v: &[f64]) -> f64 {
    // uniq-analyzer: allow(panic-safety)
    let a = v.first().unwrap();
    // uniq-analyzer: allow(no-such-rule) — justifying a rule that does not exist
    let b = v.last().unwrap();
    a + b
}
