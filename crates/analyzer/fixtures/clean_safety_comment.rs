//! Fixture: the same unsafe block, properly audited.

pub fn reinterpret(x: &u64) -> &i64 {
    // SAFETY: u64 and i64 have identical size and alignment, and the
    // reference's lifetime is inherited from the input borrow.
    unsafe { &*(x as *const u64 as *const i64) }
}
