//! Fixture: fallible paths return `Result`; the one residual `expect`
//! carries a suppression with a justification.

pub fn first_tap(taps: &[f64]) -> Result<f64, &'static str> {
    taps.first().copied().ok_or("no taps detected")
}

pub fn checked_max(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "caller guarantees non-empty");
    let mut best = f64::NEG_INFINITY;
    for &v in values {
        best = if v.total_cmp(&best).is_gt() { v } else { best };
    }
    // uniq-analyzer: allow(panic-safety) — the assert above guarantees at least one element
    let _ = values.last().expect("non-empty");
    best
}
