//! Fixture: span guards dropped on the spot (analyzed as `core`).

pub fn run() {
    let _ = uniq_obs::span("fusion");
    compute();
    uniq_obs::span("render");
}

fn compute() {}
