//! Fixture: an `unsafe` block with no SAFETY audit comment (analyzed as
//! `par`, the one crate allowed to contain unsafe at all).

pub fn reinterpret(x: &u64) -> &i64 {
    unsafe { &*(x as *const u64 as *const i64) }
}
