//! Fixture: ambient environment reads in a result crate (analyzed as
//! `optim`).

pub fn thread_count() -> usize {
    std::env::var("UNIQ_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
