//! Fixture: wall-clock reads in a result crate (analyzed as `core`).
use std::time::{Instant, SystemTime};

pub fn jittered_seed() -> u64 {
    let t = SystemTime::now();
    let _start = Instant::now();
    t.duration_since(std::time::UNIX_EPOCH).map_or(0, |d| d.as_nanos() as u64)
}
