//! Fixture: span guard bound to a named local — covers its scope.

pub fn run() {
    let _span = uniq_obs::span("fusion");
    compute();
}

fn compute() {}
