//! Fixture: pool closures that carry their observability context.

fn batch(pool: &uniq_par::ThreadPool, seeds: &[u64]) -> Vec<u64> {
    let ctx = uniq_obs::capture();
    pool.par_map_chunked(seeds, 1, |&seed| {
        ctx.run_indexed(seed, || {
            let _span = uniq_obs::span(uniq_obs::names::SPAN_SESSION);
            uniq_obs::counter(uniq_obs::names::SESSION_STOPS, 1);
            seed
        })
    })
}

fn sweep(pool: &uniq_par::ThreadPool, items: &[f64]) -> Vec<f64> {
    let ctx = uniq_obs::capture();
    pool.par_map(items, |&v| {
        ctx.run(|| {
            uniq_obs::metric(uniq_obs::names::FUSION_OBJECTIVE, v, "deg2");
            v * 2.0
        })
    })
}

fn no_emission(pool: &uniq_par::ThreadPool, items: &[f64]) -> Vec<f64> {
    // Closures that never emit need no context.
    pool.par_map(items, |&v| v.sqrt())
}
