//! Fixture: panicking calls in result-crate library code (analyzed as
//! `acoustics`).

pub fn first_tap(taps: &[f64]) -> f64 {
    let first = taps.first().unwrap();
    if !first.is_finite() {
        panic!("non-finite tap");
    }
    *first
}

pub fn lookup(bank: &[Vec<f64>], i: usize) -> &Vec<f64> {
    bank.get(i).expect("index in range")
}

pub fn todo_path() -> f64 {
    unimplemented!()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = [1.0f64];
        assert_eq!(*v.first().unwrap(), 1.0);
    }
}
