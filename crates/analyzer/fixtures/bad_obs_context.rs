//! Fixture: emission inside pool closures without a captured context.

fn batch(pool: &uniq_par::ThreadPool, seeds: &[u64]) -> Vec<u64> {
    pool.par_map_chunked(seeds, 1, |&seed| {
        let _span = uniq_obs::span(uniq_obs::names::SPAN_SESSION);
        uniq_obs::counter(uniq_obs::names::SESSION_STOPS, 1);
        seed
    })
}

fn sweep(pool: &uniq_par::ThreadPool, items: &[f64]) -> Vec<f64> {
    pool.par_map(items, |&v| {
        uniq_obs::metric(uniq_obs::names::FUSION_OBJECTIVE, v, "deg2");
        v * 2.0
    })
}

fn contexted_then_not(pool: &uniq_par::ThreadPool, items: &[f64]) -> Vec<f64> {
    // A `run` later in the same call does not cover the earlier emission.
    pool.try_par_map(items, |&v| {
        uniq_obs::counter(uniq_obs::names::SESSION_STOPS, 1);
        let ctx = uniq_obs::capture();
        Ok::<f64, ()>(ctx.run(|| v))
    })
    .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        // Test code is exempt from the rule.
        uniq_par::pool(2).par_map(&[1u64], |&v| {
            uniq_obs::counter(uniq_obs::names::SESSION_STOPS, v as i64);
            v
        });
    }
}
