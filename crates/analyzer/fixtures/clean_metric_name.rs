//! Fixture: metric names routed through the shared constants module.

pub fn emit(v: f64) {
    uniq_obs::metric(uniq_obs::names::SESSION_STOPS, v, "");
}
