//! Lock-order fixture, clean counterpart: both functions take the pair
//! in the same order and every guard is dropped before the pool call.

use std::sync::Mutex;

pub struct Pair {
    pub alpha: Mutex<u32>,
    pub beta: Mutex<u32>,
}

/// Takes `alpha` then `beta`.
pub fn add_both(p: &Pair) {
    let a = p.alpha.lock().expect("alpha poisoned");
    let b = p.beta.lock().expect("beta poisoned");
    drop(b);
    drop(a);
}

/// Same order as `add_both`: no cycle.
pub fn sub_both(p: &Pair) {
    let a = p.alpha.lock().expect("alpha poisoned");
    let b = p.beta.lock().expect("beta poisoned");
    drop(b);
    drop(a);
}

/// Reads the value, releases the guard, then goes parallel.
pub fn flush_parallel(p: &Pair, pool: &ThreadPool, items: &[u32]) -> Vec<u32> {
    let a = p.alpha.lock().expect("alpha poisoned");
    let base = *a;
    drop(a);
    pool.par_map(items, |x| x + base)
}
