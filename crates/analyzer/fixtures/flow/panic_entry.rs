//! Panic-reachability fixture, result-crate side: a public entry point
//! that reaches an `unwrap` in a utility crate.

/// Public result-crate entry point; reaches the helper's unwrap.
pub fn summarize(xs: &[f64]) -> f64 {
    first_or_die(xs) / xs.len() as f64
}
