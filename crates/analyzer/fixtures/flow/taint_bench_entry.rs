//! Interprocedural taint fixture, negative case: the same timing helper
//! called only from bench code. Bench output is not a result artifact,
//! so no taint finding may fire.

/// Bench driver; wall-clock use here is the whole point of a benchmark.
pub fn bench_loop(iters: u32) -> f64 {
    let mut acc = 0.0;
    for _ in 0..iters {
        acc += elapsed_budget_ms();
    }
    acc
}
