//! Panic-reachability fixture, helper side: two panicking helpers in a
//! utility crate. Only the one a result-crate entry point can reach may
//! be reported.

/// Reached from the result-crate entry: its unwrap is a finding.
pub fn first_or_die(xs: &[f64]) -> f64 {
    let head = xs.first();
    head.unwrap().abs()
}

/// Never called from a result entry; its unwrap stays unreported.
pub fn orphan_unwrap(xs: &[f64]) -> f64 {
    xs.last().unwrap().abs()
}
