//! Interprocedural taint fixture, result-crate side: the public entry
//! point never touches a clock itself — it calls a helper that lives in
//! a utility crate, where the line-local wall-clock rule does not
//! apply. Only the call-graph taint rule can see the laundering.

/// Public result-crate entry point; transitively tainted through
/// `elapsed_budget_ms`.
pub fn estimate_with_budget(samples: &[f64]) -> f64 {
    let budget = elapsed_budget_ms();
    samples.iter().sum::<f64>() + budget
}
