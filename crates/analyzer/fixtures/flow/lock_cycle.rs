//! Lock-order fixture: two functions acquire the same pair of mutexes
//! in opposite orders — the classic AB/BA deadlock — and a third hands
//! work to the pool while holding a guard.

use std::sync::Mutex;

pub struct Pair {
    pub alpha: Mutex<u32>,
    pub beta: Mutex<u32>,
}

/// Takes `alpha` then `beta`.
pub fn add_both(p: &Pair) {
    let a = p.alpha.lock().expect("alpha poisoned");
    let b = p.beta.lock().expect("beta poisoned");
    drop(b);
    drop(a);
}

/// Takes `beta` then `alpha`: an AB/BA cycle with `add_both`.
pub fn sub_both(p: &Pair) {
    let b = p.beta.lock().expect("beta poisoned");
    let a = p.alpha.lock().expect("alpha poisoned");
    drop(a);
    drop(b);
}

/// Holds `alpha` across a `par_map` boundary.
pub fn flush_parallel(p: &Pair, pool: &ThreadPool, items: &[u32]) -> Vec<u32> {
    let a = p.alpha.lock().expect("alpha poisoned");
    pool.par_map(items, |x| x + *a)
}
