//! Hot-path allocation fixture, clean counterpart: the output buffer is
//! sized before the span opens and the measured region only writes into
//! it through the iterator — no allocation inside the span.

/// Fuses samples under the fusion span without allocating inside it.
pub fn fuse(xs: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; xs.len()];
    let _span = uniq_obs::span(uniq_obs::names::SPAN_FUSION);
    for (slot, x) in out.iter_mut().zip(xs) {
        *slot = shape(*x);
    }
    out
}

/// Pure arithmetic; nothing to allocate.
fn shape(x: f64) -> f64 {
    (x * 0.5).tanh()
}
