//! Interprocedural taint fixture, helper side: a timing helper in a
//! non-result utility crate. Harmless on its own — the finding depends
//! on who calls it.

/// Milliseconds elapsed since an arbitrary origin: a wall-clock read.
pub fn elapsed_budget_ms() -> f64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64() * 1000.0
}
