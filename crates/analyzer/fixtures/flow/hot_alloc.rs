//! Hot-path allocation fixture: the measured region of a fusion span
//! allocates per iteration, and so does a helper it calls. Allocation
//! before the span starts is setup and stays exempt.

/// Fuses samples under the fusion span; allocates inside it.
pub fn fuse(xs: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    let _span = uniq_obs::span(uniq_obs::names::SPAN_FUSION);
    for x in xs {
        out.push(shape(*x));
    }
    out
}

/// Pure arithmetic between the span and the allocating leaf.
fn shape(x: f64) -> f64 {
    scratch_mean(x) * 0.5
}

/// Allocates a fresh scratch vector on every call.
fn scratch_mean(x: f64) -> f64 {
    let mut v = Vec::new();
    v.push(x);
    v.iter().sum::<f64>() / v.len() as f64
}
