//! Fixture: a crate root (analyzed as `geometry`, `is_crate_root`) that
//! forgot `#![forbid(unsafe_code)]`.

pub mod shapes;

pub fn area(r: f64) -> f64 {
    std::f64::consts::PI * r * r
}
