//! Fixture: `HashMap`/`HashSet` in a result crate (analyzed as `dsp`).
use std::collections::HashMap;
use std::collections::HashSet;

pub fn histogram(samples: &[u32]) -> HashMap<u32, usize> {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut counts = HashMap::new();
    for &s in samples {
        seen.insert(s);
        *counts.entry(s).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    // HashMap in test code is fine: tests do not produce paper numbers.
    use std::collections::HashMap;

    #[test]
    fn test_side_maps_are_exempt() {
        let _m: HashMap<u32, u32> = HashMap::new();
    }
}
