//! Fixture: direct slice indexing (strict mode only; analyzed as `dsp`).

pub fn midpoint(samples: &[f64]) -> f64 {
    samples[samples.len() / 2]
}
