//! Near-field HRTF assembly and interpolation (§4.2 of the paper).
//!
//! After fusion assigns an angle to every measured channel, this module
//! turns the discrete measurements into a continuous near-field HRTF:
//!
//! 1. index the gated channels by their fused angles (a discrete
//!    [`HrirBank`]);
//! 2. first-tap-align adjacent HRIRs ("otherwise spurious echoes will get
//!    injected"), linearly interpolate to the output grid, and
//! 3. model-correct each interpolated HRIR: shift per-ear first taps to
//!    the delays predicted by the fused head parameters at that angle, and
//!    rescale amplitude by the spreading-loss ratio.

use crate::config::UniqConfig;
use crate::fusion::FusionResult;
use crate::session::SessionData;
use uniq_acoustics::types::{BinauralIr, HrirBank};
use uniq_dsp::align::shift_signal;
use uniq_dsp::interp::{bracket_angle, lerp_vec};
use uniq_dsp::peaks::first_tap;
use uniq_geometry::diffraction::path_to_ear;
use uniq_geometry::vec2::unit_from_theta;
use uniq_geometry::{Ear, HeadBoundary};

/// The discrete near-field bank: each measured channel indexed by its
/// fused angle. Stops that failed to localize (NaN radius) are dropped.
pub fn assemble_discrete(
    session: &SessionData,
    fusion: &FusionResult,
    cfg: &UniqConfig,
) -> HrirBank {
    let _span = uniq_obs::span(uniq_obs::names::SPAN_NEARFIELD_ASSEMBLE);
    let mut pairs: Vec<(f64, BinauralIr)> = Vec::new();
    for (stop, (&theta, loc)) in session
        .stops
        .iter()
        .zip(fusion.final_thetas_deg.iter().zip(&fusion.stops))
    {
        if !loc.radius_m.is_finite() {
            continue;
        }
        let theta = theta.rem_euclid(360.0);
        // Degenerate duplicate angles (stalled gesture) keep the first.
        if pairs.iter().any(|(a, _)| (a - theta).abs() < 1e-6) {
            continue;
        }
        pairs.push((theta, stop.channel.ir.clone()));
    }
    HrirBank::new(pairs, cfg.render.sample_rate)
}

/// Mean estimated trajectory radius (metres) over localized stops.
pub fn mean_radius(fusion: &FusionResult) -> f64 {
    let rs: Vec<f64> = fusion
        .stops
        .iter()
        .map(|s| s.radius_m)
        .filter(|r| r.is_finite())
        .collect();
    rs.iter().sum::<f64>() / rs.len().max(1) as f64
}

/// Interpolates the discrete bank onto the output grid with first-tap
/// alignment and diffraction-model correction.
///
/// `fusion` provides the head parameters for the correction model;
/// `radius` is the nominal trajectory radius the grid is rendered at.
pub fn interpolate(
    discrete: &HrirBank,
    fusion: &FusionResult,
    cfg: &UniqConfig,
    radius: f64,
) -> HrirBank {
    let _span = uniq_obs::span(uniq_obs::names::SPAN_NEARFIELD_INTERPOLATE);
    let boundary = HeadBoundary::new(fusion.head, cfg.inverse_resolution);
    let angles = discrete.angles();
    let grid = cfg.output_grid();
    let sr = cfg.render.sample_rate;

    // Grid angles are independent; fan them across the pool. Per-angle
    // arithmetic is unchanged and outputs are reduced in grid order, so
    // the bank is bit-identical at any thread count.
    let pool = uniq_par::pool(cfg.threads);
    let pairs: Vec<(f64, BinauralIr)> = pool.par_map(&grid, |&theta| {
        let (i0, i1, t) = bracket_angle(angles, theta);
        let ir = blend_aligned(&discrete.irs()[i0], &discrete.irs()[i1], t, cfg);
        let ir = model_correct(ir, &boundary, theta, radius, cfg);
        (theta, ir)
    });
    HrirBank::new(pairs, sr)
}

/// First-tap-aligns two HRIRs (per ear) and blends them; the blended first
/// tap is then placed at the linear interpolation of the two tap times.
fn blend_aligned(a: &BinauralIr, b: &BinauralIr, t: f64, cfg: &UniqConfig) -> BinauralIr {
    let blend_ear = |ea: &[f64], eb: &[f64]| -> Vec<f64> {
        let ta = first_tap(ea, cfg.tap_threshold).map(|p| p.position);
        let tb = first_tap(eb, cfg.tap_threshold).map(|p| p.position);
        match (ta, tb) {
            (Some(ta), Some(tb)) => {
                // Align b's tap onto a's, blend, then shift the result to
                // the interpolated tap position.
                let shift_b = (ta - tb).round() as isize;
                let b_aligned = shift_signal(eb, shift_b);
                let blended = lerp_vec(ea, &b_aligned, t);
                let target = ta + t * (tb - ta);
                shift_signal(&blended, (target - ta).round() as isize)
            }
            _ => lerp_vec(ea, eb, t),
        }
    };
    BinauralIr::new(blend_ear(&a.left, &b.left), blend_ear(&a.right, &b.right))
}

/// §4.2 model correction: if the interpolated HRIR's first taps deviate
/// from the diffraction model's prediction for (E_opt, θ, r), shift the
/// channel taps to the expected time and rescale to the expected
/// spreading amplitude.
fn model_correct(
    ir: BinauralIr,
    boundary: &HeadBoundary,
    theta_deg: f64,
    radius: f64,
    cfg: &UniqConfig,
) -> BinauralIr {
    let pos = unit_from_theta(theta_deg) * radius;
    let correct_ear = |sig: &[f64], ear: Ear| -> Vec<f64> {
        let Some(path) = path_to_ear(boundary, pos, ear) else {
            return sig.to_vec();
        };
        let expect = cfg.render.metres_to_samples(path.length);
        match first_tap(sig, cfg.tap_threshold) {
            Some(tap) => {
                let shift = (expect - tap.position).round() as isize;
                // Only correct confident, small deviations; large ones mean
                // the interpolation straddles a poorly measured arc and the
                // model is the better guess of *timing* only.
                shift_signal(sig, shift)
            }
            None => sig.to_vec(),
        }
    };
    BinauralIr::new(
        correct_ear(&ir.left, Ear::Left),
        correct_ear(&ir.right, Ear::Right),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_acoustics::pinna::PinnaModel;
    use uniq_acoustics::render::Renderer;
    use uniq_geometry::HeadParams;

    fn cfg() -> UniqConfig {
        UniqConfig {
            grid_step_deg: 5.0,
            ..UniqConfig::fast_test()
        }
    }

    /// A fusion result that matches the renderer's geometry exactly.
    fn perfect_fusion(head: HeadParams, angles: &[f64], radius: f64) -> FusionResult {
        FusionResult {
            head,
            stops: angles
                .iter()
                .map(|&a| crate::fusion::LocalizedStop {
                    theta_deg: a,
                    radius_m: radius,
                    residual_m: 0.0,
                })
                .collect(),
            final_thetas_deg: angles.to_vec(),
            mean_residual_deg: 0.0,
            objective: 0.0,
        }
    }

    fn measured_bank(head: HeadParams, angles: &[f64], radius: f64, c: &UniqConfig) -> HrirBank {
        let r = Renderer::new(
            HeadBoundary::new(head, 2048),
            PinnaModel::from_seed(61),
            PinnaModel::from_seed(62),
            c.render,
        );
        r.near_field_bank(angles, radius)
            .expect("test radius clears the head")
    }

    #[test]
    fn interpolation_grid_is_complete() {
        let c = cfg();
        let head = HeadParams::average_adult();
        let angles: Vec<f64> = (0..=9).map(|k| k as f64 * 20.0).collect();
        let bank = measured_bank(head, &angles, 0.4, &c);
        let fusion = perfect_fusion(head, &angles, 0.4);
        let interp = interpolate(&bank, &fusion, &c, 0.4);
        assert_eq!(interp.len(), c.output_grid().len());
    }

    #[test]
    fn interpolation_exact_at_measured_angles() {
        let c = cfg();
        let head = HeadParams::average_adult();
        let angles: Vec<f64> = (0..=9).map(|k| k as f64 * 20.0).collect();
        let bank = measured_bank(head, &angles, 0.4, &c);
        let fusion = perfect_fusion(head, &angles, 0.4);
        let interp = interpolate(&bank, &fusion, &c, 0.4);
        // At a measured angle, the interpolated HRIR should correlate ≈1
        // with the measurement (up to an integer alignment shift).
        let idx = interp.index_of(40.0).unwrap();
        let (sim, _) = interp.irs()[idx].similarity(&bank.irs()[2]);
        assert!(sim > 0.99, "similarity at measured angle: {sim}");
    }

    #[test]
    fn interpolated_angle_close_to_true_render() {
        // HRIR interpolated at an unmeasured angle should resemble the
        // true render at that angle. 10°-spaced measurements bracket the
        // query at ±5°, where the pinna is still well correlated.
        let c = cfg();
        let head = HeadParams::average_adult();
        let angles: Vec<f64> = (0..=18).map(|k| k as f64 * 10.0).collect();
        let bank = measured_bank(head, &angles, 0.4, &c);
        let fusion = perfect_fusion(head, &angles, 0.4);
        let interp = interpolate(&bank, &fusion, &c, 0.4);

        let truth = measured_bank(head, &[45.0], 0.4, &c);
        let idx = interp.index_of(45.0).unwrap();
        let (sim_interp, _) = interp.irs()[idx].similarity(&truth.irs()[0]);
        assert!(sim_interp > 0.75, "interp quality {sim_interp}");
        // It must also beat the *average* similarity of distant angles —
        // the shift-invariant metric has a high floor, so compare to the
        // mean over several.
        let mut distant = 0.0;
        for far_angle in [110.0, 135.0, 160.0] {
            let far_idx = interp.index_of(far_angle).unwrap();
            distant += interp.irs()[far_idx].similarity(&truth.irs()[0]).0;
        }
        distant /= 3.0;
        assert!(
            sim_interp > distant + 0.05,
            "interp {sim_interp} vs distant mean {distant}"
        );
    }

    #[test]
    fn first_taps_follow_model_after_correction() {
        let c = cfg();
        let head = HeadParams::average_adult();
        let angles: Vec<f64> = (0..=9).map(|k| k as f64 * 20.0).collect();
        let bank = measured_bank(head, &angles, 0.4, &c);
        let fusion = perfect_fusion(head, &angles, 0.4);
        let interp = interpolate(&bank, &fusion, &c, 0.4);

        let boundary = HeadBoundary::new(head, 1024);
        for &theta in &[25.0, 75.0, 125.0] {
            let idx = interp.index_of(theta).unwrap();
            let pos = unit_from_theta(theta) * 0.4;
            let expect = c
                .render
                .metres_to_samples(path_to_ear(&boundary, pos, Ear::Left).unwrap().length);
            let tap = first_tap(&interp.irs()[idx].left, c.tap_threshold).unwrap();
            assert!(
                (tap.position - expect).abs() < 2.0,
                "θ={theta}: tap {} vs model {expect}",
                tap.position
            );
        }
    }

    #[test]
    fn assemble_skips_failed_stops() {
        let c = cfg();
        let head = HeadParams::average_adult();
        let angles = [0.0, 45.0, 90.0];
        let bank = measured_bank(head, &angles, 0.4, &c);
        // Fake a session out of the bank.
        let session = SessionData {
            stops: bank
                .irs()
                .iter()
                .zip(bank.angles())
                .map(|(ir, &a)| crate::session::StopMeasurement {
                    alpha_deg: a,
                    channel: crate::channel::EstimatedChannel {
                        ir: ir.clone(),
                        tap_left: 50.0,
                        tap_right: 60.0,
                    },
                    truth_theta_deg: a,
                    truth_radius_m: 0.4,
                })
                .collect(),
            system_ir: vec![1.0],
        };
        let mut fusion = perfect_fusion(head, &angles, 0.4);
        fusion.stops[1].radius_m = f64::NAN; // failed stop
        let discrete = assemble_discrete(&session, &fusion, &c);
        assert_eq!(discrete.len(), 2);
        assert_eq!(discrete.angles(), &[0.0, 90.0]);
    }

    #[test]
    fn mean_radius_ignores_nan() {
        let head = HeadParams::average_adult();
        let mut fusion = perfect_fusion(head, &[0.0, 90.0, 180.0], 0.4);
        fusion.stops[2].radius_m = f64::NAN;
        assert!((mean_radius(&fusion) - 0.4).abs() < 1e-12);
    }
}

/// §4.2 interpolation quality assessment: per-angle deviation between the
/// interpolated HRIRs' first taps and the diffraction model's prediction.
///
/// "For a given interpolated location L and HRTF H_L, we can partly assess
/// the quality of interpolation (by modeling the diffraction from the
/// known head parameters E and the location L)." Returned deviations are
/// in samples (per ear, absolute); large values flag angles whose
/// bracketing measurements disagree with the fused geometry.
pub fn interpolation_quality(
    bank: &HrirBank,
    fusion: &FusionResult,
    cfg: &UniqConfig,
    radius: f64,
) -> Vec<(f64, f64, f64)> {
    let boundary = HeadBoundary::new(fusion.head, cfg.inverse_resolution);
    bank.angles()
        .iter()
        .zip(bank.irs())
        .map(|(&theta, ir)| {
            let pos = unit_from_theta(theta) * radius;
            let dev = |sig: &[f64], ear: Ear| -> f64 {
                let Some(path) = path_to_ear(&boundary, pos, ear) else {
                    return f64::NAN;
                };
                let expect = cfg.render.metres_to_samples(path.length);
                match first_tap(sig, cfg.tap_threshold) {
                    Some(tap) => (tap.position - expect).abs(),
                    None => f64::NAN,
                }
            };
            (theta, dev(&ir.left, Ear::Left), dev(&ir.right, Ear::Right))
        })
        .collect()
}

#[cfg(test)]
mod quality_tests {
    use super::*;
    use uniq_acoustics::pinna::PinnaModel;
    use uniq_acoustics::render::Renderer;
    use uniq_geometry::HeadParams;

    #[test]
    fn interpolated_bank_scores_tight_deviations() {
        let cfg = UniqConfig {
            grid_step_deg: 15.0,
            ..UniqConfig::fast_test()
        };
        let head = HeadParams::average_adult();
        let r = Renderer::new(
            HeadBoundary::new(head, 2048),
            PinnaModel::from_seed(991),
            PinnaModel::from_seed(992),
            cfg.render,
        );
        let angles: Vec<f64> = (0..=12).map(|k| k as f64 * 15.0).collect();
        let bank = r
            .near_field_bank(&angles, 0.4)
            .expect("test radius clears the head");
        let fusion = FusionResult {
            head,
            stops: vec![],
            final_thetas_deg: vec![],
            mean_residual_deg: 0.0,
            objective: 0.0,
        };
        let interp = interpolate(&bank, &fusion, &cfg, 0.4);
        let quality = interpolation_quality(&interp, &fusion, &cfg, 0.4);
        assert_eq!(quality.len(), interp.len());
        for (theta, dl, dr) in quality {
            assert!(dl.is_finite() && dr.is_finite(), "no tap at {theta}");
            assert!(dl < 2.5 && dr < 2.5, "θ={theta}: deviation {dl}/{dr}");
        }
    }

    #[test]
    fn corrupted_bank_flagged() {
        let cfg = UniqConfig {
            grid_step_deg: 30.0,
            ..UniqConfig::fast_test()
        };
        let head = HeadParams::average_adult();
        let r = Renderer::new(
            HeadBoundary::new(head, 1024),
            PinnaModel::from_seed(993),
            PinnaModel::from_seed(994),
            cfg.render,
        );
        let angles: Vec<f64> = (0..=6).map(|k| k as f64 * 30.0).collect();
        let bank = r
            .near_field_bank(&angles, 0.4)
            .expect("test radius clears the head");
        // Misalign one HRIR by 20 samples: the diagnostic must notice.
        let mut pairs: Vec<(f64, BinauralIr)> = bank
            .angles()
            .iter()
            .zip(bank.irs())
            .map(|(&a, ir)| (a, ir.clone()))
            .collect();
        pairs[3].1 = BinauralIr::new(
            shift_signal(&pairs[3].1.left, 20),
            shift_signal(&pairs[3].1.right, 20),
        );
        let corrupted = HrirBank::new(pairs, cfg.render.sample_rate);
        let fusion = FusionResult {
            head,
            stops: vec![],
            final_thetas_deg: vec![],
            mean_residual_deg: 0.0,
            objective: 0.0,
        };
        let quality = interpolation_quality(&corrupted, &fusion, &cfg, 0.4);
        assert!(
            quality[3].1 > 15.0,
            "misalignment not flagged: {:?}",
            quality[3]
        );
        assert!(quality[0].1 < 3.0);
    }
}
