//! HRTF-aware binaural angle-of-arrival estimation (§4.5).
//!
//! Earphone microphones sit behind head diffraction and pinna multipath,
//! so classical array AoA does not apply; UNIQ instead matches recordings
//! against the personalized HRTF template:
//!
//! * **Known source** (Eq. 9): estimate both ear channels by
//!   deconvolution, then minimize
//!   `T(θ) = λ·|t₀ − t(θ)| + [1 − c_L(θ)] + [1 − c_R(θ)]`
//!   over the template bank, combining the first-tap TDoA with the
//!   time-domain channel shapes.
//! * **Unknown source** (Eqs. 10–11): the per-ear channels are
//!   unavailable, so work with the *relative* channel — candidate TDoAs
//!   from its correlation peaks map to front/back angle pairs, and the
//!   multiplicative identity `L·HRTF_R(θ) = R·HRTF_L(θ)` picks the true
//!   one.

use crate::config::UniqConfig;
use uniq_acoustics::measure::BinauralRecording;
use uniq_acoustics::types::HrirBank;
use uniq_dsp::complex::Complex;
use uniq_dsp::deconv::wiener_deconvolve_batch;
use uniq_dsp::fft::{fft_in_place, next_pow2};
use uniq_dsp::peaks::{find_peaks, first_tap};
use uniq_dsp::xcorr::{peak_normalized_xcorr, xcorr};

/// Per-angle template features precomputed from a far-field bank.
#[derive(Debug, Clone)]
pub struct AoaTemplates {
    angles: Vec<f64>,
    /// Relative first-tap delay `t(θ) = tap_R − tap_L`, samples.
    t_rel: Vec<f64>,
}

impl AoaTemplates {
    /// Extracts the TDoA feature curve from a far-field bank.
    pub fn from_bank(bank: &HrirBank, cfg: &UniqConfig) -> Self {
        let mut angles = Vec::with_capacity(bank.len());
        let mut t_rel = Vec::with_capacity(bank.len());
        for (&a, ir) in bank.angles().iter().zip(bank.irs()) {
            let tl = first_tap(&ir.left, cfg.tap_threshold);
            let tr = first_tap(&ir.right, cfg.tap_threshold);
            if let (Some(tl), Some(tr)) = (tl, tr) {
                angles.push(a);
                t_rel.push(tr.position - tl.position);
            }
        }
        AoaTemplates { angles, t_rel }
    }

    /// Template angles.
    pub fn angles(&self) -> &[f64] {
        &self.angles
    }

    /// The TDoA curve, index-aligned with [`AoaTemplates::angles`].
    pub fn t_rel(&self) -> &[f64] {
        &self.t_rel
    }
}

/// Known-source AoA (Eq. 9): returns the estimated angle in degrees.
///
/// `bank` is the personalized (or global, for the baseline) far-field
/// HRTF template.
pub fn estimate_known_source(
    recording: &BinauralRecording,
    source: &[f64],
    bank: &HrirBank,
    cfg: &UniqConfig,
) -> f64 {
    let _span = uniq_obs::span(uniq_obs::names::SPAN_AOA_KNOWN);
    // Ear channels by deconvolution with the known source (batched across
    // the pool; same arithmetic as two sequential calls).
    let pool = uniq_par::pool(cfg.threads);
    let mut chans = wiener_deconvolve_batch(
        &[recording.left.as_slice(), recording.right.as_slice()],
        source,
        cfg.deconv_noise_floor,
        cfg.channel_len,
        &pool,
    );
    // uniq-analyzer: allow(panic-safety) — par_map returns exactly one output per input; the batch above has two
    let ch_right = chans.pop().expect("batch of two");
    // uniq-analyzer: allow(panic-safety) — same two-element batch; second pop cannot fail
    let ch_left = chans.pop().expect("batch of two");

    let t0 = match (
        first_tap(&ch_left, cfg.tap_threshold),
        first_tap(&ch_right, cfg.tap_threshold),
    ) {
        (Some(l), Some(r)) => r.position - l.position,
        _ => 0.0,
    };

    let templates = AoaTemplates::from_bank(bank, cfg);
    // Per-template costs are independent: compute them across the pool,
    // then take the argmin with the same sequential strict-< fold the
    // serial sweep used (first minimum wins), so the estimate is
    // bit-identical at any thread count.
    let entries: Vec<(f64, f64, &uniq_acoustics::types::BinauralIr)> = templates
        .angles
        .iter()
        .zip(&templates.t_rel)
        .zip(bank.irs())
        .map(|((&theta, &t_theta), ir)| (theta, t_theta, ir))
        .collect();
    let costs = pool.par_map(&entries, |&(theta, t_theta, ir)| {
        let c_l = peak_normalized_xcorr(&ch_left, &ir.left);
        let c_r = peak_normalized_xcorr(&ch_right, &ir.right);
        let cost = cfg.aoa_lambda * (t0 - t_theta).abs() + (1.0 - c_l) + (1.0 - c_r);
        (cost, theta)
    });
    let mut best = (f64::INFINITY, 0.0);
    for &(cost, theta) in &costs {
        if cost < best.0 {
            best = (cost, theta);
        }
    }
    best.1
}

/// Unknown-source AoA (Eqs. 10–11): returns the estimated angle in
/// degrees.
pub fn estimate_unknown_source(
    recording: &BinauralRecording,
    bank: &HrirBank,
    cfg: &UniqConfig,
) -> f64 {
    let _span = uniq_obs::span(uniq_obs::names::SPAN_AOA_UNKNOWN);
    // Relative channel between the ears: cross-correlation peaks give
    // candidate TDoAs (Fig 14: multiple peaks due to pinna multipath).
    let window = 16_384.min(recording.left.len());
    let left = &recording.left[..window];
    let right = &recording.right[..window];
    let r = xcorr(left, right);
    let peaks = find_peaks(&r, 0.5, 3);
    let zero_lag = right.len() as f64 - 1.0;

    let templates = AoaTemplates::from_bank(bank, cfg);
    // Map each candidate TDoA to template angles whose t(θ) matches.
    let mut candidates: Vec<f64> = Vec::new();
    for p in peaks.iter().take(6) {
        // lag convention: a(t) = b(t + lag) → t0 = tap_R − tap_L = +lag.
        let dt = zero_lag - p.position;
        // Find local minima of |t(θ) − dt| (typically one front + one
        // back angle).
        for w in 0..templates.angles.len() {
            let err = (templates.t_rel[w] - dt).abs();
            let better_than_neighbors = {
                let prev = w
                    .checked_sub(1)
                    .map(|i| (templates.t_rel[i] - dt).abs())
                    .unwrap_or(f64::INFINITY);
                let next = templates
                    .t_rel
                    .get(w + 1)
                    .map(|t| (t - dt).abs())
                    .unwrap_or(f64::INFINITY);
                err <= prev && err <= next
            };
            if better_than_neighbors && err < 3.0 {
                candidates.push(templates.angles[w]);
            }
        }
    }
    if candidates.is_empty() {
        candidates.extend_from_slice(&templates.angles);
    }

    // Eq. 11 disambiguation: minimize ‖L·H_R(θ) − R·H_L(θ)‖ in the
    // frequency domain.
    let n = next_pow2(window + bank.irs()[0].len());
    let fl = spectrum_of(left, n);
    let fr = spectrum_of(right, n);

    // Candidate costs are independent: compute across the pool, argmin
    // with the sequential strict-< fold (first minimum wins) for
    // bit-identical estimates at any thread count.
    let pool = uniq_par::pool(cfg.threads);
    let costs = pool.par_map(&candidates, |&theta| {
        let (ir, _) = bank.nearest(theta);
        let hl = spectrum_of(&ir.left, n);
        let hr = spectrum_of(&ir.right, n);
        let mut num = 0.0;
        let mut den = 0.0;
        for k in 0..n {
            let lhs = fl[k] * hr[k];
            let rhs = fr[k] * hl[k];
            num += (lhs - rhs).norm_sqr();
            den += lhs.norm_sqr() + rhs.norm_sqr();
        }
        (num / den.max(1e-30), theta)
    });
    let mut best = (f64::INFINITY, candidates[0]);
    for &(cost, theta) in &costs {
        if cost < best.0 {
            best = (cost, theta);
        }
    }
    best.1
}

/// Trains the Eq. 9 weight λ by golden-section search over a labelled
/// training set of `(recording, source, true_theta)` triples, minimizing
/// the mean absolute AoA error.
pub fn train_lambda(
    training: &[(BinauralRecording, Vec<f64>, f64)],
    bank: &HrirBank,
    cfg: &UniqConfig,
) -> f64 {
    assert!(!training.is_empty(), "training set must not be empty");
    let objective = |lambda: f64| -> f64 {
        let mut c = cfg.clone();
        c.aoa_lambda = lambda;
        training
            .iter()
            .map(|(rec, src, truth)| {
                let est = estimate_known_source(rec, src, bank, &c);
                uniq_geometry::vec2::angle_diff_deg(est, *truth)
            })
            .sum::<f64>()
            / training.len() as f64
    };
    uniq_optim::golden_section(objective, 0.0, 1.0, 1e-3).0
}

fn spectrum_of(signal: &[f64], n: usize) -> Vec<Complex> {
    let mut buf = vec![Complex::ZERO; n];
    for (b, &s) in buf.iter_mut().zip(signal) {
        *b = Complex::from_real(s);
    }
    fft_in_place(&mut buf);
    buf
}

/// Whether an angle is in the frontal hemisphere (θ < 90°). Used by the
/// Fig 22(d) front-back accuracy metric.
pub fn is_front(theta_deg: f64) -> bool {
    theta_deg.rem_euclid(360.0) < 90.0 || theta_deg.rem_euclid(360.0) > 270.0
}

/// Front-back classification accuracy over `(estimate, truth)` pairs.
pub fn front_back_accuracy(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let correct = pairs
        .iter()
        .filter(|(est, truth)| is_front(*est) == is_front(*truth))
        .count();
    correct as f64 / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_acoustics::measure::{record_plane_wave, MeasurementSetup};
    use uniq_acoustics::signals::{generate, SignalKind};
    use uniq_geometry::vec2::angle_diff_deg;
    use uniq_subjects::Subject;

    fn cfg() -> UniqConfig {
        UniqConfig::fast_test()
    }

    fn subject() -> Subject {
        Subject::from_seed(90)
    }

    #[test]
    fn known_source_with_own_template_is_accurate() {
        let c = cfg();
        let s = subject();
        let renderer = s.renderer(c.render, 1024);
        let angles: Vec<f64> = (0..=36).map(|k| k as f64 * 5.0).collect();
        let bank = renderer.ground_truth_bank(&angles);
        let setup = MeasurementSetup::anechoic(c.render.sample_rate, 40.0);
        let probe = c.probe();

        for truth in [20.0, 75.0, 140.0] {
            let rec = record_plane_wave(&renderer, &setup, truth, &probe, 7);
            let est = estimate_known_source(&rec, &probe, &bank, &c);
            assert!(
                angle_diff_deg(est, truth) <= 10.0,
                "truth {truth}: est {est}"
            );
        }
    }

    #[test]
    fn known_source_with_wrong_template_degrades() {
        let c = cfg();
        let s = subject();
        let other = Subject::from_seed(91);
        let renderer = s.renderer(c.render, 1024);
        let angles: Vec<f64> = (0..=36).map(|k| k as f64 * 5.0).collect();
        let own = renderer.ground_truth_bank(&angles);
        let wrong = other.renderer(c.render, 1024).ground_truth_bank(&angles);
        let setup = MeasurementSetup::anechoic(c.render.sample_rate, 40.0);
        let probe = c.probe();

        let mut own_err = 0.0;
        let mut wrong_err = 0.0;
        for truth in [30.0, 60.0, 120.0, 150.0] {
            let rec = record_plane_wave(&renderer, &setup, truth, &probe, 8);
            own_err += angle_diff_deg(estimate_known_source(&rec, &probe, &own, &c), truth);
            wrong_err += angle_diff_deg(estimate_known_source(&rec, &probe, &wrong, &c), truth);
        }
        assert!(
            own_err < wrong_err,
            "personal template not better: {own_err} vs {wrong_err}"
        );
    }

    #[test]
    fn unknown_source_white_noise_reasonable() {
        let c = cfg();
        let s = subject();
        let renderer = s.renderer(c.render, 1024);
        let angles: Vec<f64> = (0..=36).map(|k| k as f64 * 5.0).collect();
        let bank = renderer.ground_truth_bank(&angles);
        let setup = MeasurementSetup::anechoic(c.render.sample_rate, 40.0);
        let sig = generate(SignalKind::WhiteNoise, 0.3, c.render.sample_rate, 3);

        let mut total = 0.0;
        for truth in [25.0, 70.0, 130.0] {
            let rec = record_plane_wave(&renderer, &setup, truth, &sig, 9);
            let est = estimate_unknown_source(&rec, &bank, &c);
            total += angle_diff_deg(est, truth);
        }
        assert!(
            total / 3.0 < 25.0,
            "mean unknown-source error {}",
            total / 3.0
        );
    }

    #[test]
    fn front_back_helpers() {
        assert!(is_front(10.0));
        assert!(is_front(89.0));
        assert!(!is_front(91.0));
        assert!(!is_front(180.0));
        assert!(is_front(300.0));
        let pairs = [(10.0, 15.0), (120.0, 130.0), (30.0, 160.0)];
        assert!((front_back_accuracy(&pairs) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn templates_tdoa_monotone_to_ninety() {
        let c = cfg();
        let s = subject();
        let renderer = s.renderer(c.render, 1024);
        let angles: Vec<f64> = (0..=18).map(|k| k as f64 * 10.0).collect();
        let bank = renderer.ground_truth_bank(&angles);
        let t = AoaTemplates::from_bank(&bank, &c);
        // TDoA should rise from ~0 at the front to a maximum near 90°.
        let i0 = 0;
        let i90 = t
            .angles()
            .iter()
            .position(|a| (*a - 90.0).abs() < 1e-9)
            .unwrap();
        assert!(t.t_rel()[i90] > t.t_rel()[i0] + 5.0);
    }

    #[test]
    fn train_lambda_returns_in_range() {
        let c = cfg();
        let s = subject();
        let renderer = s.renderer(c.render, 512);
        let angles: Vec<f64> = (0..=12).map(|k| k as f64 * 15.0).collect();
        let bank = renderer.ground_truth_bank(&angles);
        let setup = MeasurementSetup::anechoic(c.render.sample_rate, 40.0);
        let probe = c.probe();
        let training: Vec<_> = [40.0, 100.0]
            .iter()
            .map(|&t| {
                (
                    record_plane_wave(&renderer, &setup, t, &probe, 11),
                    probe.clone(),
                    t,
                )
            })
            .collect();
        let lambda = train_lambda(&training, &bank, &c);
        assert!((0.0..=1.0).contains(&lambda));
    }
}
