//! Near-to-far HRTF conversion (§4.3 of the paper).
//!
//! Far-field sound arrives as parallel rays; near-field measurements are
//! point sources. The shipping conversion is the paper's critical-ray arc
//! heuristic: rays from far angle `θ` that reach the **left** ear pass
//! through trajectory arc `[C, B]`, those reaching the **right** ear pass
//! through `[C, D]` (Fig 12). The far-field HRIR per ear is the first-tap
//! aligned average of the near-field HRIRs measured on the corresponding
//! arc, then fine-tuned to the plane-wave delays and amplitudes predicted
//! by the fused head parameters.
//!
//! The paper's two deeper decomposition attempts are reproduced in
//! [`attempts`] — including their *negative* results (the ill-conditioned
//! beamforming system and the ambiguous blind decoupling).

use crate::config::UniqConfig;
use crate::fusion::FusionResult;
use uniq_acoustics::types::{BinauralIr, HrirBank};
use uniq_dsp::align::co_align;
use uniq_dsp::align::shift_signal;
use uniq_dsp::peaks::first_tap;
use uniq_geometry::critical::critical_angles;
use uniq_geometry::planewave::plane_path_to_ear;
use uniq_geometry::{Ear, HeadBoundary};

/// Converts an interpolated near-field bank into the far-field bank on the
/// same output grid.
///
/// `radius` is the (estimated) trajectory radius the near-field bank was
/// measured at.
pub fn convert(near: &HrirBank, fusion: &FusionResult, cfg: &UniqConfig, radius: f64) -> HrirBank {
    let _span = uniq_obs::span(uniq_obs::names::SPAN_NEARFAR_CONVERT);
    let boundary = HeadBoundary::new(fusion.head, cfg.inverse_resolution);
    let grid = cfg.output_grid();
    let sr = cfg.render.sample_rate;

    // Grid angles are independent; fan them across the pool (bit-identical
    // to the sequential map — same per-angle arithmetic, grid-order
    // reduction).
    let pool = uniq_par::pool(cfg.threads);
    let pairs: Vec<(f64, BinauralIr)> = pool.par_map(&grid, |&theta| {
        let ca = critical_angles(&boundary, theta, radius);
        let left = arc_average(near, |phi| ca.feeds_left(phi), ca.theta_c, Ear::Left, cfg);
        let right = arc_average(near, |phi| ca.feeds_right(phi), ca.theta_c, Ear::Right, cfg);
        let ir = BinauralIr::new(left, right);
        let ir = tune_to_plane_model(ir, &boundary, theta, radius, cfg);
        (theta, ir)
    });
    HrirBank::new(pairs, sr)
}

/// Averages one ear's HRIRs over the measured angles selected by `on_arc`,
/// after first-tap co-alignment. Falls back to the measurement nearest
/// `fallback_angle` when the arc covers no measured angle (e.g. the arc
/// lies outside the 0–180° sweep).
fn arc_average(
    near: &HrirBank,
    on_arc: impl Fn(f64) -> bool,
    fallback_angle: f64,
    ear: Ear,
    cfg: &UniqConfig,
) -> Vec<f64> {
    let select_ear = |ir: &BinauralIr| -> Vec<f64> {
        match ear {
            Ear::Left => ir.left.clone(),
            Ear::Right => ir.right.clone(),
        }
    };
    let members: Vec<Vec<f64>> = near
        .angles()
        .iter()
        .zip(near.irs())
        .filter(|(a, _)| on_arc(**a))
        .map(|(_, ir)| select_ear(ir))
        .collect();
    let members = if members.is_empty() {
        vec![select_ear(near.nearest(fallback_angle).0)]
    } else {
        members
    };
    let (aligned, _) = co_align(&members, cfg.tap_threshold);
    let n = aligned.len() as f64;
    let len = aligned[0].len();
    let mut avg = vec![0.0; len];
    for ir in &aligned {
        for (a, v) in avg.iter_mut().zip(ir) {
            *a += v / n;
        }
    }
    avg
}

/// §4.3 fine-tuning: place each ear's first tap at the plane-wave delay
/// predicted by the fused head parameters, and undo the near-field
/// spreading loss (multiply by the trajectory radius) so the far HRIR is
/// normalized to unit incident amplitude.
fn tune_to_plane_model(
    ir: BinauralIr,
    boundary: &HeadBoundary,
    theta_deg: f64,
    radius: f64,
    cfg: &UniqConfig,
) -> BinauralIr {
    let tune_ear = |sig: &[f64], ear: Ear| -> Vec<f64> {
        let plane = plane_path_to_ear(boundary, theta_deg, ear);
        let expect = cfg.render.metres_to_samples(plane.excess);
        let shifted = match first_tap(sig, cfg.tap_threshold) {
            Some(tap) => shift_signal(sig, (expect - tap.position).round() as isize),
            None => sig.to_vec(),
        };
        shifted.iter().map(|v| v * radius).collect()
    };
    BinauralIr::new(
        tune_ear(&ir.left, Ear::Left),
        tune_ear(&ir.right, Ear::Right),
    )
}

/// The paper's exploratory decomposition attempts (§4.3 "Additional
/// attempts"), kept as analysis tools that reproduce the reported
/// negative results.
pub mod attempts {
    /// Builds the Eq. 6 beamforming system for an `n_elements`-speaker
    /// array and returns its condition number.
    ///
    /// Rows are time-varying beam patterns `w_t(θ_i)` — steered magnitude
    /// responses of a uniform array with element spacing `spacing_m` at
    /// frequency `freq_hz`; columns are the unknown per-ray components
    /// `H(X_k, θ_i)`. The paper reports that the phone's **two** speakers
    /// "are unable to create a spatially narrow beam pattern", leaving the
    /// system ill-ranked — so the 2-element condition number is large,
    /// while a proper multi-element array is far better conditioned.
    pub fn beamforming_condition(
        n_angles: usize,
        n_patterns: usize,
        n_elements: usize,
        spacing_m: f64,
        freq_hz: f64,
    ) -> f64 {
        assert!(n_elements >= 2, "an array needs at least two elements");
        assert!(
            n_angles >= 2 && n_patterns >= n_angles,
            "need an overdetermined system"
        );
        let k = 2.0 * std::f64::consts::PI * freq_hz / uniq_dsp::SPEED_OF_SOUND;
        // Steered beam magnitude: |Σ_e e^{j·e·(k d sinθ − k d sinφ_t)}|,
        // steering angle φ_t swept over the field of view per pattern.
        let mut a = vec![vec![0.0; n_angles]; n_patterns];
        for (t, row) in a.iter_mut().enumerate() {
            let steer = -std::f64::consts::FRAC_PI_2
                + t as f64 * std::f64::consts::PI / (n_patterns - 1) as f64;
            for (i, cell) in row.iter_mut().enumerate() {
                let theta = -std::f64::consts::FRAC_PI_2
                    + i as f64 * std::f64::consts::PI / (n_angles - 1) as f64;
                let psi = k * spacing_m * (theta.sin() - steer.sin());
                let (mut re, mut im) = (0.0, 0.0);
                for e in 0..n_elements {
                    re += (e as f64 * psi).cos();
                    im += (e as f64 * psi).sin();
                }
                *cell = (re * re + im * im).sqrt() / n_elements as f64;
            }
        }
        condition_number(&a)
    }

    /// Simulates the Eq. 8 blind decoupling ambiguity: two *different*
    /// factorizations `(Σ A_i δ(τ_i)) ∗ h` that produce the same observed
    /// near-field channel. Returns the observation-space distance between
    /// the two models (≈ 0, demonstrating non-identifiability without
    /// further constraints).
    pub fn blind_decoupling_ambiguity() -> f64 {
        // Model 1: rays at delays {0, 2} with gains {1.0, 0.5}, pinna
        // channel h1 = [1, 0, 0.3].
        // Model 2: fold the 2-sample delay into the pinna channel instead.
        let rays1 = [(0usize, 1.0), (2usize, 0.5)];
        let h1 = [1.0, 0.0, 0.3];
        let rays2 = [(0usize, 1.0)];
        let mut h2 = vec![0.0; 8];
        // h2 = h1 + 0.5·h1 delayed by 2 → identical observation.
        for (i, &v) in h1.iter().enumerate() {
            h2[i] += v;
            h2[i + 2] += 0.5 * v;
        }
        let obs = |rays: &[(usize, f64)], h: &[f64]| -> Vec<f64> {
            let mut out = vec![0.0; 16];
            for &(d, g) in rays {
                for (i, &v) in h.iter().enumerate() {
                    out[d + i] += g * v;
                }
            }
            out
        };
        let o1 = obs(&rays1, &h1);
        let o2 = obs(&rays2, &h2);
        o1.iter()
            .zip(&o2)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Condition number of a real matrix via the symmetric Gram matrix:
    /// `cond(A) = sqrt(λ_max / λ_min)` of `AᵀA`, with eigenvalues from
    /// cyclic Jacobi iteration. Adequate for the small systems analyzed
    /// here.
    pub fn condition_number(a: &[Vec<f64>]) -> f64 {
        let rows = a.len();
        let cols = a[0].len();
        // Gram matrix G = AᵀA (cols × cols).
        let mut g = vec![vec![0.0; cols]; cols];
        for i in 0..cols {
            for j in 0..cols {
                g[i][j] = (0..rows).map(|r| a[r][i] * a[r][j]).sum();
            }
        }
        let eig = symmetric_eigenvalues(&mut g);
        let max = eig.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = eig.iter().copied().fold(f64::INFINITY, f64::min).max(0.0);
        if min <= 1e-300 {
            f64::INFINITY
        } else {
            (max / min).sqrt()
        }
    }

    /// Eigenvalues of a symmetric matrix by cyclic Jacobi rotations
    /// (destroys the input).
    // Index-based loops mirror the textbook Jacobi formulation; the p/q/k
    // row-column symmetry would be lost in iterator form.
    #[allow(clippy::needless_range_loop)]
    fn symmetric_eigenvalues(g: &mut [Vec<f64>]) -> Vec<f64> {
        let n = g.len();
        for _sweep in 0..60 {
            let mut off = 0.0;
            for i in 0..n {
                for j in i + 1..n {
                    off += g[i][j] * g[i][j];
                }
            }
            if off < 1e-24 {
                break;
            }
            for p in 0..n {
                for q in p + 1..n {
                    if g[p][q].abs() < 1e-300 {
                        continue;
                    }
                    let tau = (g[q][q] - g[p][p]) / (2.0 * g[p][q]);
                    let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    for k in 0..n {
                        let gpk = g[p][k];
                        let gqk = g[q][k];
                        g[p][k] = c * gpk - s * gqk;
                        g[q][k] = s * gpk + c * gqk;
                    }
                    for k in 0..n {
                        let gkp = g[k][p];
                        let gkq = g[k][q];
                        g[k][p] = c * gkp - s * gkq;
                        g[k][q] = s * gkp + c * gkq;
                    }
                }
            }
        }
        (0..n).map(|i| g[i][i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::LocalizedStop;
    use uniq_acoustics::pinna::PinnaModel;
    use uniq_acoustics::render::Renderer;
    use uniq_geometry::HeadParams;

    fn cfg() -> UniqConfig {
        UniqConfig {
            grid_step_deg: 10.0,
            ..UniqConfig::fast_test()
        }
    }

    fn perfect_fusion(head: HeadParams) -> FusionResult {
        FusionResult {
            head,
            stops: vec![LocalizedStop {
                theta_deg: 0.0,
                radius_m: 0.4,
                residual_m: 0.0,
            }],
            final_thetas_deg: vec![0.0],
            mean_residual_deg: 0.0,
            objective: 0.0,
        }
    }

    fn subject_renderer(head: HeadParams, c: &UniqConfig) -> Renderer {
        Renderer::new(
            HeadBoundary::new(head, 2048),
            PinnaModel::from_seed(71),
            PinnaModel::from_seed(72),
            c.render,
        )
    }

    #[test]
    fn converted_far_field_tracks_ground_truth() {
        let c = cfg();
        let head = HeadParams::average_adult();
        let r = subject_renderer(head, &c);
        // Dense near-field measurements on the output grid.
        let grid = c.output_grid();
        let near = r
            .near_field_bank(&grid, 0.4)
            .expect("test radius clears the head");
        let fusion = perfect_fusion(head);
        let far = convert(&near, &fusion, &c, 0.4);
        let truth = r.ground_truth_bank(&grid);

        let mut sims = Vec::new();
        for (est, gt) in far.irs().iter().zip(truth.irs()) {
            let (l, r) = est.similarity(gt);
            sims.push(0.5 * (l + r));
        }
        let mean: f64 = sims.iter().sum::<f64>() / sims.len() as f64;
        assert!(mean > 0.6, "far-field conversion quality {mean}");
    }

    #[test]
    fn conversion_beats_raw_near_field() {
        // The §4.3 motivation: using the near-field HRIR directly for far
        // sources is worse than converting.
        let c = cfg();
        let head = HeadParams::average_adult();
        let r = subject_renderer(head, &c);
        let grid = c.output_grid();
        let near = r
            .near_field_bank(&grid, 0.4)
            .expect("test radius clears the head");
        let fusion = perfect_fusion(head);
        let far = convert(&near, &fusion, &c, 0.4);
        let truth = r.ground_truth_bank(&grid);

        let mut conv_total = 0.0;
        let mut raw_total = 0.0;
        for ((est, raw), gt) in far.irs().iter().zip(near.irs()).zip(truth.irs()) {
            let (cl, cr) = est.similarity(gt);
            let (rl, rr) = raw.similarity(gt);
            conv_total += cl + cr;
            raw_total += rl + rr;
        }
        assert!(
            conv_total > raw_total,
            "conversion did not help: {conv_total} vs {raw_total}"
        );
    }

    #[test]
    fn far_bank_covers_grid() {
        let c = cfg();
        let head = HeadParams::average_adult();
        let r = subject_renderer(head, &c);
        let near = r
            .near_field_bank(&c.output_grid(), 0.4)
            .expect("test radius clears the head");
        let far = convert(&near, &perfect_fusion(head), &c, 0.4);
        assert_eq!(far.len(), c.output_grid().len());
    }

    #[test]
    fn beamforming_system_is_ill_conditioned() {
        // Phone speakers: 2 elements ~7 cm apart at 2 kHz — the paper's
        // negative result. A condition number in the hundreds means noise
        // is amplified hundreds-fold when inverting Eq. 6.
        let cond = attempts::beamforming_condition(19, 30, 2, 0.07, 2000.0);
        assert!(
            cond > 100.0,
            "two-speaker system unexpectedly well conditioned: {cond}"
        );
        // More patterns cannot fix a rank problem rooted in the aperture.
        let more = attempts::beamforming_condition(19, 120, 2, 0.07, 2000.0);
        assert!(more > 100.0, "extra patterns fixed the rank?! {more}");
    }

    #[test]
    fn many_element_array_would_be_better() {
        // Sanity check of the analysis itself: an 8-element array forms
        // narrow steerable beams and is much better conditioned than the
        // phone's two speakers.
        let phone = attempts::beamforming_condition(12, 24, 2, 0.07, 2000.0);
        let array = attempts::beamforming_condition(12, 24, 8, 0.07, 2000.0);
        assert!(
            array < phone / 2.0,
            "8-element array {array} not clearly better than phone {phone}"
        );
    }

    #[test]
    fn blind_decoupling_is_ambiguous() {
        let gap = attempts::blind_decoupling_ambiguity();
        assert!(
            gap < 1e-12,
            "two factorizations should be observationally identical: {gap}"
        );
    }

    #[test]
    fn condition_number_of_identity_is_one() {
        let eye = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        let c = attempts::condition_number(&eye);
        assert!((c - 1.0).abs() < 1e-9, "cond(I) = {c}");
    }
}
