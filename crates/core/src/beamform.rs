//! HRTF-aware binaural beamforming — the hearing-aid scenario of §4.5:
//! *"earphones could serve as hearing aids, and beamform in the direction
//! of a desired speech signal; thus, Alice and Bob could listen to each
//! other more clearly by wearing headphones in a noisy bar."*
//!
//! With only two microphones buried behind head diffraction and pinna
//! multipath, classical free-field beamformers fail; the HRTF itself is
//! the correct steering model. We implement an HRTF-matched-filter
//! beamformer: each ear is filtered with the time-reversed personalized
//! HRIR for the look direction (which simultaneously aligns the
//! interaural delay and equalizes the pinna comb), then the ears are
//! summed. Signals from the look direction add coherently; interferers
//! from elsewhere add with mismatched phase and are suppressed.

use uniq_acoustics::measure::BinauralRecording;
use uniq_acoustics::types::HrirBank;
use uniq_dsp::conv::convolve;

/// Output of a beamforming pass.
#[derive(Debug, Clone)]
pub struct BeamformOutput {
    /// The enhanced (look-direction) signal.
    pub enhanced: Vec<f64>,
}

/// Steers a binaural recording toward `theta_deg` using the given HRTF
/// template bank: matched-filter each ear with its look-direction HRIR
/// and sum.
pub fn beamform(recording: &BinauralRecording, bank: &HrirBank, theta_deg: f64) -> BeamformOutput {
    let (ir, _) = bank.nearest(theta_deg);
    let mf_left: Vec<f64> = ir.left.iter().rev().copied().collect();
    let mf_right: Vec<f64> = ir.right.iter().rev().copied().collect();
    // Normalize each matched filter by its ear's HRIR energy so a strong
    // near-ear channel does not dominate the sum.
    let norm = |taps: &[f64]| -> f64 {
        let e: f64 = taps.iter().map(|v| v * v).sum();
        if e > 0.0 {
            1.0 / e.sqrt()
        } else {
            0.0
        }
    };
    let gl = norm(&mf_left);
    let gr = norm(&mf_right);
    let l = convolve(&recording.left, &mf_left);
    let r = convolve(&recording.right, &mf_right);
    let n = l.len().max(r.len());
    let mut enhanced = vec![0.0; n];
    for (dst, v) in enhanced.iter_mut().zip(&l) {
        *dst += gl * v;
    }
    for (dst, v) in enhanced.iter_mut().zip(&r) {
        *dst += gr * v;
    }
    BeamformOutput { enhanced }
}

/// Array gain of the beamformer for a unit plane wave: the output energy
/// when steered *at* the source direction divided by the output energy
/// when steered `off_deg` away. Values well above 1 mean real spatial
/// selectivity.
pub fn steering_contrast(
    recording: &BinauralRecording,
    bank: &HrirBank,
    source_theta_deg: f64,
    off_deg: f64,
) -> f64 {
    let on = beamform(recording, bank, source_theta_deg);
    let off = beamform(recording, bank, source_theta_deg + off_deg);
    let e = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().max(1e-30);
    e(&on.enhanced) / e(&off.enhanced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_acoustics::measure::{record_plane_wave, MeasurementSetup};
    use uniq_acoustics::signals::{generate, SignalKind};
    use uniq_core_test_support::*;

    /// Local test fixtures (named module to keep intent clear).
    mod uniq_core_test_support {
        pub use crate::config::UniqConfig;
        pub use uniq_subjects::Subject;
    }

    fn setup() -> (
        UniqConfig,
        uniq_acoustics::render::Renderer,
        uniq_acoustics::types::HrirBank,
    ) {
        let cfg = UniqConfig {
            grid_step_deg: 5.0,
            ..UniqConfig::fast_test()
        };
        let subject = Subject::from_seed(610);
        let renderer = subject.renderer(cfg.render, 1024);
        let bank = renderer.ground_truth_bank(&cfg.output_grid());
        (cfg, renderer, bank)
    }

    #[test]
    fn steering_at_source_beats_steering_away() {
        let (cfg, renderer, bank) = setup();
        let ms = MeasurementSetup::anechoic(cfg.render.sample_rate, 50.0);
        let sig = generate(SignalKind::WhiteNoise, 0.2, cfg.render.sample_rate, 1);
        let rec = record_plane_wave(&renderer, &ms, 60.0, &sig, 2);
        let contrast = steering_contrast(&rec, &bank, 60.0, 60.0);
        assert!(contrast > 1.2, "no spatial selectivity: {contrast}");
    }

    #[test]
    fn two_speaker_separation() {
        // Alice at 30°, Bob (interferer) at 130°: steering at Alice should
        // raise her power relative to Bob's compared with no beamforming.
        let (cfg, renderer, bank) = setup();
        let ms = MeasurementSetup::anechoic(cfg.render.sample_rate, 60.0);
        let sr = cfg.render.sample_rate;
        let alice = generate(SignalKind::Speech, 0.3, sr, 10);
        let bob = generate(SignalKind::Speech, 0.3, sr, 20);

        let rec_alice = record_plane_wave(&renderer, &ms, 30.0, &alice, 3);
        let rec_bob = record_plane_wave(&renderer, &ms, 130.0, &bob, 4);

        let e = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>();
        // Input SIR at the ears (mixture is linear; compute per-source).
        let in_sir =
            (e(&rec_alice.left) + e(&rec_alice.right)) / (e(&rec_bob.left) + e(&rec_bob.right));
        // Output SIR after steering at Alice.
        let out_alice = beamform(&rec_alice, &bank, 30.0);
        let out_bob = beamform(&rec_bob, &bank, 30.0);
        let out_sir = e(&out_alice.enhanced) / e(&out_bob.enhanced);
        assert!(
            out_sir > in_sir,
            "beamformer did not improve SIR: {out_sir:.3} vs {in_sir:.3}"
        );
    }

    #[test]
    fn enhanced_output_nonempty_and_finite() {
        let (cfg, renderer, bank) = setup();
        let ms = MeasurementSetup::anechoic(cfg.render.sample_rate, 40.0);
        let sig = generate(SignalKind::Music, 0.1, cfg.render.sample_rate, 30);
        let rec = record_plane_wave(&renderer, &ms, 90.0, &sig, 5);
        let out = beamform(&rec, &bank, 90.0);
        assert!(!out.enhanced.is_empty());
        assert!(out.enhanced.iter().all(|v| v.is_finite()));
    }
}
