//! Batch personalization: many subjects concurrently.
//!
//! Fans independent subjects across the `uniq-par` pool. Each subject's
//! pipeline is pure given its seed, and outcomes are reduced in seed
//! order, so a batch at any thread count produces bit-identical HRTFs —
//! [`hrtf_fingerprint`] condenses that contract into one comparable
//! number, and [`scaling_sweep`] checks it while measuring throughput.

use crate::config::UniqConfig;
use crate::pipeline::{personalize_with_retry, PersonalizationError, PersonalizationResult};
use uniq_obs::{names, Stopwatch};
use uniq_subjects::Subject;

/// The outcome of one subject's personalization inside a batch, tagged
/// with the subject's identity (its seed) so failures point at the exact
/// subject — never a generic join error.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Seed identifying the synthetic subject (drives anatomy, gesture,
    /// and noise).
    pub seed: u64,
    /// The personalization result or the per-subject error (which itself
    /// carries stop identity for session failures).
    pub result: Result<PersonalizationResult, PersonalizationError>,
    /// Wall-clock time this subject took, seconds.
    pub seconds: f64,
}

/// Personalizes one subject per seed, fanning subjects across a pool of
/// `threads` workers (`0` = auto). Outcomes come back in seed order.
///
/// Within the batch each subject runs with `cfg.threads` for its own
/// inner parallelism; pass a config with `threads: 1` (as the CLI does)
/// to give every worker exactly one subject and avoid oversubscription.
pub fn personalize_batch(
    seeds: &[u64],
    cfg: &UniqConfig,
    threads: usize,
    max_attempts: usize,
) -> Vec<BatchOutcome> {
    // One trace for the whole batch, derived from the seed list; the
    // per-subject `personalize` trace guards become no-ops beneath it.
    let _trace = uniq_obs::trace(
        seeds
            .iter()
            .fold(0x0062_6174_6368_u64, |h, &s| h.rotate_left(5) ^ s),
    );
    let _span = uniq_obs::span(uniq_obs::names::SPAN_BATCH);
    let pool = uniq_par::pool(threads);
    let ctx = uniq_obs::capture();
    let outcomes = pool.par_map_chunked(seeds, 1, |&seed| {
        ctx.run_indexed(seed, || {
            let sw = Stopwatch::start();
            let subject = Subject::from_seed(seed);
            let result = personalize_with_retry(&subject, cfg, seed, max_attempts);
            let seconds = sw.elapsed_seconds();
            uniq_obs::metric(names::BATCH_SUBJECT_SECONDS, seconds, "s");
            if result.is_err() {
                uniq_obs::counter(names::BATCH_FAILURES, 1);
            }
            BatchOutcome {
                seed,
                result,
                seconds,
            }
        })
    });
    uniq_obs::counter(names::BATCH_SUBJECTS, outcomes.len() as u64);
    outcomes
}

/// Incremental FNV-1a 64 digest over 64-bit words, the shared primitive
/// behind every determinism fingerprint in the workspace. Exposed so
/// other layers (e.g. the artifact store) can reproduce a result's
/// fingerprint from serialized fields and prove bit-exact round trips.
#[derive(Debug, Clone)]
pub struct FingerprintBuilder {
    h: u64,
}

impl FingerprintBuilder {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh digest at the FNV offset basis.
    pub fn new() -> FingerprintBuilder {
        FingerprintBuilder {
            h: Self::FNV_OFFSET,
        }
    }

    /// Folds one 64-bit word, byte by byte, little-endian.
    pub fn eat(&mut self, bits: u64) {
        for byte in bits.to_le_bytes() {
            self.h = (self.h ^ u64::from(byte)).wrapping_mul(Self::FNV_PRIME);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.h
    }
}

impl Default for FingerprintBuilder {
    fn default() -> Self {
        FingerprintBuilder::new()
    }
}

/// Folds one successful personalization's numeric output into `fp`
/// exactly as [`hrtf_fingerprint`] digests it: seed, radius bits,
/// attempts, localization pairs, then every HRIR sample of each ear pair
/// (near bank first, then far; left ear then right). Callers that hold
/// the result in a different representation (e.g. a decoded `.uhrtf`
/// artifact) use this to recompute the identical fingerprint.
pub fn fold_result_parts<'a>(
    fp: &mut FingerprintBuilder,
    seed: u64,
    radius_m: f64,
    attempts: u64,
    localization: &[(f64, f64)],
    ears: impl IntoIterator<Item = (&'a [f64], &'a [f64])>,
) {
    fp.eat(seed);
    fp.eat(radius_m.to_bits());
    fp.eat(attempts);
    for &(truth, est) in localization {
        fp.eat(truth.to_bits());
        fp.eat(est.to_bits());
    }
    for (left, right) in ears {
        for &v in left.iter().chain(right) {
            fp.eat(v.to_bits());
        }
    }
}

/// FNV-1a fingerprint of every successful outcome's numeric output (near
/// and far HRIR bits, radius, localization estimates), folded in seed
/// order. Two batches over the same seeds agree on this number if and
/// only if they produced bit-identical HRTFs — the determinism contract
/// a thread-count change must preserve.
pub fn hrtf_fingerprint(outcomes: &[BatchOutcome]) -> u64 {
    let mut fp = FingerprintBuilder::new();
    for outcome in outcomes {
        let Ok(result) = &outcome.result else {
            fp.eat(outcome.seed);
            fp.eat(u64::MAX);
            continue;
        };
        fold_result_parts(
            &mut fp,
            outcome.seed,
            result.radius_m,
            result.attempts as u64,
            &result.localization,
            [result.hrtf.near(), result.hrtf.far()]
                .into_iter()
                .flat_map(|bank| bank.irs().iter())
                .map(|ir| (ir.left.as_slice(), ir.right.as_slice())),
        );
    }
    fp.finish()
}

/// Throughput at one pool size, from [`scaling_sweep`].
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Pool size measured.
    pub threads: usize,
    /// Wall-clock time for the whole batch, seconds.
    pub seconds: f64,
    /// Subjects personalized per second.
    pub subjects_per_second: f64,
    /// [`hrtf_fingerprint`] of the outcomes at this pool size.
    pub fingerprint: u64,
}

/// A thread-scaling measurement: the same batch re-run at several pool
/// sizes.
#[derive(Debug, Clone)]
pub struct ScalingReport {
    /// Number of subjects per run.
    pub subjects: usize,
    /// One entry per measured pool size, in the order given.
    pub points: Vec<ScalingPoint>,
    /// Whether every pool size produced the same [`hrtf_fingerprint`]
    /// (the bit-identity contract).
    pub deterministic: bool,
}

/// Runs the same batch at each pool size in `thread_counts`, recording
/// wall-clock throughput and the per-run output fingerprint.
pub fn scaling_sweep(
    seeds: &[u64],
    cfg: &UniqConfig,
    thread_counts: &[usize],
    max_attempts: usize,
) -> ScalingReport {
    let mut points = Vec::with_capacity(thread_counts.len());
    for &threads in thread_counts {
        let sw = Stopwatch::start();
        let outcomes = personalize_batch(seeds, cfg, threads, max_attempts);
        let seconds = sw.elapsed_seconds();
        points.push(ScalingPoint {
            threads,
            seconds,
            subjects_per_second: seeds.len() as f64 / seconds.max(1e-12),
            fingerprint: hrtf_fingerprint(&outcomes),
        });
    }
    let deterministic = points
        .windows(2)
        .all(|w| w[0].fingerprint == w[1].fingerprint);
    ScalingReport {
        subjects: seeds.len(),
        points,
        deterministic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> UniqConfig {
        UniqConfig {
            in_room: false,
            snr_db: 45.0,
            grid_step_deg: 15.0,
            threads: 1,
            ..UniqConfig::fast_test()
        }
    }

    #[test]
    fn batch_outcomes_are_seed_ordered_and_tagged() {
        let seeds = [70, 71, 72];
        let out = personalize_batch(&seeds, &cfg(), 2, 2);
        assert_eq!(out.len(), 3);
        for (outcome, &seed) in out.iter().zip(&seeds) {
            assert_eq!(outcome.seed, seed);
            assert!(outcome.seconds > 0.0);
        }
    }

    #[test]
    fn fingerprint_is_stable_across_thread_counts() {
        let seeds = [70, 71];
        let c = cfg();
        let a = hrtf_fingerprint(&personalize_batch(&seeds, &c, 1, 2));
        let b = hrtf_fingerprint(&personalize_batch(&seeds, &c, 4, 2));
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_distinguishes_different_batches() {
        let c = cfg();
        let a = hrtf_fingerprint(&personalize_batch(&[70], &c, 1, 2));
        let b = hrtf_fingerprint(&personalize_batch(&[71], &c, 1, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn scaling_sweep_reports_determinism() {
        let report = scaling_sweep(&[70, 71], &cfg(), &[1, 2], 2);
        assert_eq!(report.subjects, 2);
        assert_eq!(report.points.len(), 2);
        assert!(report.deterministic);
    }
}
