//! Channel estimation from binaural recordings.
//!
//! Recovers the acoustic channel (the raw HRIR plus room taps) from what
//! the earphones recorded, then applies UNIQ's two §4.6 pre-processing
//! steps: system-response compensation and room-echo time gating. The
//! result carries the sub-sample first-tap positions that drive the
//! sensor-fusion geometry (Fig 9: "we are interested only in the first
//! peaks at the two ears").

use crate::config::UniqConfig;
use uniq_acoustics::measure::BinauralRecording;
use uniq_acoustics::types::BinauralIr;
use uniq_dsp::deconv::wiener_deconvolve_batch;
use uniq_dsp::peaks::{first_tap, truncate_after};

/// An estimated, cleaned binaural channel.
#[derive(Debug, Clone)]
pub struct EstimatedChannel {
    /// The gated (room-echo-free) binaural impulse response.
    pub ir: BinauralIr,
    /// Sub-sample first-tap position of the left channel, samples.
    pub tap_left: f64,
    /// Sub-sample first-tap position of the right channel, samples.
    pub tap_right: f64,
}

impl EstimatedChannel {
    /// Relative first-tap delay (right minus left), samples — the Δt of
    /// Eq. 1.
    pub fn relative_delay(&self) -> f64 {
        self.tap_right - self.tap_left
    }

    /// Converts a first-tap position to a propagation path length in
    /// metres, removing the known synchronization base delay.
    pub fn tap_to_metres(tap_samples: f64, cfg: &UniqConfig) -> f64 {
        (tap_samples / cfg.render.sample_rate - cfg.render.base_delay) * cfg.render.speed_of_sound
    }
}

/// First-tap SNR in dB: the channel's peak amplitude at/after the tap
/// against the RMS of everything strictly before it. Returns `None` when
/// there are no pre-tap samples or the floor is exactly zero (noise-free
/// synthetic channels have no meaningful SNR).
pub(crate) fn first_tap_snr_db(sig: &[f64], tap_position: f64) -> Option<f64> {
    let cut = (tap_position.floor() as usize).min(sig.len());
    // Leave a guard of a few samples before the tap out of the floor: the
    // tap's own rising edge is signal, not noise.
    let floor_end = cut.saturating_sub(4);
    if floor_end == 0 {
        return None;
    }
    let floor_rms = (sig[..floor_end].iter().map(|v| v * v).sum::<f64>() / floor_end as f64).sqrt();
    if floor_rms <= 0.0 {
        return None;
    }
    let peak = sig[cut..]
        .iter()
        .map(|v| v.abs())
        .fold(0.0f64, f64::max)
        .max(sig.get(cut).map(|v| v.abs()).unwrap_or(0.0));
    if peak <= 0.0 {
        return None;
    }
    Some(20.0 * (peak / floor_rms).log10())
}

/// Quality score floor and ceiling of the first-tap SNR component, dB.
/// Below `SNR_FLOOR_DB` a tap is indistinguishable from the noise floor
/// (score 0); at or above `SNR_FULL_DB` the estimate is as good as a clean
/// capture gets (score exactly 1, so healthy stops keep unit weight in the
/// re-weighted fusion and the clean path stays bit-identical).
const QUALITY_SNR_FLOOR_DB: f64 = 3.0;
const QUALITY_SNR_FULL_DB: f64 = 18.0;

/// Longest physically plausible first-tap path difference between the two
/// ears, metres. The anthropometric box tops out near 0.15 m half-width;
/// with diffraction wrap no real geometry exceeds this — a larger |Δt|
/// means the taps latched onto noise or clipping artefacts.
const QUALITY_MAX_ITD_PATH_M: f64 = 0.40;

/// Per-stop quality of an estimated channel, `[0, 1]`.
///
/// Used by the degradation policy of faulted sessions to decide which
/// stops to keep and how to weight them in fusion. The score is `1.0` for
/// any healthy capture (SNR saturates well below clean operating points),
/// so scoring a clean session never perturbs it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopQuality {
    /// Worst-ear first-tap SNR, dB (`None` when no pre-tap floor exists —
    /// treated as clean).
    pub snr_db: Option<f64>,
    /// Whether the inter-ear tap delay is physically plausible.
    pub itd_ok: bool,
    /// Combined score in `[0, 1]`.
    pub score: f64,
}

/// Scores an estimated channel: first-tap SNR (worst ear) mapped onto
/// `[0, 1]`, zeroed outright when the inter-ear delay is physically
/// impossible for any head in the anthropometric box.
pub fn stop_quality(channel: &EstimatedChannel, cfg: &UniqConfig) -> StopQuality {
    let left = first_tap_snr_db(&channel.ir.left, channel.tap_left);
    let right = first_tap_snr_db(&channel.ir.right, channel.tap_right);
    let snr_db = match (left, right) {
        (Some(l), Some(r)) => Some(l.min(r)),
        (Some(v), None) | (None, Some(v)) => Some(v),
        (None, None) => None,
    };
    let snr_score = match snr_db {
        // No measurable floor = synthetic/noise-free channel: clean.
        None => 1.0,
        Some(snr) => ((snr - QUALITY_SNR_FLOOR_DB) / (QUALITY_SNR_FULL_DB - QUALITY_SNR_FLOOR_DB))
            .clamp(0.0, 1.0),
    };
    let itd_path_m =
        (channel.relative_delay() / cfg.render.sample_rate * cfg.render.speed_of_sound).abs();
    let itd_ok = itd_path_m <= QUALITY_MAX_ITD_PATH_M;
    StopQuality {
        snr_db,
        itd_ok,
        score: if itd_ok { snr_score } else { 0.0 },
    }
}

/// Errors from channel estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// No tap rose above the detection threshold in one or both ears.
    NoFirstTap,
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::NoFirstTap => write!(f, "no detectable first tap in the channel"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// Estimates the binaural channel from a recording of `probe`.
///
/// Steps: Wiener deconvolution per ear → system-response compensation
/// (using `system_ir` from calibration) → first-tap detection → room-echo
/// gating `room_gate_s` after the earlier first tap.
pub fn estimate_channel(
    recording: &BinauralRecording,
    probe: &[f64],
    system_ir: &[f64],
    cfg: &UniqConfig,
) -> Result<EstimatedChannel, ChannelError> {
    let _span = uniq_obs::span(uniq_obs::names::SPAN_CHANNEL_ESTIMATE);
    // The two ears deconvolve independently; batch them through the pool
    // (same arithmetic as two sequential `wiener_deconvolve` calls, so the
    // result is bit-identical at any thread count).
    let pool = uniq_par::pool(cfg.threads);
    let mut raw = wiener_deconvolve_batch(
        &[recording.left.as_slice(), recording.right.as_slice()],
        probe,
        cfg.deconv_noise_floor,
        cfg.channel_len,
        &pool,
    );
    // uniq-analyzer: allow(panic-safety) — par_map returns exactly one output per input; the batch above has two
    let raw_right = raw.pop().expect("batch of two");
    // uniq-analyzer: allow(panic-safety) — same two-element batch; second pop cannot fail
    let raw_left = raw.pop().expect("batch of two");

    let comp_left =
        uniq_acoustics::system::compensate_response(&raw_left, system_ir, cfg.deconv_noise_floor);
    let comp_right =
        uniq_acoustics::system::compensate_response(&raw_right, system_ir, cfg.deconv_noise_floor);

    let tl = first_tap(&comp_left, cfg.tap_threshold).ok_or(ChannelError::NoFirstTap)?;
    let tr = first_tap(&comp_right, cfg.tap_threshold).ok_or(ChannelError::NoFirstTap)?;

    if uniq_obs::enabled() {
        // First-tap SNR: tap amplitude against the RMS of the pre-tap
        // noise floor. Diagnostic only — gated so the disabled path does
        // no extra passes over the channel.
        for (sig, tap) in [(&comp_left, &tl), (&comp_right, &tr)] {
            if let Some(snr) = first_tap_snr_db(sig, tap.position) {
                uniq_obs::metric(uniq_obs::names::CHANNEL_FIRST_TAP_SNR_DB, snr, "dB");
            }
        }
    }

    // Gate room reflections: keep `room_gate_s` after the earlier tap.
    let gate =
        (tl.position.min(tr.position) + cfg.room_gate_s * cfg.render.sample_rate).ceil() as usize;
    let mut left = comp_left;
    let mut right = comp_right;
    let gate_l = gate.min(left.len());
    truncate_after(&mut left, gate_l);
    let gate_r = gate.min(right.len());
    truncate_after(&mut right, gate_r);

    Ok(EstimatedChannel {
        ir: BinauralIr::new(left, right),
        tap_left: tl.position,
        tap_right: tr.position,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_acoustics::measure::{record_point_source, MeasurementSetup};
    use uniq_acoustics::pinna::PinnaModel;
    use uniq_acoustics::render::Renderer;
    use uniq_geometry::diffraction::path_to_ear;
    use uniq_geometry::{Ear, HeadBoundary, HeadParams, Vec2};

    fn cfg() -> UniqConfig {
        UniqConfig::fast_test()
    }

    fn renderer(c: &UniqConfig) -> Renderer {
        Renderer::new(
            HeadBoundary::new(HeadParams::average_adult(), 1024),
            PinnaModel::from_seed(31),
            PinnaModel::from_seed(32),
            c.render,
        )
    }

    fn calibrated_system(c: &UniqConfig) -> (MeasurementSetup, Vec<f64>) {
        let setup = MeasurementSetup::anechoic(c.render.sample_rate, c.snr_db);
        let sys_ir = setup.system.calibrate(&c.probe(), 256);
        (setup, sys_ir)
    }

    #[test]
    fn recovers_geometric_taps() {
        let c = cfg();
        let r = renderer(&c);
        let (setup, sys_ir) = calibrated_system(&c);
        let src = Vec2::new(-0.4, 0.15);
        let rec = record_point_source(&r, &setup, src, &c.probe(), 1).unwrap();
        let est = estimate_channel(&rec, &c.probe(), &sys_ir, &c).unwrap();

        let pl = path_to_ear(r.boundary(), src, Ear::Left).unwrap();
        let pr = path_to_ear(r.boundary(), src, Ear::Right).unwrap();
        let expect_l = c.render.metres_to_samples(pl.length);
        let expect_r = c.render.metres_to_samples(pr.length);
        assert!(
            (est.tap_left - expect_l).abs() < 2.0,
            "left tap {} vs {expect_l}",
            est.tap_left
        );
        assert!(
            (est.tap_right - expect_r).abs() < 2.0,
            "right tap {} vs {expect_r}",
            est.tap_right
        );
    }

    #[test]
    fn relative_delay_sign_follows_side() {
        let c = cfg();
        let r = renderer(&c);
        let (setup, sys_ir) = calibrated_system(&c);
        // Source on the left → right tap later → positive relative delay.
        let rec = record_point_source(&r, &setup, Vec2::new(-0.45, 0.0), &c.probe(), 2).unwrap();
        let est = estimate_channel(&rec, &c.probe(), &sys_ir, &c).unwrap();
        assert!(est.relative_delay() > 5.0, "Δt = {}", est.relative_delay());
    }

    #[test]
    fn room_echoes_are_gated_out() {
        let c = cfg();
        let r = renderer(&c);
        let setup = MeasurementSetup::home(c.render.sample_rate, c.snr_db);
        let sys_ir = setup.system.calibrate(&c.probe(), 256);
        let src = Vec2::new(-0.4, 0.1);
        let rec = record_point_source(&r, &setup, src, &c.probe(), 3).unwrap();
        let est = estimate_channel(&rec, &c.probe(), &sys_ir, &c).unwrap();

        // Everything after the gate must be zero.
        let gate =
            (est.tap_left.min(est.tap_right) + c.room_gate_s * c.render.sample_rate) as usize;
        let tail: f64 = est.ir.left[gate + 1..].iter().map(|v| v * v).sum();
        assert_eq!(tail, 0.0);

        // And the gated channel should match the anechoic channel's taps.
        let dry_setup = MeasurementSetup::anechoic(c.render.sample_rate, 80.0);
        let dry_sys = dry_setup.system.calibrate(&c.probe(), 256);
        let dry_rec = record_point_source(&r, &dry_setup, src, &c.probe(), 4).unwrap();
        let dry = estimate_channel(&dry_rec, &c.probe(), &dry_sys, &c).unwrap();
        assert!(
            (est.tap_left - dry.tap_left).abs() < 1.0,
            "room shifted the first tap: {} vs {}",
            est.tap_left,
            dry.tap_left
        );
    }

    #[test]
    fn tap_to_metres_roundtrip() {
        let c = cfg();
        // A tap at base_delay + 1 ms of flight = 0.343 m.
        let tap = (c.render.base_delay + 0.001) * c.render.sample_rate;
        let m = EstimatedChannel::tap_to_metres(tap, &c);
        assert!((m - 0.343).abs() < 1e-9);
    }

    #[test]
    fn first_tap_snr_reflects_floor() {
        // Noise floor at RMS 0.01, tap peak 1.0 at sample 100 → 40 dB.
        let mut sig = vec![0.0; 200];
        for (k, v) in sig.iter_mut().enumerate().take(90) {
            *v = if k % 2 == 0 { 0.01 } else { -0.01 };
        }
        sig[100] = 1.0;
        let snr = super::first_tap_snr_db(&sig, 100.0).unwrap();
        assert!((snr - 40.0).abs() < 1.0, "snr {snr}");
        // No pre-tap samples → no SNR.
        assert_eq!(super::first_tap_snr_db(&sig, 0.0), None);
        // Zero floor → no SNR.
        let clean = {
            let mut s = vec![0.0; 64];
            s[32] = 1.0;
            s
        };
        assert_eq!(super::first_tap_snr_db(&clean, 32.0), None);
    }

    #[test]
    fn stop_quality_saturates_for_clean_captures() {
        let c = cfg();
        let r = renderer(&c);
        let (setup, sys_ir) = calibrated_system(&c);
        let rec = record_point_source(&r, &setup, Vec2::new(-0.4, 0.15), &c.probe(), 1).unwrap();
        let est = estimate_channel(&rec, &c.probe(), &sys_ir, &c).unwrap();
        let q = stop_quality(&est, &c);
        assert!(q.itd_ok);
        assert_eq!(
            q.score, 1.0,
            "clean capture must score exactly 1.0 (snr {:?})",
            q.snr_db
        );
    }

    #[test]
    fn stop_quality_zeroes_impossible_itd() {
        let c = cfg();
        let mut ir = vec![0.0; 512];
        ir[40] = 1.0;
        let est = EstimatedChannel {
            ir: BinauralIr::new(ir.clone(), ir),
            tap_left: 40.0,
            // Δt of 200 samples ≈ 1.4 m of path difference: impossible.
            tap_right: 240.0,
        };
        let q = stop_quality(&est, &c);
        assert!(!q.itd_ok);
        assert_eq!(q.score, 0.0);
    }

    #[test]
    fn silent_recording_fails_cleanly() {
        let c = cfg();
        let rec = BinauralRecording {
            left: vec![0.0; 4096],
            right: vec![0.0; 4096],
        };
        let sys_ir = {
            let setup = MeasurementSetup::anechoic(c.render.sample_rate, c.snr_db);
            setup.system.calibrate(&c.probe(), 256)
        };
        let err = estimate_channel(&rec, &c.probe(), &sys_ir, &c).unwrap_err();
        assert_eq!(err, ChannelError::NoFirstTap);
    }
}
