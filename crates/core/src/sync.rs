//! Phone–earphone clock synchronization.
//!
//! The paper's fusion uses *absolute* first-tap delays, which presumes the
//! phone's playback clock and the earphone's recording clock share a time
//! origin ("the phone and the earphones are synchronized"). Real devices
//! have an unknown, stable offset (driver latency, Bluetooth buffering).
//! This module estimates that offset with a one-touch calibration: the
//! user holds the phone against an earbud and plays the probe once; the
//! first tap's deviation from the expected contact-distance delay *is*
//! the offset.

use crate::config::UniqConfig;
use uniq_acoustics::measure::BinauralRecording;
use uniq_dsp::deconv::wiener_deconvolve;
use uniq_dsp::peaks::first_tap;

/// Assumed phone-to-ear distance during the touch calibration, metres
/// (the phone's speaker rests a couple of centimetres from the ear).
pub const CONTACT_DISTANCE_M: f64 = 0.02;

/// An estimated clock offset.
#[derive(Debug, Clone, Copy)]
pub struct ClockOffset {
    /// Offset in seconds: recording-clock time minus playback-clock time.
    pub offset_s: f64,
    /// Which ear was used for the touch calibration.
    pub strong_left: bool,
}

impl ClockOffset {
    /// Converts a raw first-tap position (samples) into a propagation path
    /// length (metres) using this offset instead of an assumed base delay.
    pub fn tap_to_metres(&self, tap_samples: f64, cfg: &UniqConfig) -> f64 {
        (tap_samples / cfg.render.sample_rate - self.offset_s) * cfg.render.speed_of_sound
    }
}

/// Estimates the clock offset from a touch-calibration recording: the
/// probe played while the phone touches one earbud.
///
/// Returns `None` when no tap is detectable (e.g. the user didn't hold the
/// phone to the ear).
pub fn estimate_clock_offset(
    recording: &BinauralRecording,
    probe: &[f64],
    cfg: &UniqConfig,
) -> Option<ClockOffset> {
    // Clock offsets can exceed the normal channel window (Bluetooth
    // buffering reaches tens of milliseconds), so deconvolve a wide view.
    let window = cfg.channel_len.max((0.1 * cfg.render.sample_rate) as usize);
    let ch_left = wiener_deconvolve(&recording.left, probe, cfg.deconv_noise_floor, window);
    let ch_right = wiener_deconvolve(&recording.right, probe, cfg.deconv_noise_floor, window);
    // The touched ear dominates in energy; use its first tap.
    let e_left: f64 = ch_left.iter().map(|v| v * v).sum();
    let e_right: f64 = ch_right.iter().map(|v| v * v).sum();
    let strong_left = e_left >= e_right;
    let tap = first_tap(
        if strong_left { &ch_left } else { &ch_right },
        cfg.tap_threshold,
    )?;
    let flight_s = CONTACT_DISTANCE_M / cfg.render.speed_of_sound;
    Some(ClockOffset {
        offset_s: tap.position / cfg.render.sample_rate - flight_s,
        strong_left,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_dsp::conv::convolve;
    use uniq_dsp::delay::add_fractional_impulse;

    fn cfg() -> UniqConfig {
        UniqConfig::fast_test()
    }

    /// Synthesizes a touch recording with a known extra clock offset on
    /// top of the configured base delay.
    fn touch_recording(c: &UniqConfig, extra_offset_s: f64, left: bool) -> BinauralRecording {
        let sr = c.render.sample_rate;
        let total_delay = (c.render.base_delay + extra_offset_s + CONTACT_DISTANCE_M / 343.0) * sr;
        let mut ir = vec![0.0; 1024];
        add_fractional_impulse(&mut ir, total_delay, 1.0);
        let strong = convolve(&c.probe(), &ir);
        let weak: Vec<f64> = strong.iter().map(|v| v * 0.02).collect();
        if left {
            BinauralRecording {
                left: strong,
                right: weak,
            }
        } else {
            BinauralRecording {
                left: weak,
                right: strong,
            }
        }
    }

    #[test]
    fn recovers_known_offset() {
        let c = cfg();
        for extra in [0.0, 0.002, 0.01] {
            let rec = touch_recording(&c, extra, true);
            let est = estimate_clock_offset(&rec, &c.probe(), &c).unwrap();
            let expect = c.render.base_delay + extra;
            assert!(
                (est.offset_s - expect).abs() < 2.0 / c.render.sample_rate,
                "extra {extra}: got {}, want {expect}",
                est.offset_s
            );
            assert!(est.strong_left);
        }
    }

    #[test]
    fn picks_the_touched_ear() {
        let c = cfg();
        let rec = touch_recording(&c, 0.001, false);
        let est = estimate_clock_offset(&rec, &c.probe(), &c).unwrap();
        assert!(!est.strong_left);
    }

    #[test]
    fn offset_corrected_taps_match_geometry() {
        // With the estimated offset, tap_to_metres should reproduce the
        // same distances as the built-in base-delay assumption.
        let c = cfg();
        let rec = touch_recording(&c, 0.0, true);
        let est = estimate_clock_offset(&rec, &c.probe(), &c).unwrap();
        let tap = (c.render.base_delay + 0.4 / 343.0) * c.render.sample_rate;
        let via_offset = est.tap_to_metres(tap, &c);
        let via_config = crate::channel::EstimatedChannel::tap_to_metres(tap, &c);
        assert!(
            (via_offset - via_config).abs() < 0.01,
            "{via_offset} vs {via_config}"
        );
    }

    #[test]
    fn silence_yields_none() {
        let c = cfg();
        let rec = BinauralRecording {
            left: vec![0.0; 4096],
            right: vec![0.0; 4096],
        };
        assert!(estimate_clock_offset(&rec, &c.probe(), &c).is_none());
    }
}
