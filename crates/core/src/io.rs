//! HRTF table serialization — the §4.4 export interface.
//!
//! "The near and far-field HRTFs estimated by UNIQ can now be exported to
//! earphone applications as a lookup table." This module defines that
//! table as a simple, versioned, line-oriented text format (`.uniqhrtf`)
//! with a writer and a strict parser, so a personalization run on one
//! device can ship its result to any playback application.
//!
//! Format:
//!
//! ```text
//! UNIQHRTF 1
//! sample_rate 48000
//! head 0.075 0.100 0.090
//! ir_len 512
//! near <angle> <left samples…> <right samples…>    (one line per angle)
//! far  <angle> <left samples…> <right samples…>
//! ```

use crate::hrtf::PersonalHrtf;
use std::fmt::Write as _;
use uniq_acoustics::types::{BinauralIr, HrirBank};
use uniq_geometry::HeadParams;

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Errors from parsing a serialized table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Missing or malformed magic/version line.
    BadHeader(String),
    /// A structural field is missing or malformed.
    BadField(String),
    /// An HRIR line is malformed (wrong arity, non-numeric sample, …).
    BadEntry(String),
    /// The file parsed but describes an inconsistent table.
    Inconsistent(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader(s) => write!(f, "bad header: {s}"),
            ParseError::BadField(s) => write!(f, "bad field: {s}"),
            ParseError::BadEntry(s) => write!(f, "bad entry: {s}"),
            ParseError::Inconsistent(s) => write!(f, "inconsistent table: {s}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes a personalized HRTF to the `.uniqhrtf` text format.
///
/// ```no_run
/// use uniq_core::{config::UniqConfig, pipeline::personalize};
/// use uniq_subjects::Subject;
/// let hrtf = personalize(&Subject::from_seed(1), &UniqConfig::default(), 1)
///     .unwrap()
///     .hrtf;
/// let text = uniq_core::io::to_string(&hrtf);
/// let restored = uniq_core::io::from_str(&text).unwrap();
/// assert_eq!(restored.near().len(), hrtf.near().len());
/// ```
pub fn to_string(hrtf: &PersonalHrtf) -> String {
    let mut out = String::new();
    let head = hrtf.head();
    // `fmt::Write` into a String cannot fail; discard the Ok(()) rather
    // than unwrap so this path is structurally panic-free.
    let _ = writeln!(out, "UNIQHRTF {FORMAT_VERSION}");
    let _ = writeln!(out, "sample_rate {}", hrtf.sample_rate());
    let _ = writeln!(out, "head {} {} {}", head.a, head.b, head.c);
    let _ = writeln!(out, "ir_len {}", hrtf.near().irs()[0].len());
    let dump = |out: &mut String, tag: &str, bank: &HrirBank| {
        for (angle, ir) in bank.angles().iter().zip(bank.irs()) {
            let _ = write!(out, "{tag} {angle}");
            for v in ir.left.iter().chain(&ir.right) {
                let _ = write!(out, " {v}");
            }
            out.push('\n');
        }
    };
    dump(&mut out, "near", hrtf.near());
    dump(&mut out, "far", hrtf.far());
    out
}

/// Parses a `.uniqhrtf` document back into a [`PersonalHrtf`].
pub fn from_str(text: &str) -> Result<PersonalHrtf, ParseError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());

    let header = lines
        .next()
        .ok_or_else(|| ParseError::BadHeader("empty document".into()))?;
    let mut hp = header.split_whitespace();
    if hp.next() != Some("UNIQHRTF") {
        return Err(ParseError::BadHeader(format!("bad magic in {header:?}")));
    }
    let version: u32 = hp
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ParseError::BadHeader("missing version".into()))?;
    if version != FORMAT_VERSION {
        return Err(ParseError::BadHeader(format!(
            "unsupported version {version}"
        )));
    }

    let mut field = |name: &str| -> Result<Vec<f64>, ParseError> {
        let line = lines
            .next()
            .ok_or_else(|| ParseError::BadField(format!("missing {name}")))?;
        let mut parts = line.split_whitespace();
        if parts.next() != Some(name) {
            return Err(ParseError::BadField(format!(
                "expected {name}, got {line:?}"
            )));
        }
        parts
            .map(|v| {
                v.parse::<f64>()
                    .map_err(|_| ParseError::BadField(format!("bad number in {name}")))
            })
            .collect()
    };

    let sample_rate = field("sample_rate")?;
    let sample_rate = *sample_rate
        .first()
        .ok_or_else(|| ParseError::BadField("empty sample_rate".into()))?;
    let head_vals = field("head")?;
    if head_vals.len() != 3 {
        return Err(ParseError::BadField("head needs 3 axes".into()));
    }
    let ir_len_vals = field("ir_len")?;
    let ir_len = *ir_len_vals
        .first()
        .ok_or_else(|| ParseError::BadField("empty ir_len".into()))? as usize;
    if ir_len == 0 {
        return Err(ParseError::BadField("ir_len must be positive".into()));
    }

    let mut near: Vec<(f64, BinauralIr)> = Vec::new();
    let mut far: Vec<(f64, BinauralIr)> = Vec::new();
    for line in lines {
        let mut parts = line.split_whitespace();
        let tag = parts.next().unwrap_or("");
        let dest = match tag {
            "near" => &mut near,
            "far" => &mut far,
            other => {
                return Err(ParseError::BadEntry(format!("unknown tag {other:?}")));
            }
        };
        let nums: Result<Vec<f64>, _> = parts.map(str::parse::<f64>).collect();
        let nums =
            nums.map_err(|_| ParseError::BadEntry(format!("non-numeric sample in {line:?}")))?;
        if nums.len() != 1 + 2 * ir_len {
            return Err(ParseError::BadEntry(format!(
                "expected {} values, found {} in a {tag} entry",
                1 + 2 * ir_len,
                nums.len()
            )));
        }
        let angle = nums[0];
        let left = nums[1..1 + ir_len].to_vec();
        let right = nums[1 + ir_len..].to_vec();
        dest.push((angle, BinauralIr::new(left, right)));
    }

    if near.is_empty() || far.is_empty() {
        return Err(ParseError::Inconsistent(
            "table needs at least one near and one far entry".into(),
        ));
    }
    let head = HeadParams::new(head_vals[0], head_vals[1], head_vals[2]);
    Ok(PersonalHrtf::new(
        HrirBank::new(near, sample_rate),
        HrirBank::new(far, sample_rate),
        head,
    ))
}

/// Writes the table to a file.
///
/// # Errors
/// Propagates I/O errors.
pub fn save(hrtf: &PersonalHrtf, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, to_string(hrtf))
}

/// Loads a table from a file.
///
/// # Errors
/// Returns I/O errors as `ParseError::BadHeader` (file unreadable) and
/// format errors as their specific variants.
pub fn load(path: &std::path::Path) -> Result<PersonalHrtf, ParseError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ParseError::BadHeader(format!("cannot read {path:?}: {e}")))?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_acoustics::pinna::PinnaModel;
    use uniq_acoustics::render::Renderer;
    use uniq_acoustics::types::RenderConfig;
    use uniq_geometry::HeadBoundary;

    fn table() -> PersonalHrtf {
        let cfg = RenderConfig {
            ir_len: 256,
            ..RenderConfig::default()
        };
        let head = HeadParams::average_adult();
        let r = Renderer::new(
            HeadBoundary::new(head, 256),
            PinnaModel::from_seed(501),
            PinnaModel::from_seed(502),
            cfg,
        );
        let angles = [0.0, 45.0, 90.0, 135.0, 180.0];
        PersonalHrtf::new(
            r.near_field_bank(&angles, 0.4)
                .expect("test radius clears the head"),
            r.ground_truth_bank(&angles),
            head,
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = table();
        let text = to_string(&t);
        let back = from_str(&text).expect("parse back");
        assert_eq!(back.sample_rate(), t.sample_rate());
        assert_eq!(back.head(), t.head());
        assert_eq!(back.near().angles(), t.near().angles());
        assert_eq!(back.far().angles(), t.far().angles());
        for (a, b) in back.far().irs().iter().zip(t.far().irs()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn file_roundtrip() {
        let t = table();
        let dir = std::env::temp_dir().join("uniq_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("subject.uniqhrtf");
        save(&t, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.near().len(), t.near().len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(
            from_str("NOTHRTF 1\n"),
            Err(ParseError::BadHeader(_))
        ));
        assert!(matches!(from_str(""), Err(ParseError::BadHeader(_))));
    }

    #[test]
    fn rejects_future_version() {
        assert!(matches!(
            from_str("UNIQHRTF 99\nsample_rate 48000\n"),
            Err(ParseError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_wrong_arity() {
        let text =
            "UNIQHRTF 1\nsample_rate 48000\nhead 0.07 0.1 0.09\nir_len 4\nnear 0 1 0 0 0 1 0 0\n";
        // 1 angle + 8 samples expected; gave 7 numbers after the angle.
        assert!(matches!(from_str(text), Err(ParseError::BadEntry(_))));
    }

    #[test]
    fn rejects_unknown_tag() {
        let text = "UNIQHRTF 1\nsample_rate 48000\nhead 0.07 0.1 0.09\nir_len 1\nmid 0 1 1\n";
        assert!(matches!(from_str(text), Err(ParseError::BadEntry(_))));
    }

    #[test]
    fn rejects_empty_banks() {
        let text = "UNIQHRTF 1\nsample_rate 48000\nhead 0.07 0.1 0.09\nir_len 1\n";
        assert!(matches!(from_str(text), Err(ParseError::Inconsistent(_))));
    }

    #[test]
    fn minimal_valid_document() {
        let text = "UNIQHRTF 1\nsample_rate 48000\nhead 0.07 0.1 0.09\nir_len 2\nnear 0 1 0 0.5 0\nfar 0 1 0 0.25 0\n";
        let t = from_str(text).unwrap();
        assert_eq!(t.near().len(), 1);
        assert_eq!(t.far().irs()[0].right[0], 0.25);
    }
}
