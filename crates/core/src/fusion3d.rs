//! 3-D diffraction-aware sensor fusion — the tracking half of the §7 "3D
//! HRTF" extension: *"the motion tracking equations need to be extended to
//! 3D."*
//!
//! The measurement session becomes a serpentine spherical gesture
//! (`uniq_imu::trajectory3d`); the IMU now integrates two angles
//! `(α_az, α_el)`; the acoustics still give two path lengths `(d_L, d_R)`.
//! Two distances in 3-D constrain the phone to a 1-D curve (the
//! intersection of two iso-distance surfaces), so — exactly as the paper
//! anticipates — the IMU's *elevation* angle becomes load-bearing rather
//! than a mere front/back disambiguator: localization minimizes the
//! distance residuals with a weak angular prior toward the IMU hints, and
//! the head fit extends to four parameters `(a, b, c, h)`.

use crate::channel::{estimate_channel, ChannelError, EstimatedChannel};
use crate::config::UniqConfig;
use uniq_acoustics::measure::{BinauralRecording, MeasurementSetup};
use uniq_acoustics::render3d::Renderer3;
use uniq_dsp::conv::convolve;
use uniq_geometry::elevation::{path_to_ear_3d_res, Head3, Vec3};
use uniq_geometry::vec2::angle_diff_deg;
use uniq_geometry::{Ear, HeadParams};
use uniq_imu::gyro::integrate_rates;
use uniq_imu::trajectory3d::{generate_spherical, spherical_stops, SphericalPlan};
use uniq_optim::{nelder_mead, NelderMeadOptions};
use uniq_subjects::Subject;

/// Cross-section resolution used by the 3-D inverse solver.
const INVERSE_SECTION: usize = 128;

/// One spherical stop's fusion inputs.
#[derive(Debug, Clone, Copy)]
pub struct FusionInput3 {
    /// IMU-integrated azimuth orientation, degrees.
    pub alpha_az_deg: f64,
    /// IMU-integrated elevation orientation, degrees.
    pub alpha_el_deg: f64,
    /// First-tap path length to the left ear, metres.
    pub d_left_m: f64,
    /// First-tap path length to the right ear, metres.
    pub d_right_m: f64,
}

/// A localized stop in 3-D.
#[derive(Debug, Clone, Copy)]
pub struct Localized3 {
    /// Azimuth, degrees.
    pub theta_deg: f64,
    /// Elevation, degrees.
    pub elevation_deg: f64,
    /// Radius, metres.
    pub radius_m: f64,
    /// Distance residual at the solution, metres.
    pub residual_m: f64,
}

/// 3-D fusion output.
#[derive(Debug, Clone)]
pub struct FusionResult3 {
    /// Fitted four-parameter head `(a, b, c, h)`.
    pub head: Head3,
    /// Per-stop localizations.
    pub stops: Vec<Localized3>,
    /// Mean combined angular residual `|α − θ(E)|`, degrees.
    pub mean_residual_deg: f64,
}

/// Localizes the phone in 3-D under a head hypothesis: minimizes the
/// squared distance residuals with a weak prior toward the IMU hints
/// (which selects a point on the 1-D ambiguity curve).
///
/// Returns `None` when the optimizer cannot reach a residual below one
/// sample of path length (~7 mm at 48 kHz).
pub fn localize_phone_3d(head: &Head3, input: &FusionInput3) -> Option<Localized3> {
    // Decision variables: (azimuth°, elevation°, radius m).
    let objective = |x: &[f64]| -> f64 {
        let (az, el, r) = (x[0], x[1], x[2]);
        if !(0.1..2.0).contains(&r) || !(-80.0..80.0).contains(&el) {
            return f64::INFINITY;
        }
        let pos = Vec3::from_angles(az, el).scale(r);
        let dl = match path_to_ear_3d_res(head, pos, Ear::Left, INVERSE_SECTION) {
            Some(p) => p.length,
            None => return f64::INFINITY,
        };
        let dr = match path_to_ear_3d_res(head, pos, Ear::Right, INVERSE_SECTION) {
            Some(p) => p.length,
            None => return f64::INFINITY,
        };
        let dist_term = (dl - input.d_left_m).powi(2) + (dr - input.d_right_m).powi(2);
        // Weak prior (metres²-per-degree² scale chosen so a 10° deviation
        // costs about as much as a 3 mm distance residual).
        let prior = 1e-7
            * (angle_diff_deg(az, input.alpha_az_deg).powi(2) + (el - input.alpha_el_deg).powi(2));
        dist_term + prior
    };

    let r0 = 0.5 * (input.d_left_m + input.d_right_m).clamp(0.2, 1.5);
    let seed = [input.alpha_az_deg, input.alpha_el_deg, r0];
    let opts = NelderMeadOptions {
        max_iter: 120,
        initial_step: 0.05,
        f_tol: 1e-12,
        x_tol: 1e-9,
    };
    let fit = nelder_mead(objective, &seed, &opts);
    if !fit.fx.is_finite() {
        return None;
    }
    // Residual without the prior.
    let pos = Vec3::from_angles(fit.x[0], fit.x[1]).scale(fit.x[2]);
    let dl = path_to_ear_3d_res(head, pos, Ear::Left, INVERSE_SECTION)?.length;
    let dr = path_to_ear_3d_res(head, pos, Ear::Right, INVERSE_SECTION)?.length;
    let residual = ((dl - input.d_left_m).powi(2) + (dr - input.d_right_m).powi(2)).sqrt();
    if residual > 0.012 {
        return None;
    }
    Some(Localized3 {
        theta_deg: fit.x[0].rem_euclid(360.0),
        elevation_deg: fit.x[1],
        radius_m: fit.x[2],
        residual_m: residual,
    })
}

/// Fits the four head parameters and localizes every stop.
///
/// Returns `None` when fewer than half the stops localize under the best
/// hypothesis.
pub fn fuse_3d(inputs: &[FusionInput3]) -> Option<FusionResult3> {
    assert!(inputs.len() >= 6, "3-D fusion needs at least 6 stops");

    let objective = |e: &[f64]| -> f64 {
        let bounds = [
            (0.050, 0.110),
            (0.060, 0.150),
            (0.060, 0.140),
            (0.070, 0.160),
        ];
        for (v, (lo, hi)) in e.iter().zip(bounds) {
            if !(lo..=hi).contains(v) {
                return f64::INFINITY;
            }
        }
        let head = Head3::new(HeadParams::new(e[0], e[1], e[2]), e[3]);
        let penalty = 30f64.powi(2);
        inputs
            .iter()
            .map(|inp| match localize_phone_3d(&head, inp) {
                Some(loc) => {
                    angle_diff_deg(loc.theta_deg, inp.alpha_az_deg).powi(2)
                        + (loc.elevation_deg - inp.alpha_el_deg).powi(2)
                }
                None => penalty,
            })
            .sum()
    };

    let avg = HeadParams::average_adult();
    let opts = NelderMeadOptions {
        max_iter: 60,
        initial_step: 0.08,
        f_tol: 1e-4,
        x_tol: 1e-5,
    };
    let fit = nelder_mead(objective, &[avg.a, avg.b, avg.c, 0.11], &opts);
    if !fit.fx.is_finite() {
        return None;
    }
    let head = Head3::new(HeadParams::new(fit.x[0], fit.x[1], fit.x[2]), fit.x[3]);

    let mut stops = Vec::new();
    let mut residual = 0.0;
    let mut ok = 0usize;
    for inp in inputs {
        match localize_phone_3d(&head, inp) {
            Some(loc) => {
                residual += angle_diff_deg(loc.theta_deg, inp.alpha_az_deg)
                    + (loc.elevation_deg - inp.alpha_el_deg).abs();
                stops.push(loc);
                ok += 1;
            }
            None => stops.push(Localized3 {
                theta_deg: inp.alpha_az_deg,
                elevation_deg: inp.alpha_el_deg,
                radius_m: f64::NAN,
                residual_m: f64::INFINITY,
            }),
        }
    }
    if ok * 2 < inputs.len() {
        return None;
    }
    Some(FusionResult3 {
        head,
        stops,
        mean_residual_deg: residual / ok as f64,
    })
}

/// One spherical measurement stop: inputs plus ground truth for
/// evaluation.
#[derive(Debug, Clone)]
pub struct StopMeasurement3 {
    /// Fusion inputs (what the pipeline may use).
    pub input: FusionInput3,
    /// Estimated channel (kept for future 3-D HRTF assembly).
    pub channel: EstimatedChannel,
    /// Ground-truth azimuth (evaluation only).
    pub truth_theta_deg: f64,
    /// Ground-truth elevation (evaluation only).
    pub truth_elevation_deg: f64,
}

/// Runs a spherical measurement session: serpentine gesture, two-axis IMU
/// integration, probe playback at each stop rendered through the 3-D
/// forward model.
///
/// # Errors
/// Returns [`ChannelError`] when a stop's channel has no detectable taps.
pub fn run_session_3d(
    subject: &Subject,
    cfg: &UniqConfig,
    per_ring: usize,
    seed: u64,
) -> Result<Vec<StopMeasurement3>, ChannelError> {
    // uniq-analyzer: allow(panic-safety) — defensive re-check: public entry points (run_session, personalize) validate first and return ConfigError
    cfg.validate().expect("invalid UniqConfig");
    let head3 = Head3::new(subject.head, 0.105 + (subject.id % 7) as f64 * 0.002);
    let renderer = Renderer3::new(
        head3,
        subject.pinna_left.clone(),
        subject.pinna_right.clone(),
        cfg.render,
    );
    let setup = MeasurementSetup::anechoic(cfg.render.sample_rate, cfg.snr_db);
    let probe = cfg.probe();
    let system_ir = setup.system.calibrate(&probe, 256);

    let plan = SphericalPlan::standard(subject.gesture);
    let traj = generate_spherical(&plan, seed);
    let dt = 1.0 / plan.imu_rate_hz;
    let az_rates: Vec<f64> = traj.iter().map(|s| s.rate_az_dps).collect();
    let el_rates: Vec<f64> = traj.iter().map(|s| s.rate_el_dps).collect();
    let az_meas = cfg.gyro.simulate(&az_rates, dt, seed.wrapping_add(1));
    let el_meas = cfg.gyro.simulate(&el_rates, dt, seed.wrapping_add(2));
    // User starts aimed at (0°, first ring elevation): the azimuth starts
    // at 0 by instruction; the first elevation is announced by the app.
    let az_int = integrate_rates(&az_meas, dt, 0.0);
    let el_int = integrate_rates(&el_meas, dt, plan.rings_deg[0]);

    let stops = spherical_stops(&traj, &plan, per_ring);
    let mut out = Vec::with_capacity(stops.len());
    for (i, stop) in stops.iter().enumerate() {
        // Index of this stop in the full trajectory (by time).
        let idx = ((stop.t / dt).round() as usize).min(traj.len() - 1);
        let ir = renderer
            .render_point(stop.pos)
            // uniq-analyzer: allow(panic-safety) — ring stops are generated on a sphere strictly outside the head radius
            .expect("gesture stays outside the head");
        let emitted = setup.system.apply(&probe);
        let mut rec = BinauralRecording {
            left: convolve(&emitted, &ir.left),
            right: convolve(&emitted, &ir.right),
        };
        add_mic_noise(&mut rec, cfg.snr_db, seed.wrapping_add(100 + i as u64));
        let channel = estimate_channel(&rec, &probe, &system_ir, cfg)?;
        out.push(StopMeasurement3 {
            input: FusionInput3 {
                alpha_az_deg: az_int[idx],
                alpha_el_deg: el_int[idx],
                d_left_m: EstimatedChannel::tap_to_metres(channel.tap_left, cfg),
                d_right_m: EstimatedChannel::tap_to_metres(channel.tap_right, cfg),
            },
            channel,
            truth_theta_deg: stop.theta_deg,
            truth_elevation_deg: stop.elevation_deg,
        });
    }
    Ok(out)
}

fn add_mic_noise(rec: &mut BinauralRecording, snr_db: f64, seed: u64) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let rms = |v: &[f64]| (v.iter().map(|x| x * x).sum::<f64>() / v.len().max(1) as f64).sqrt();
    let level = rms(&rec.left).max(rms(&rec.right));
    if level <= 0.0 {
        return;
    }
    let amp = level / 10f64.powf(snr_db / 20.0) * 3f64.sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    for v in rec.left.iter_mut().chain(rec.right.iter_mut()) {
        *v += rng.gen_range(-amp..amp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> UniqConfig {
        UniqConfig {
            in_room: false,
            snr_db: 45.0,
            ..UniqConfig::fast_test()
        }
    }

    #[test]
    fn localize_3d_recovers_clean_geometry() {
        let head = Head3::average_adult();
        for (az, el, r) in [(40.0, 15.0, 0.45), (120.0, -20.0, 0.4), (75.0, 45.0, 0.5)] {
            let pos = Vec3::from_angles(az, el).scale(r);
            let dl = path_to_ear_3d_res(&head, pos, Ear::Left, 256)
                .unwrap()
                .length;
            let dr = path_to_ear_3d_res(&head, pos, Ear::Right, 256)
                .unwrap()
                .length;
            let input = FusionInput3 {
                alpha_az_deg: az + 3.0,
                alpha_el_deg: el - 2.0,
                d_left_m: dl,
                d_right_m: dr,
            };
            let loc = localize_phone_3d(&head, &input).expect("localizes");
            assert!(
                angle_diff_deg(loc.theta_deg, az) < 5.0,
                "az {az}: got {}",
                loc.theta_deg
            );
            assert!(
                (loc.elevation_deg - el).abs() < 6.0,
                "el {el}: got {}",
                loc.elevation_deg
            );
            assert!(
                (loc.radius_m - r).abs() < 0.05,
                "r {r}: got {}",
                loc.radius_m
            );
        }
    }

    #[test]
    fn session_3d_produces_all_stops() {
        let subject = Subject::from_seed(120);
        let stops = run_session_3d(&subject, &cfg(), 5, 9).unwrap();
        assert_eq!(stops.len(), 15); // 3 rings × 5
        for s in &stops {
            assert!(s.input.d_left_m > 0.1 && s.input.d_left_m < 1.5);
        }
    }

    #[test]
    fn end_to_end_3d_fusion_tracks_the_sphere() {
        let subject = Subject::from_seed(121);
        let c = cfg();
        let stops = run_session_3d(&subject, &c, 5, 11).unwrap();
        let inputs: Vec<FusionInput3> = stops.iter().map(|s| s.input).collect();
        let fusion = fuse_3d(&inputs).expect("3-D fusion converges");

        let mut az_err = Vec::new();
        let mut el_err = Vec::new();
        for (stop, loc) in stops.iter().zip(&fusion.stops) {
            if !loc.radius_m.is_finite() {
                continue;
            }
            az_err.push(angle_diff_deg(loc.theta_deg, stop.truth_theta_deg));
            el_err.push((loc.elevation_deg - stop.truth_elevation_deg).abs());
        }
        let az_med = uniq_dsp::stats::median(&az_err);
        let el_med = uniq_dsp::stats::median(&el_err);
        assert!(az_med < 8.0, "azimuth median {az_med}°");
        assert!(el_med < 8.0, "elevation median {el_med}°");
        // The fitted planar axes should stay anthropometric.
        assert!((fusion.head.planar.a - subject.head.a).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "at least 6")]
    fn too_few_stops_rejected() {
        let head = Head3::average_adult();
        let pos = Vec3::from_angles(30.0, 0.0).scale(0.4);
        let dl = path_to_ear_3d_res(&head, pos, Ear::Left, 128)
            .unwrap()
            .length;
        let dr = path_to_ear_3d_res(&head, pos, Ear::Right, 128)
            .unwrap()
            .length;
        let input = FusionInput3 {
            alpha_az_deg: 30.0,
            alpha_el_deg: 0.0,
            d_left_m: dl,
            d_right_m: dr,
        };
        fuse_3d(&[input; 3]);
    }
}
