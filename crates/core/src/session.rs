//! The measurement session.
//!
//! Drives one full data-collection pass for a subject: generate the arm
//! gesture, simulate the phone IMU along it, and at each discrete stop
//! play the probe chirp and estimate the binaural channel from the in-ear
//! recordings. The output is exactly the three inputs the paper gives the
//! UNIQ algorithm — earphone recordings (as estimated channels), IMU
//! orientation, and the known probe — plus ground truth kept *only* for
//! evaluation.

use crate::channel::{estimate_channel, stop_quality, ChannelError, EstimatedChannel};
use crate::config::UniqConfig;
use crate::degrade::{DegradationPolicy, DegradationReport, FaultHook, StopDegradation};
use uniq_acoustics::measure::{
    record_point_source, record_point_source_injected, InjectionSite, MeasurementSetup,
    RecordingInjector,
};
use uniq_acoustics::render::Renderer;
use uniq_imu::gyro::{integrate_rates, RateInjector};
use uniq_imu::trajectory::{generate_trajectory, measurement_stops, GesturePlan, TrajectorySample};
use uniq_subjects::{Subject, FORWARD_RESOLUTION};

/// One measurement stop: what the pipeline may use, plus ground truth for
/// evaluation.
#[derive(Debug, Clone)]
pub struct StopMeasurement {
    /// IMU-integrated phone orientation α at this stop, degrees (input to
    /// fusion; noisy).
    pub alpha_deg: f64,
    /// Estimated binaural channel at this stop (input to fusion).
    pub channel: EstimatedChannel,
    /// Ground-truth polar angle (evaluation only — from the overhead
    /// camera in the paper's rig).
    pub truth_theta_deg: f64,
    /// Ground-truth polar radius (evaluation only).
    pub truth_radius_m: f64,
}

/// A completed measurement session.
#[derive(Debug, Clone)]
pub struct SessionData {
    /// Per-stop measurements, in sweep order.
    pub stops: Vec<StopMeasurement>,
    /// The calibrated speaker–microphone impulse response used for
    /// compensation.
    pub system_ir: Vec<f64>,
}

/// A measurement session failure, carrying the identity of the stop that
/// failed so batch callers can report *which* measurement went wrong
/// rather than a generic error.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The configuration failed validation before any measurement ran.
    Config(crate::config::ConfigError),
    /// Channel estimation failed at one measurement stop.
    Stop {
        /// Zero-based index of the failing stop along the sweep.
        stop: usize,
        /// The underlying channel-estimation failure.
        error: ChannelError,
    },
    /// A stop's estimate scored below the degradation policy's quality
    /// floor and the policy forbids skipping stops (faulted sessions
    /// only).
    QualityFloor {
        /// Zero-based index of the failing stop along the sweep.
        stop: usize,
        /// The stop's quality score.
        score: f64,
        /// The policy's floor it fell under.
        floor: f64,
    },
    /// The degradation policy dropped too many stops for the session to
    /// remain usable (faulted sessions only).
    InsufficientStops {
        /// Stops that survived the policy.
        survived: usize,
        /// Minimum the policy (and fusion) require.
        needed: usize,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Config(error) => write!(f, "invalid configuration: {error}"),
            SessionError::Stop { stop, error } => {
                write!(f, "measurement stop {stop}: {error}")
            }
            SessionError::QualityFloor { stop, score, floor } => write!(
                f,
                "measurement stop {stop}: quality {score:.3} below floor {floor:.3}"
            ),
            SessionError::InsufficientStops { survived, needed } => write!(
                f,
                "only {survived} of the required {needed} measurement stops survived degradation"
            ),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Config(error) => Some(error),
            SessionError::Stop { error, .. } => Some(error),
            SessionError::QualityFloor { .. } | SessionError::InsufficientStops { .. } => None,
        }
    }
}

/// Runs a measurement session for `subject` with the given config and
/// seed. The seed controls gesture imperfections, IMU noise and microphone
/// noise (all deterministic given the seed).
///
/// The per-stop channel estimates are independent and run on the
/// `cfg.threads` pool. Results are bit-identical to the sequential loop
/// for every thread count: each stop's computation is pure given the seed,
/// and outputs are reduced in stop order.
///
/// # Errors
/// Returns [`SessionError::Config`] if `cfg` fails validation, or
/// [`SessionError::Stop`] if any stop's channel has no detectable taps
/// (e.g. hopeless SNR). When several stops fail, the lowest-index stop
/// is reported — the same one a sequential scan would hit first.
pub fn run_session(
    subject: &Subject,
    cfg: &UniqConfig,
    seed: u64,
) -> Result<SessionData, SessionError> {
    cfg.validate().map_err(SessionError::Config)?;
    let _span = uniq_obs::span(uniq_obs::names::SPAN_SESSION);
    let (prep, _gyro_faults) = prepare_session(subject, cfg, seed, None);

    // Each stop is an independent record → deconvolve → gate computation,
    // so the sweep fans out across the pool. `try_par_map` evaluates every
    // stop and reports the lowest-index failure, and `ctx.run_indexed`
    // re-installs the caller's observability sink/depth/trace on the
    // workers — keyed by the stop index, so each stop's spans get ids that
    // depend on the stop, never on which worker ran it.
    let indexed: Vec<usize> = (0..prep.stops.len()).collect();
    let pool = uniq_par::pool(cfg.threads);
    let ctx = uniq_obs::capture();
    let out = pool.try_par_map(&indexed, |&i| {
        ctx.run_indexed(i as u64, || {
            let stop = &prep.stops[i];
            let idx = i * (prep.traj.len() - 1) / (cfg.stops - 1);
            let rec = record_point_source(
                &prep.renderer,
                &prep.setup,
                stop.pos,
                &prep.probe,
                seed.wrapping_add(100 + i as u64),
            )
            // uniq-analyzer: allow(panic-safety) — stop positions come from the gesture sampler, which clamps every point outside the head boundary
            .expect("gesture trajectory stays outside the head");
            let channel = estimate_channel(&rec, &prep.probe, &prep.system_ir, cfg)
                .map_err(|error| SessionError::Stop { stop: i, error })?;
            Ok(StopMeasurement {
                alpha_deg: prep.alphas[idx],
                channel,
                truth_theta_deg: stop.theta_deg,
                truth_radius_m: stop.radius_m,
            })
        })
    })?;

    uniq_obs::metric(uniq_obs::names::SESSION_STOPS, out.len() as f64, "");
    Ok(SessionData {
        stops: out,
        system_ir: prep.system_ir,
    })
}

/// Everything a session needs before the per-stop loop: the forward
/// renderer, measurement chain, probe/calibration, and the gesture + IMU
/// streams. Shared verbatim by the clean and faulted drivers so the two
/// stay arithmetically identical up to the per-stop loop.
struct PreparedSession {
    renderer: Renderer,
    setup: MeasurementSetup,
    probe: Vec<f64>,
    system_ir: Vec<f64>,
    traj: Vec<TrajectorySample>,
    alphas: Vec<f64>,
    stops: Vec<TrajectorySample>,
    imu_rate_hz: f64,
}

fn prepare_session(
    subject: &Subject,
    cfg: &UniqConfig,
    seed: u64,
    rate_injector: Option<&dyn RateInjector>,
) -> (PreparedSession, Vec<&'static str>) {
    let renderer = subject.renderer(cfg.render, FORWARD_RESOLUTION);
    let setup = if cfg.in_room {
        MeasurementSetup::home(cfg.render.sample_rate, cfg.snr_db)
    } else {
        MeasurementSetup::anechoic(cfg.render.sample_rate, cfg.snr_db)
    };
    let probe = cfg.probe();
    let system_ir = setup.system.calibrate(&probe, 256);

    // Gesture + IMU.
    let plan = GesturePlan::standard(subject.gesture);
    let traj = generate_trajectory(&plan, seed);
    let true_rates: Vec<f64> = traj.iter().map(|s| s.angular_rate_dps).collect();
    let dt = 1.0 / plan.imu_rate_hz;
    let gyro_seed = seed.wrapping_add(1);
    let (measured_rates, gyro_faults) = match rate_injector {
        None => (cfg.gyro.simulate(&true_rates, dt, gyro_seed), Vec::new()),
        Some(injector) => cfg
            .gyro
            .simulate_injected(&true_rates, dt, gyro_seed, injector),
    };
    // The user is instructed to start facing front: initial α = 0.
    let alphas = integrate_rates(&measured_rates, dt, 0.0);

    // Index stops back into the full trajectory to read the IMU angle
    // (same index formula as `measurement_stops`).
    let stops = measurement_stops(&traj, cfg.stops);
    (
        PreparedSession {
            renderer,
            setup,
            probe,
            system_ir,
            traj,
            alphas,
            stops,
            imu_rate_hz: plan.imu_rate_hz,
        },
        gyro_faults,
    )
}

/// Runs a measurement session under a [`FaultHook`], degrading gracefully
/// per `policy`: corrupted stops are retried (`policy.stop_retries` extra
/// captures) and then skipped when `policy.skip_failed_stops` allows it.
/// Returns the surviving session plus a [`DegradationReport`] describing
/// what was kept, dropped and seen.
///
/// With a no-op hook and default policy, the returned [`SessionData`] is
/// bit-identical to [`run_session`]'s — the conformance suite in
/// `tests/robustness.rs` pins that contract.
///
/// # Errors
/// [`SessionError::Config`] on invalid configuration;
/// [`SessionError::Stop`]/[`SessionError::QualityFloor`] when a stop stays
/// unusable and the policy forbids skipping;
/// [`SessionError::InsufficientStops`] when fewer than
/// `max(policy.min_stops, 4)` stops survive.
pub fn run_session_faulted(
    subject: &Subject,
    cfg: &UniqConfig,
    seed: u64,
    hook: &dyn FaultHook,
    policy: &DegradationPolicy,
) -> Result<(SessionData, DegradationReport), SessionError> {
    cfg.validate().map_err(SessionError::Config)?;
    let _span = uniq_obs::span(uniq_obs::names::SPAN_SESSION);
    let (prep, gyro_faults) = prepare_session(subject, cfg, seed, Some(hook as &dyn RateInjector));

    let indexed: Vec<usize> = (0..prep.stops.len()).collect();
    let pool = uniq_par::pool(cfg.threads);
    let ctx = uniq_obs::capture();
    let outcomes = pool.try_par_map(&indexed, |&i| {
        ctx.run_indexed(i as u64, || degrade_stop(i, &prep, cfg, seed, hook, policy))
    })?;

    let mut stops = Vec::with_capacity(outcomes.len());
    let mut detail = Vec::with_capacity(outcomes.len());
    for (measurement, stop_detail) in outcomes {
        if let Some(m) = measurement {
            stops.push(m);
        }
        detail.push(stop_detail);
    }
    let report = DegradationReport::from_stops(detail, &gyro_faults);

    uniq_obs::metric(uniq_obs::names::SESSION_STOPS, report.stops_used as f64, "");
    uniq_obs::metric(
        uniq_obs::names::SESSION_STOPS_DROPPED,
        report.stops_dropped as f64,
        "",
    );
    uniq_obs::metric(
        uniq_obs::names::SESSION_STOPS_RETRIED,
        report.retries as f64,
        "",
    );
    let injected: usize = report.stops.iter().map(|s| s.faults.len()).sum();
    if injected + gyro_faults.len() > 0 {
        uniq_obs::counter(
            uniq_obs::names::FAULTS_INJECTED,
            (injected + gyro_faults.len()) as u64,
        );
    }

    let needed = policy.min_stops.max(4);
    if report.stops_used < needed {
        return Err(SessionError::InsufficientStops {
            survived: report.stops_used,
            needed,
        });
    }
    Ok((
        SessionData {
            stops,
            system_ir: prep.system_ir,
        },
        report,
    ))
}

/// One stop's capture → corrupt → estimate → score loop under the
/// degradation policy. Pure given its arguments, so the faulted session
/// stays bit-identical at any thread count.
#[allow(clippy::type_complexity)]
fn degrade_stop(
    i: usize,
    prep: &PreparedSession,
    cfg: &UniqConfig,
    seed: u64,
    hook: &dyn FaultHook,
    policy: &DegradationPolicy,
) -> Result<(Option<StopMeasurement>, StopDegradation), SessionError> {
    let n = prep.stops.len();
    let sched = hook.stop_schedule(i, n);
    let src = sched.source.min(n - 1);
    let stop = &prep.stops[src];
    // The IMU angle is read at the *scheduled* stop's timestamp (the
    // pipeline believes it is at stop `i`), shifted by any clock jitter.
    let base_idx = i * (prep.traj.len() - 1) / (cfg.stops - 1);
    let shift = (sched.jitter_s * prep.imu_rate_hz).round() as i64;
    let idx = (base_idx as i64 + shift).clamp(0, prep.alphas.len() as i64 - 1) as usize;

    let mut faults: Vec<&'static str> = sched.faults.clone();
    let mut attempts = 0usize;
    let mut kept: Option<(StopMeasurement, f64)> = None;
    let mut last_err: Option<ChannelError> = None;
    let mut last_score = 0.0;
    for attempt in 0..=policy.stop_retries {
        attempts = attempt + 1;
        // Attempt 0 reuses the clean session's per-stop noise seed (for
        // the *source* stop, so duplicated captures really duplicate);
        // retries draw fresh microphone noise, as a re-capture would.
        let noise_seed = seed
            .wrapping_add(100 + src as u64)
            .wrapping_add(50_000u64.wrapping_mul(attempt as u64));
        let site = InjectionSite {
            stop: i,
            attempt,
            sample_rate: cfg.render.sample_rate,
        };
        let (rec, injected) = record_point_source_injected(
            &prep.renderer,
            &prep.setup,
            stop.pos,
            &prep.probe,
            noise_seed,
            site,
            hook as &dyn RecordingInjector,
        )
        // uniq-analyzer: allow(panic-safety) — stop positions come from the gesture sampler, which clamps every point outside the head boundary
        .expect("gesture trajectory stays outside the head");
        faults.extend(injected);
        match estimate_channel(&rec, &prep.probe, &prep.system_ir, cfg) {
            Ok(channel) => {
                let quality = stop_quality(&channel, cfg);
                last_score = quality.score;
                last_err = None;
                if quality.score < policy.quality_floor {
                    continue; // treated as corrupted: retry, else drop
                }
                kept = Some((
                    StopMeasurement {
                        alpha_deg: prep.alphas[idx],
                        channel,
                        truth_theta_deg: stop.theta_deg,
                        truth_radius_m: stop.radius_m,
                    },
                    quality.score,
                ));
                break;
            }
            Err(error) => last_err = Some(error),
        }
    }
    faults.sort_unstable();
    faults.dedup();
    match kept {
        Some((measurement, score)) => {
            uniq_obs::metric(uniq_obs::names::SESSION_STOP_QUALITY, score, "");
            Ok((
                Some(measurement),
                StopDegradation {
                    stop: i,
                    source_stop: src,
                    attempts,
                    used: true,
                    quality: score,
                    faults,
                },
            ))
        }
        None if !policy.skip_failed_stops => Err(match last_err {
            Some(error) => SessionError::Stop { stop: i, error },
            None => SessionError::QualityFloor {
                stop: i,
                score: last_score,
                floor: policy.quality_floor,
            },
        }),
        None => Ok((
            None,
            StopDegradation {
                stop: i,
                source_stop: src,
                attempts,
                used: false,
                quality: 0.0,
                faults,
            },
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_imu::trajectory::Imperfections;

    fn quiet_cfg() -> UniqConfig {
        UniqConfig {
            in_room: false,
            snr_db: 60.0,
            ..UniqConfig::fast_test()
        }
    }

    #[test]
    fn session_produces_expected_stop_count() {
        let cfg = quiet_cfg();
        let subject = uniq_subjects::Subject::from_seed(50);
        let data = run_session(&subject, &cfg, 1).unwrap();
        assert_eq!(data.stops.len(), cfg.stops);
    }

    #[test]
    fn imu_angles_track_truth_within_drift() {
        let cfg = quiet_cfg();
        let mut subject = uniq_subjects::Subject::from_seed(51);
        subject.gesture = Imperfections::none();
        let data = run_session(&subject, &cfg, 2).unwrap();
        for stop in &data.stops {
            let err = (stop.alpha_deg - stop.truth_theta_deg).abs();
            assert!(err < 12.0, "IMU error {err}° too large");
        }
        // Angles must increase along the sweep.
        for w in data.stops.windows(2) {
            assert!(w[1].alpha_deg > w[0].alpha_deg - 2.0);
        }
    }

    #[test]
    fn relative_delay_crosses_zero_mid_sweep() {
        // Early stops are frontal (Δt ≈ small positive — source slightly
        // left); at 90° the left ear leads maximally; Δt shrinks again
        // toward 180°. At minimum, Δt at 90° must dominate the endpoints.
        let cfg = quiet_cfg();
        let mut subject = uniq_subjects::Subject::from_seed(52);
        subject.gesture = Imperfections::none();
        let data = run_session(&subject, &cfg, 3).unwrap();
        let delays: Vec<f64> = data
            .stops
            .iter()
            .map(|s| s.channel.relative_delay())
            .collect();
        let mid = delays[delays.len() / 2];
        assert!(mid > delays[0] + 3.0, "mid {mid} first {}", delays[0]);
        assert!(
            mid > *delays.last().unwrap() + 3.0,
            "mid {mid} last {}",
            delays.last().unwrap()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = quiet_cfg();
        let subject = uniq_subjects::Subject::from_seed(53);
        let a = run_session(&subject, &cfg, 9).unwrap();
        let b = run_session(&subject, &cfg, 9).unwrap();
        assert_eq!(a.stops.len(), b.stops.len());
        for (x, y) in a.stops.iter().zip(&b.stops) {
            assert_eq!(x.alpha_deg, y.alpha_deg);
            assert_eq!(x.channel.tap_left, y.channel.tap_left);
        }
    }

    #[test]
    fn room_session_still_finds_taps() {
        let cfg = UniqConfig {
            in_room: true,
            ..quiet_cfg()
        };
        let subject = uniq_subjects::Subject::from_seed(54);
        let data = run_session(&subject, &cfg, 4).unwrap();
        assert_eq!(data.stops.len(), cfg.stops);
        for s in &data.stops {
            assert!(s.channel.tap_left > 0.0);
        }
    }
}
