//! The personalized HRTF table and application interface (§4.4).
//!
//! UNIQ's output is a lookup table indexed by angle θ with four vector
//! entries per angle: near-field and far-field HRTFs for each ear. An
//! application wanting to place a sound at location `L` picks near or far
//! by distance, looks up the HRIR pair at `L`'s angle, and filters the
//! sound through it — the brain perceives the result as arriving from θ.

use uniq_acoustics::types::{BinauralIr, HrirBank};
use uniq_dsp::conv::convolve;
use uniq_geometry::vec2::theta_from_vec;
use uniq_geometry::{HeadParams, Vec2};

/// Sources closer than this are rendered with the near-field HRTF
/// (the paper's footnote 1: under ~1 m is "near-field").
pub const NEAR_FIELD_LIMIT_M: f64 = 1.0;

/// A user's personalized HRTF: near and far banks plus the fitted head
/// parameters.
///
/// Produced by [`crate::pipeline::personalize`]; applications then place
/// sounds with [`PersonalHrtf::synthesize_at`]:
///
/// ```no_run
/// use uniq_core::{config::UniqConfig, pipeline::personalize};
/// use uniq_geometry::Vec2;
/// use uniq_subjects::Subject;
/// let cfg = UniqConfig::default();
/// let me = Subject::from_seed(42);
/// let hrtf = personalize(&me, &cfg, 1).unwrap().hrtf;
/// let voice = vec![0.0; 4800];
/// // A far-away source 30° to the left-front:
/// let binaural = hrtf.synthesize_at(&voice, Vec2::new(-2.0, 3.5));
/// assert_eq!(binaural.left.len(), binaural.right.len());
/// ```
#[derive(Debug, Clone)]
pub struct PersonalHrtf {
    near: HrirBank,
    far: HrirBank,
    head: HeadParams,
}

/// A stereo signal pair produced by binaural synthesis.
#[derive(Debug, Clone)]
pub struct BinauralSignal {
    /// Left-ear signal.
    pub left: Vec<f64>,
    /// Right-ear signal.
    pub right: Vec<f64>,
}

impl PersonalHrtf {
    /// Assembles the table from its parts.
    ///
    /// # Panics
    /// Panics if the banks disagree on sample rate.
    pub fn new(near: HrirBank, far: HrirBank, head: HeadParams) -> Self {
        assert_eq!(
            near.sample_rate(),
            far.sample_rate(),
            "near/far banks must share a sample rate"
        );
        PersonalHrtf { near, far, head }
    }

    /// The near-field bank.
    pub fn near(&self) -> &HrirBank {
        &self.near
    }

    /// The far-field bank.
    pub fn far(&self) -> &HrirBank {
        &self.far
    }

    /// The fitted head parameters `E_opt`.
    pub fn head(&self) -> HeadParams {
        self.head
    }

    /// Audio sample rate of the table.
    pub fn sample_rate(&self) -> f64 {
        self.near.sample_rate()
    }

    /// The §4.4 lookup: the HRIR pair for angle θ, near or far field.
    ///
    /// The measurement sweep covers the left hemisphere (0°–180°, as in
    /// the paper's protocol); right-hemisphere angles are served by the
    /// standard lateral-symmetry assumption — the mirrored angle's HRIR
    /// with the ears swapped.
    pub fn lookup(&self, theta_deg: f64, far_field: bool) -> BinauralIr {
        let bank = if far_field { &self.far } else { &self.near };
        let t = theta_deg.rem_euclid(360.0);
        if t <= 180.0 {
            bank.nearest(t).0.clone()
        } else {
            let mirrored = bank.nearest(360.0 - t).0;
            BinauralIr::new(mirrored.right.clone(), mirrored.left.clone())
        }
    }

    /// Filters `signal` through the HRIR pair for `theta_deg`
    /// (`Y_left = H_left · S`, `Y_right = H_right · S`).
    pub fn synthesize(&self, signal: &[f64], theta_deg: f64, far_field: bool) -> BinauralSignal {
        let ir = self.lookup(theta_deg, far_field);
        BinauralSignal {
            left: convolve(signal, &ir.left),
            right: convolve(signal, &ir.right),
        }
    }

    /// Places a sound at an arbitrary location: the application-facing
    /// entry point. Distance decides near vs far field; the angle comes
    /// from the location's bearing.
    ///
    /// # Panics
    /// Panics for a location at the head centre.
    pub fn synthesize_at(&self, signal: &[f64], location: Vec2) -> BinauralSignal {
        let theta = theta_from_vec(location);
        let far_field = location.norm() >= NEAR_FIELD_LIMIT_M;
        self.synthesize(signal, theta, far_field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_acoustics::pinna::PinnaModel;
    use uniq_acoustics::render::Renderer;
    use uniq_acoustics::types::RenderConfig;
    use uniq_geometry::HeadBoundary;

    fn table() -> PersonalHrtf {
        let cfg = RenderConfig::default();
        let head = HeadParams::average_adult();
        let r = Renderer::new(
            HeadBoundary::new(head, 512),
            PinnaModel::from_seed(81),
            PinnaModel::from_seed(82),
            cfg,
        );
        let angles: Vec<f64> = (0..=18).map(|k| k as f64 * 10.0).collect();
        PersonalHrtf::new(
            r.near_field_bank(&angles, 0.4)
                .expect("test radius clears the head"),
            r.ground_truth_bank(&angles),
            head,
        )
    }

    #[test]
    fn lookup_picks_nearest_angle() {
        let t = table();
        let a = t.lookup(42.0, true); // nearest measured: 40°
        let b = t.lookup(40.0, true);
        assert_eq!(a, b);
    }

    #[test]
    fn synthesize_output_length() {
        let t = table();
        let sig = vec![1.0; 100];
        let out = t.synthesize(&sig, 30.0, true);
        assert_eq!(out.left.len(), 100 + t.lookup(30.0, true).left.len() - 1);
        assert_eq!(out.left.len(), out.right.len());
    }

    #[test]
    fn right_hemisphere_mirrors_with_swapped_ears() {
        let t = table();
        let left_side = t.lookup(60.0, true);
        let right_side = t.lookup(300.0, true);
        assert_eq!(left_side.left, right_side.right);
        assert_eq!(left_side.right, right_side.left);
    }

    #[test]
    fn left_source_louder_left() {
        let t = table();
        // Broadband signal: head-shadow ILD must dominate any per-ear
        // pinna comb difference at a single tone frequency.
        let sig = uniq_dsp::signal::linear_chirp(200.0, 12_000.0, 0.05, 48_000.0);
        let out = t.synthesize(&sig, 90.0, true); // hard left
        let el: f64 = out.left.iter().map(|v| v * v).sum();
        let er: f64 = out.right.iter().map(|v| v * v).sum();
        assert!(el > 1.3 * er, "no ILD: {el} vs {er}");
    }

    #[test]
    fn synthesize_at_switches_field_by_distance() {
        let t = table();
        let sig = vec![1.0; 32];
        let dir = uniq_geometry::vec2::unit_from_theta(60.0);
        let near = t.synthesize_at(&sig, dir * 0.4);
        let far = t.synthesize_at(&sig, dir * 3.0);
        // Near and far renderings must differ (different banks).
        assert_ne!(near.left, far.left);
        // And far must match the explicit far-field call.
        let explicit = t.synthesize(&sig, 60.0, true);
        assert_eq!(far.left, explicit.left);
    }

    #[test]
    fn frontal_far_source_roughly_centred() {
        let t = table();
        // Broadband probe: a single tone can land on a per-ear pinna comb
        // notch and fake an imbalance that isn't there across the band.
        let sig = uniq_dsp::signal::linear_chirp(200.0, 12_000.0, 0.05, 48_000.0);
        let out = t.synthesize(&sig, 0.0, true);
        let el: f64 = out.left.iter().map(|v| v * v).sum();
        let er: f64 = out.right.iter().map(|v| v * v).sum();
        let ratio = el / er;
        assert!(ratio > 0.4 && ratio < 2.5, "frontal imbalance {ratio}");
    }
}
