//! Pipeline configuration.

use uniq_acoustics::types::RenderConfig;
use uniq_imu::GyroModel;

/// Every knob of the UNIQ pipeline, with the defaults used by the paper's
/// evaluation reproduction.
#[derive(Debug, Clone)]
pub struct UniqConfig {
    /// Shared audio/render configuration (sample rate, base delay, …).
    pub render: RenderConfig,
    /// Probe chirp start frequency, hertz.
    pub probe_f0: f64,
    /// Probe chirp end frequency, hertz.
    pub probe_f1: f64,
    /// Probe chirp duration, seconds.
    pub probe_duration: f64,
    /// Number of discrete measurement stops along the gesture.
    pub stops: usize,
    /// Microphone SNR during measurement, dB.
    pub snr_db: f64,
    /// Whether measurements happen in a reverberant room (vs anechoic).
    pub in_room: bool,
    /// Wiener regularization (fraction of peak probe spectral power).
    pub deconv_noise_floor: f64,
    /// Length of estimated channel impulse responses, samples.
    pub channel_len: usize,
    /// First-tap detection threshold (fraction of the channel peak).
    pub tap_threshold: f64,
    /// Room-echo gate: keep this many seconds after the first tap (§4.6).
    pub room_gate_s: f64,
    /// Boundary discretization used by the inverse solver.
    pub inverse_resolution: usize,
    /// Far-field/near-field output grid step, degrees.
    pub grid_step_deg: f64,
    /// Gesture auto-correction: reject when the estimated phone radius
    /// drops below this many metres (§4.6 "phone too close").
    pub min_radius_m: f64,
    /// Gesture auto-correction: reject when the mean fusion residual
    /// `|α − θ(E)|` exceeds this many degrees (§4.6 "error too large").
    pub max_fusion_residual_deg: f64,
    /// AoA matching weight λ (Eq. 9); trainable via `aoa::train_lambda`.
    pub aoa_lambda: f64,
    /// Gyroscope error model used when simulating the measurement session.
    pub gyro: GyroModel,
}

impl Default for UniqConfig {
    fn default() -> Self {
        UniqConfig {
            render: RenderConfig::default(),
            probe_f0: 100.0,
            probe_f1: 20_000.0,
            probe_duration: 0.05,
            stops: 19, // every ~10° over the 0–180° sweep
            snr_db: 35.0,
            in_room: true,
            deconv_noise_floor: 1e-3,
            channel_len: 512,
            tap_threshold: 0.35,
            room_gate_s: 0.003,
            inverse_resolution: 1024,
            grid_step_deg: 1.0,
            min_radius_m: 0.18,
            max_fusion_residual_deg: 12.0,
            aoa_lambda: 0.15,
            gyro: GyroModel::consumer_phone(),
        }
    }
}

impl UniqConfig {
    /// A cheaper configuration for unit tests: lower boundary resolution
    /// and fewer stops. Experiments should use the default.
    pub fn fast_test() -> Self {
        UniqConfig {
            inverse_resolution: 256,
            stops: 10,
            probe_duration: 0.03,
            ..Default::default()
        }
    }

    /// The probe chirp this configuration plays at each stop.
    pub fn probe(&self) -> Vec<f64> {
        uniq_dsp::signal::linear_chirp(
            self.probe_f0,
            self.probe_f1,
            self.probe_duration,
            self.render.sample_rate,
        )
    }

    /// Output angle grid `0..=180` degrees at `grid_step_deg`.
    pub fn output_grid(&self) -> Vec<f64> {
        let mut out = Vec::new();
        let mut a = 0.0;
        while a <= 180.0 + 1e-9 {
            out.push(a);
            a += self.grid_step_deg;
        }
        out
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on inconsistent parameters.
    pub fn validate(&self) {
        self.render.validate();
        assert!(
            self.probe_f0 > 0.0 && self.probe_f1 > self.probe_f0,
            "probe band must satisfy 0 < f0 < f1"
        );
        assert!(
            self.probe_f1 <= self.render.sample_rate / 2.0,
            "probe exceeds Nyquist"
        );
        assert!(self.stops >= 4, "need at least 4 measurement stops");
        assert!(self.channel_len >= 128, "channel_len too short");
        assert!(
            (0.0..1.0).contains(&self.tap_threshold),
            "tap threshold must be a fraction"
        );
        assert!(self.grid_step_deg > 0.0 && self.grid_step_deg <= 30.0);
        assert!(self.room_gate_s > 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        UniqConfig::default().validate();
        UniqConfig::fast_test().validate();
    }

    #[test]
    fn probe_length() {
        let cfg = UniqConfig::default();
        let p = cfg.probe();
        assert_eq!(p.len(), (0.05 * 48_000.0) as usize);
    }

    #[test]
    fn output_grid_covers_sweep() {
        let cfg = UniqConfig::default();
        let g = cfg.output_grid();
        assert_eq!(g.len(), 181);
        assert_eq!(g[0], 0.0);
        assert_eq!(*g.last().unwrap(), 180.0);
    }

    #[test]
    fn coarse_grid() {
        let cfg = UniqConfig {
            grid_step_deg: 30.0,
            ..Default::default()
        };
        assert_eq!(cfg.output_grid().len(), 7);
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn probe_beyond_nyquist_rejected() {
        let cfg = UniqConfig {
            probe_f1: 30_000.0,
            ..Default::default()
        };
        cfg.validate();
    }
}
