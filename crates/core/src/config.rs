//! Pipeline configuration.

use uniq_acoustics::types::RenderConfig;
use uniq_imu::GyroModel;

/// Every knob of the UNIQ pipeline, with the defaults used by the paper's
/// evaluation reproduction.
#[derive(Debug, Clone)]
pub struct UniqConfig {
    /// Shared audio/render configuration (sample rate, base delay, …).
    pub render: RenderConfig,
    /// Probe chirp start frequency, hertz.
    pub probe_f0: f64,
    /// Probe chirp end frequency, hertz.
    pub probe_f1: f64,
    /// Probe chirp duration, seconds.
    pub probe_duration: f64,
    /// Number of discrete measurement stops along the gesture.
    pub stops: usize,
    /// Microphone SNR during measurement, dB.
    pub snr_db: f64,
    /// Whether measurements happen in a reverberant room (vs anechoic).
    pub in_room: bool,
    /// Wiener regularization (fraction of peak probe spectral power).
    pub deconv_noise_floor: f64,
    /// Length of estimated channel impulse responses, samples.
    pub channel_len: usize,
    /// First-tap detection threshold (fraction of the channel peak).
    pub tap_threshold: f64,
    /// Room-echo gate: keep this many seconds after the first tap (§4.6).
    pub room_gate_s: f64,
    /// Boundary discretization used by the inverse solver.
    pub inverse_resolution: usize,
    /// Far-field/near-field output grid step, degrees.
    pub grid_step_deg: f64,
    /// Gesture auto-correction: reject when the estimated phone radius
    /// drops below this many metres (§4.6 "phone too close").
    pub min_radius_m: f64,
    /// Gesture auto-correction: reject when the mean fusion residual
    /// `|α − θ(E)|` exceeds this many degrees (§4.6 "error too large").
    pub max_fusion_residual_deg: f64,
    /// AoA matching weight λ (Eq. 9); trainable via `aoa::train_lambda`.
    pub aoa_lambda: f64,
    /// Gyroscope error model used when simulating the measurement session.
    pub gyro: GyroModel,
    /// Worker threads for the parallel hot paths (per-stop channel
    /// estimation, AoA sweeps, output-grid interpolation). `0` means
    /// "auto": the `UNIQ_THREADS` environment variable if set, otherwise
    /// the machine's available parallelism. Results are bit-identical
    /// for every value — this only changes scheduling.
    pub threads: usize,
}

impl Default for UniqConfig {
    fn default() -> Self {
        UniqConfig {
            render: RenderConfig::default(),
            probe_f0: 100.0,
            probe_f1: 20_000.0,
            probe_duration: 0.05,
            stops: 19, // every ~10° over the 0–180° sweep
            snr_db: 35.0,
            in_room: true,
            deconv_noise_floor: 1e-3,
            channel_len: 512,
            tap_threshold: 0.35,
            room_gate_s: 0.003,
            inverse_resolution: 1024,
            grid_step_deg: 1.0,
            min_radius_m: 0.18,
            max_fusion_residual_deg: 12.0,
            aoa_lambda: 0.15,
            gyro: GyroModel::consumer_phone(),
            threads: 0,
        }
    }
}

impl UniqConfig {
    /// A cheaper configuration for unit tests: lower boundary resolution
    /// and fewer stops. Experiments should use the default.
    pub fn fast_test() -> Self {
        UniqConfig {
            inverse_resolution: 256,
            stops: 10,
            probe_duration: 0.03,
            ..Default::default()
        }
    }

    /// The probe chirp this configuration plays at each stop.
    pub fn probe(&self) -> Vec<f64> {
        uniq_dsp::signal::linear_chirp(
            self.probe_f0,
            self.probe_f1,
            self.probe_duration,
            self.render.sample_rate,
        )
    }

    /// Output angle grid `0..=180` degrees at `grid_step_deg`.
    pub fn output_grid(&self) -> Vec<f64> {
        let mut out = Vec::new();
        let mut a = 0.0;
        while a <= 180.0 + 1e-9 {
            out.push(a);
            a += self.grid_step_deg;
        }
        out
    }

    /// A stable FNV-1a digest of every result-affecting parameter, used
    /// by the artifact store to attribute a stored HRTF to the exact
    /// configuration that produced it. `threads` is deliberately
    /// excluded: results are bit-identical across thread counts, so two
    /// runs differing only in pool size share a hash.
    pub fn content_hash(&self) -> u64 {
        let mut fp = crate::batch::FingerprintBuilder::new();
        fp.eat(self.render.sample_rate.to_bits());
        fp.eat(self.render.ir_len as u64);
        fp.eat(self.render.speed_of_sound.to_bits());
        fp.eat(self.render.shadow_kappa.to_bits());
        fp.eat(self.render.shadow_f0.to_bits());
        fp.eat(self.render.base_delay.to_bits());
        fp.eat(self.probe_f0.to_bits());
        fp.eat(self.probe_f1.to_bits());
        fp.eat(self.probe_duration.to_bits());
        fp.eat(self.stops as u64);
        fp.eat(self.snr_db.to_bits());
        fp.eat(u64::from(self.in_room));
        fp.eat(self.deconv_noise_floor.to_bits());
        fp.eat(self.channel_len as u64);
        fp.eat(self.tap_threshold.to_bits());
        fp.eat(self.room_gate_s.to_bits());
        fp.eat(self.inverse_resolution as u64);
        fp.eat(self.grid_step_deg.to_bits());
        fp.eat(self.min_radius_m.to_bits());
        fp.eat(self.max_fusion_residual_deg.to_bits());
        fp.eat(self.aoa_lambda.to_bits());
        fp.eat(self.gyro.bias_dps.to_bits());
        fp.eat(self.gyro.noise_std_dps.to_bits());
        fp.eat(self.gyro.bias_walk_dps.to_bits());
        fp.finish()
    }

    /// Validates the configuration, reporting the first inconsistency
    /// found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        // Render checks (RenderConfig::validate panics; mirror them here
        // so callers get a recoverable error instead).
        if self.render.sample_rate <= 0.0 {
            return Err(ConfigError::NonPositiveSampleRate {
                sample_rate: self.render.sample_rate,
            });
        }
        if self.render.ir_len < 64 {
            return Err(ConfigError::IrTooShort {
                ir_len: self.render.ir_len,
            });
        }
        if self.render.speed_of_sound <= 0.0 {
            return Err(ConfigError::NonPositiveSpeedOfSound {
                speed_of_sound: self.render.speed_of_sound,
            });
        }
        if self.render.base_delay < 0.0 {
            return Err(ConfigError::NegativeBaseDelay {
                base_delay: self.render.base_delay,
            });
        }
        if !(self.probe_f0 > 0.0 && self.probe_f1 > self.probe_f0) {
            return Err(ConfigError::BadProbeBand {
                f0: self.probe_f0,
                f1: self.probe_f1,
            });
        }
        if self.probe_f1 > self.render.sample_rate / 2.0 {
            return Err(ConfigError::ProbeBeyondNyquist {
                f1: self.probe_f1,
                nyquist: self.render.sample_rate / 2.0,
            });
        }
        if self.stops < 4 {
            return Err(ConfigError::TooFewStops { stops: self.stops });
        }
        if self.channel_len < 128 {
            return Err(ConfigError::ChannelTooShort {
                channel_len: self.channel_len,
            });
        }
        if !(0.0..1.0).contains(&self.tap_threshold) {
            return Err(ConfigError::BadTapThreshold {
                tap_threshold: self.tap_threshold,
            });
        }
        if !(self.grid_step_deg > 0.0 && self.grid_step_deg <= 30.0) {
            return Err(ConfigError::BadGridStep {
                grid_step_deg: self.grid_step_deg,
            });
        }
        if self.room_gate_s <= 0.0 {
            return Err(ConfigError::BadRoomGate {
                room_gate_s: self.room_gate_s,
            });
        }
        Ok(())
    }
}

/// An inconsistent [`UniqConfig`] parameter, found by
/// [`UniqConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `render.sample_rate` must be positive.
    NonPositiveSampleRate {
        /// The offending value.
        sample_rate: f64,
    },
    /// `render.ir_len` too short for head acoustics (minimum 64).
    IrTooShort {
        /// The offending value.
        ir_len: usize,
    },
    /// `render.speed_of_sound` must be positive.
    NonPositiveSpeedOfSound {
        /// The offending value.
        speed_of_sound: f64,
    },
    /// `render.base_delay` cannot be negative.
    NegativeBaseDelay {
        /// The offending value.
        base_delay: f64,
    },
    /// Probe band must satisfy `0 < f0 < f1`.
    BadProbeBand {
        /// Chirp start frequency, Hz.
        f0: f64,
        /// Chirp end frequency, Hz.
        f1: f64,
    },
    /// Probe end frequency exceeds the Nyquist frequency.
    ProbeBeyondNyquist {
        /// Chirp end frequency, Hz.
        f1: f64,
        /// Nyquist frequency, Hz.
        nyquist: f64,
    },
    /// Fewer than the minimum 4 measurement stops.
    TooFewStops {
        /// The offending value.
        stops: usize,
    },
    /// `channel_len` below the minimum of 128 samples.
    ChannelTooShort {
        /// The offending value.
        channel_len: usize,
    },
    /// Tap threshold must be a fraction in `[0, 1)`.
    BadTapThreshold {
        /// The offending value.
        tap_threshold: f64,
    },
    /// Grid step must be in `(0, 30]` degrees.
    BadGridStep {
        /// The offending value.
        grid_step_deg: f64,
    },
    /// Room gate must be positive.
    BadRoomGate {
        /// The offending value.
        room_gate_s: f64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NonPositiveSampleRate { sample_rate } => {
                write!(f, "sample_rate must be positive (got {sample_rate})")
            }
            ConfigError::IrTooShort { ir_len } => {
                write!(f, "ir_len {ir_len} too short for head acoustics (min 64)")
            }
            ConfigError::NonPositiveSpeedOfSound { speed_of_sound } => {
                write!(f, "speed of sound must be positive (got {speed_of_sound})")
            }
            ConfigError::NegativeBaseDelay { base_delay } => {
                write!(f, "base delay cannot be negative (got {base_delay})")
            }
            ConfigError::BadProbeBand { f0, f1 } => {
                write!(f, "probe band must satisfy 0 < f0 < f1 (got {f0}..{f1})")
            }
            ConfigError::ProbeBeyondNyquist { f1, nyquist } => {
                write!(f, "probe exceeds Nyquist: f1 {f1} Hz > {nyquist} Hz")
            }
            ConfigError::TooFewStops { stops } => {
                write!(f, "need at least 4 measurement stops (got {stops})")
            }
            ConfigError::ChannelTooShort { channel_len } => {
                write!(f, "channel_len {channel_len} too short (min 128)")
            }
            ConfigError::BadTapThreshold { tap_threshold } => {
                write!(f, "tap threshold must be a fraction (got {tap_threshold})")
            }
            ConfigError::BadGridStep { grid_step_deg } => {
                write!(
                    f,
                    "grid step must be in (0, 30] degrees (got {grid_step_deg})"
                )
            }
            ConfigError::BadRoomGate { room_gate_s } => {
                write!(f, "room gate must be positive (got {room_gate_s})")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        UniqConfig::default().validate().unwrap();
        UniqConfig::fast_test().validate().unwrap();
    }

    #[test]
    fn probe_length() {
        let cfg = UniqConfig::default();
        let p = cfg.probe();
        assert_eq!(p.len(), (0.05 * 48_000.0) as usize);
    }

    #[test]
    fn output_grid_covers_sweep() {
        let cfg = UniqConfig::default();
        let g = cfg.output_grid();
        assert_eq!(g.len(), 181);
        assert_eq!(g[0], 0.0);
        assert_eq!(*g.last().unwrap(), 180.0);
    }

    #[test]
    fn coarse_grid() {
        let cfg = UniqConfig {
            grid_step_deg: 30.0,
            ..Default::default()
        };
        assert_eq!(cfg.output_grid().len(), 7);
    }

    #[test]
    fn content_hash_ignores_threads_but_sees_parameters() {
        let base = UniqConfig::default();
        let rethreaded = UniqConfig {
            threads: 8,
            ..UniqConfig::default()
        };
        assert_eq!(
            base.content_hash(),
            rethreaded.content_hash(),
            "thread count must not change result attribution"
        );
        let quieter = UniqConfig {
            snr_db: 20.0,
            ..UniqConfig::default()
        };
        assert_ne!(base.content_hash(), quieter.content_hash());
        let mut slower = UniqConfig::default();
        slower.render.sample_rate = 44_100.0;
        assert_ne!(base.content_hash(), slower.content_hash());
    }

    #[test]
    fn probe_beyond_nyquist_rejected() {
        let cfg = UniqConfig {
            probe_f1: 30_000.0,
            ..Default::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, ConfigError::ProbeBeyondNyquist { .. }));
        assert!(err.to_string().contains("Nyquist"));
    }

    #[test]
    fn each_bad_parameter_gets_its_own_error() {
        let cases: Vec<(UniqConfig, ConfigError)> = vec![
            (
                UniqConfig {
                    probe_f0: -5.0,
                    ..Default::default()
                },
                ConfigError::BadProbeBand {
                    f0: -5.0,
                    f1: 20_000.0,
                },
            ),
            (
                UniqConfig {
                    stops: 3,
                    ..Default::default()
                },
                ConfigError::TooFewStops { stops: 3 },
            ),
            (
                UniqConfig {
                    channel_len: 10,
                    ..Default::default()
                },
                ConfigError::ChannelTooShort { channel_len: 10 },
            ),
            (
                UniqConfig {
                    tap_threshold: 1.5,
                    ..Default::default()
                },
                ConfigError::BadTapThreshold { tap_threshold: 1.5 },
            ),
            (
                UniqConfig {
                    grid_step_deg: 0.0,
                    ..Default::default()
                },
                ConfigError::BadGridStep { grid_step_deg: 0.0 },
            ),
            (
                UniqConfig {
                    room_gate_s: 0.0,
                    ..Default::default()
                },
                ConfigError::BadRoomGate { room_gate_s: 0.0 },
            ),
        ];
        for (cfg, want) in cases {
            assert_eq!(cfg.validate().unwrap_err(), want);
        }
    }

    #[test]
    fn render_checks_are_mirrored() {
        let mut cfg = UniqConfig::default();
        cfg.render.ir_len = 8;
        assert!(matches!(
            cfg.validate().unwrap_err(),
            ConfigError::IrTooShort { ir_len: 8 }
        ));
        let mut cfg = UniqConfig::default();
        cfg.render.base_delay = -1.0;
        assert!(matches!(
            cfg.validate().unwrap_err(),
            ConfigError::NegativeBaseDelay { .. }
        ));
    }
}
