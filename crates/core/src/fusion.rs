//! Diffraction-aware sensor fusion (§4.1 of the paper).
//!
//! Inputs per measurement stop: the IMU-integrated phone orientation `α_i`
//! and the two absolute first-tap path lengths `d_L, d_R` (phone and
//! earphones are clock-synchronized). Neither source alone localizes the
//! phone — the IMU gives only an angle, the acoustics give distances that
//! depend on the unknown head shape `E = (a, b, c)`. UNIQ solves both
//! jointly:
//!
//! 1. For a candidate `E`, each stop's phone position is the intersection
//!    of two iso-delay trajectories (Fig 10b) — found here by damped
//!    Gauss–Newton from two seeds (front/back mirror), keeping the
//!    solution whose polar angle is closer to the IMU angle.
//! 2. `E_opt = argmin_E Σ (α_i − θ_i(E))²` (Eq. 2) — minimized with
//!    Nelder–Mead over the anthropometric box.
//! 3. Final phone angles blend both sensors: `θ = (θ_i(E_opt) + α_i)/2`
//!    (Eq. 3).

use crate::config::UniqConfig;
use uniq_geometry::diffraction::path_to_ear;
use uniq_geometry::vec2::{angle_diff_deg, theta_from_vec, unit_from_theta};
use uniq_geometry::{Ear, HeadBoundary, HeadParams, Vec2};
use uniq_optim::{nelder_mead, solve_2d, NelderMeadOptions};

/// One stop's fusion inputs.
#[derive(Debug, Clone, Copy)]
pub struct FusionInput {
    /// IMU-integrated phone orientation, degrees.
    pub alpha_deg: f64,
    /// First-tap path length to the left ear, metres.
    pub d_left_m: f64,
    /// First-tap path length to the right ear, metres.
    pub d_right_m: f64,
}

/// A localized stop under some head-parameter hypothesis.
#[derive(Debug, Clone, Copy)]
pub struct LocalizedStop {
    /// Acoustic polar angle θ(E), degrees.
    pub theta_deg: f64,
    /// Polar radius, metres.
    pub radius_m: f64,
    /// Residual distance mismatch at the solution, metres.
    pub residual_m: f64,
}

/// The fused estimate: head parameters plus per-stop phone locations.
#[derive(Debug, Clone)]
pub struct FusionResult {
    /// Optimal head parameters `E_opt`.
    pub head: HeadParams,
    /// Per-stop localizations at `E_opt` (same order as the inputs).
    pub stops: Vec<LocalizedStop>,
    /// Final fused phone angles `(θ_i + α_i)/2`, degrees (Eq. 3).
    pub final_thetas_deg: Vec<f64>,
    /// Mean `|α_i − θ_i(E_opt)|`, degrees — the §4.6 gesture-quality
    /// signal.
    pub mean_residual_deg: f64,
    /// Final objective value of Eq. 2.
    pub objective: f64,
}

/// Anthropometric feasibility box for `E = (a, b, c)`, metres.
const BOX: [(f64, f64); 3] = [(0.050, 0.110), (0.060, 0.150), (0.060, 0.140)];

/// Iso-delay intersection tolerance: accept localizations whose residual
/// distance error is below this (metres). One 48 kHz sample ≈ 7 mm.
const LOC_TOL_M: f64 = 0.01;

/// Localizes the phone from the two path lengths under head hypothesis
/// `boundary`, using `alpha_hint_deg` to pick between the front/back
/// intersections. Returns `None` when neither Gauss–Newton seed converges.
pub fn localize_phone(
    boundary: &HeadBoundary,
    d_left_m: f64,
    d_right_m: f64,
    alpha_hint_deg: f64,
) -> Option<LocalizedStop> {
    let residual = |p: [f64; 2]| -> [f64; 2] {
        let pos = Vec2::new(p[0], p[1]);
        if boundary.contains(pos) {
            return [1.0, 1.0]; // far off any achievable residual scale
        }
        let pl = match path_to_ear(boundary, pos, Ear::Left) {
            Some(p) => p.length,
            None => return [1.0, 1.0],
        };
        let pr = match path_to_ear(boundary, pos, Ear::Right) {
            Some(p) => p.length,
            None => return [1.0, 1.0],
        };
        [pl - d_left_m, pr - d_right_m]
    };

    let r0 = 0.5 * (d_left_m + d_right_m).max(0.25);
    let seeds = [
        unit_from_theta(alpha_hint_deg) * r0,
        // Front/back mirror across the ear axis.
        unit_from_theta(180.0 - alpha_hint_deg) * r0,
    ];

    let mut best: Option<LocalizedStop> = None;
    for seed in seeds {
        let (sol, res) = solve_2d(residual, [seed.x, seed.y], 60);
        if res > LOC_TOL_M {
            continue;
        }
        let pos = Vec2::new(sol[0], sol[1]);
        if pos.norm() < 1e-6 {
            continue;
        }
        let cand = LocalizedStop {
            theta_deg: theta_from_vec(pos),
            radius_m: pos.norm(),
            residual_m: res,
        };
        best = match best {
            None => Some(cand),
            Some(b) => {
                // Paper's rule: pick the θ(E) closer to the IMU angle.
                let db = angle_diff_deg(b.theta_deg, alpha_hint_deg);
                let dc = angle_diff_deg(cand.theta_deg, alpha_hint_deg);
                Some(if dc < db { cand } else { b })
            }
        };
    }
    best
}

/// Eq. 2 objective: Σ angle_diff(α_i, θ_i(E))², with a fixed penalty for
/// stops that fail to localize under this hypothesis. With `weights`, each
/// stop's term (and its penalty) scales by its weight — downweighting
/// degraded stops. `None` keeps the exact unweighted arithmetic (no
/// multiplications by 1.0), so the clean path stays bit-identical.
fn fusion_objective(
    e: &[f64],
    inputs: &[FusionInput],
    weights: Option<&[f64]>,
    resolution: usize,
) -> f64 {
    for (v, (lo, hi)) in e.iter().zip(BOX) {
        if !(lo..=hi).contains(v) {
            return f64::INFINITY;
        }
    }
    let boundary = HeadBoundary::new(HeadParams::new(e[0], e[1], e[2]), resolution);
    let penalty = 30f64.powi(2);
    inputs
        .iter()
        .enumerate()
        .map(|(k, inp)| {
            let term = match localize_phone(&boundary, inp.d_left_m, inp.d_right_m, inp.alpha_deg) {
                Some(loc) => angle_diff_deg(inp.alpha_deg, loc.theta_deg).powi(2),
                None => penalty,
            };
            match weights {
                None => term,
                Some(w) => w[k] * term,
            }
        })
        .sum()
}

/// Runs the full fusion: optimizes `E` (Eq. 2), localizes all stops at
/// `E_opt`, and blends angles (Eq. 3).
///
/// Returns `None` when no hypothesis localizes a majority of stops —
/// a hopeless measurement set.
pub fn fuse(inputs: &[FusionInput], cfg: &UniqConfig) -> Option<FusionResult> {
    fuse_weighted(inputs, None, cfg)
}

/// [`fuse`] with optional per-stop quality weights in `[0, 1]` (same
/// order/length as `inputs`), used by degraded sessions to let surviving
/// high-quality stops dominate Eq. 2 and the mean residual. `None` — and
/// only `None` — takes the exact unweighted code path; callers on the
/// clean path must pass `None` rather than a slice of ones.
///
/// # Panics
/// Panics if fewer than 4 inputs are given, or if `weights` is `Some` with
/// a length different from `inputs`.
pub fn fuse_weighted(
    inputs: &[FusionInput],
    weights: Option<&[f64]>,
    cfg: &UniqConfig,
) -> Option<FusionResult> {
    assert!(inputs.len() >= 4, "fusion needs at least 4 stops");
    if let Some(w) = weights {
        assert_eq!(w.len(), inputs.len(), "one weight per fusion input");
    }
    let _span = uniq_obs::span(uniq_obs::names::SPAN_FUSION);
    let resolution = cfg.inverse_resolution;
    let objective = |e: &[f64]| fusion_objective(e, inputs, weights, resolution);

    let seed = HeadParams::average_adult();
    let opts = NelderMeadOptions {
        max_iter: 200,
        initial_step: 0.08,
        f_tol: 1e-6,
        x_tol: 1e-6,
    };
    let fit = nelder_mead(objective, &[seed.a, seed.b, seed.c], &opts);
    if !fit.fx.is_finite() {
        return None;
    }
    let head = HeadParams::new(fit.x[0], fit.x[1], fit.x[2]);
    let boundary = HeadBoundary::new(head, resolution);

    let mut stops = Vec::with_capacity(inputs.len());
    let mut final_thetas = Vec::with_capacity(inputs.len());
    let mut residual_sum = 0.0;
    let mut weight_sum = 0.0;
    let mut localized = 0usize;
    for (k, inp) in inputs.iter().enumerate() {
        match localize_phone(&boundary, inp.d_left_m, inp.d_right_m, inp.alpha_deg) {
            Some(loc) => {
                let stop_residual = angle_diff_deg(inp.alpha_deg, loc.theta_deg);
                uniq_obs::metric(
                    uniq_obs::names::FUSION_STOP_RESIDUAL_DEG,
                    stop_residual,
                    "deg",
                );
                match weights {
                    None => residual_sum += stop_residual,
                    Some(w) => {
                        residual_sum += w[k] * stop_residual;
                        weight_sum += w[k];
                    }
                }
                // Eq. 3: average the acoustic and inertial angles — along
                // the shorter arc, so 359° and 1° blend to 0°, not 180°.
                // uniq-analyzer: allow(hot-path-alloc) — every push in this loop lands in a Vec pre-sized with with_capacity(inputs.len()); no reallocation inside the span
                final_thetas.push(circular_blend(inp.alpha_deg, loc.theta_deg, 0.5));
                stops.push(loc);
                localized += 1;
            }
            None => {
                // Keep index alignment: fall back to the IMU angle with a
                // flagged (infinite) residual radius entry.
                final_thetas.push(inp.alpha_deg);
                stops.push(LocalizedStop {
                    theta_deg: inp.alpha_deg,
                    radius_m: f64::NAN,
                    residual_m: f64::INFINITY,
                });
            }
        }
    }
    uniq_obs::metric(
        uniq_obs::names::FUSION_LOCALIZED_STOPS,
        localized as f64,
        "",
    );
    if localized * 2 < inputs.len() {
        return None;
    }
    let mean_residual = match weights {
        None => residual_sum / localized as f64,
        // Weighted mean over localized stops; if every localized stop has
        // zero weight nothing is trustworthy — force the §4.6 gate.
        Some(_) if weight_sum > 0.0 => residual_sum / weight_sum,
        Some(_) => f64::INFINITY,
    };
    uniq_obs::metric(
        uniq_obs::names::FUSION_MEAN_RESIDUAL_DEG,
        mean_residual,
        "deg",
    );
    uniq_obs::metric(uniq_obs::names::FUSION_OBJECTIVE, fit.fx, "deg^2");

    Some(FusionResult {
        head,
        stops,
        final_thetas_deg: final_thetas,
        mean_residual_deg: mean_residual,
        objective: fit.fx,
    })
}

/// Blends two angles (degrees) along the shorter arc:
/// `circular_blend(a, b, 0.5)` is the circular midpoint. Result is in
/// `[0, 360)`.
pub fn circular_blend(a: f64, b: f64, t: f64) -> f64 {
    let mut d = (b - a).rem_euclid(360.0);
    if d > 180.0 {
        d -= 360.0;
    }
    (a + t * d).rem_euclid(360.0)
}

/// Builds fusion inputs from a measurement session.
pub fn session_to_inputs(
    session: &crate::session::SessionData,
    cfg: &UniqConfig,
) -> Vec<FusionInput> {
    session
        .stops
        .iter()
        .map(|s| FusionInput {
            alpha_deg: s.alpha_deg,
            d_left_m: crate::channel::EstimatedChannel::tap_to_metres(s.channel.tap_left, cfg),
            d_right_m: crate::channel::EstimatedChannel::tap_to_metres(s.channel.tap_right, cfg),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthesizes noise-free fusion inputs directly from geometry: the
    /// fastest way to test the inverse problem in isolation.
    fn synthetic_inputs(head: HeadParams, radius: f64, n: usize) -> Vec<FusionInput> {
        let boundary = HeadBoundary::new(head, 2048);
        (0..n)
            .map(|k| {
                let theta = k as f64 * 180.0 / (n - 1) as f64;
                let pos = unit_from_theta(theta) * radius;
                let l = path_to_ear(&boundary, pos, Ear::Left).unwrap().length;
                let r = path_to_ear(&boundary, pos, Ear::Right).unwrap().length;
                FusionInput {
                    alpha_deg: theta,
                    d_left_m: l,
                    d_right_m: r,
                }
            })
            .collect()
    }

    fn test_cfg() -> UniqConfig {
        UniqConfig {
            inverse_resolution: 512,
            ..UniqConfig::fast_test()
        }
    }

    #[test]
    fn localize_recovers_known_position() {
        let head = HeadParams::average_adult();
        let boundary = HeadBoundary::new(head, 1024);
        for theta in [15.0, 60.0, 110.0, 165.0] {
            let pos = unit_from_theta(theta) * 0.4;
            let dl = path_to_ear(&boundary, pos, Ear::Left).unwrap().length;
            let dr = path_to_ear(&boundary, pos, Ear::Right).unwrap().length;
            // Hint off by a few degrees, as the IMU would be.
            let loc = localize_phone(&boundary, dl, dr, theta + 4.0).unwrap();
            assert!(
                angle_diff_deg(loc.theta_deg, theta) < 1.0,
                "θ={theta}: got {}",
                loc.theta_deg
            );
            assert!((loc.radius_m - 0.4).abs() < 0.01, "r = {}", loc.radius_m);
        }
    }

    #[test]
    fn localize_picks_front_back_by_hint() {
        let head = HeadParams::average_adult();
        let boundary = HeadBoundary::new(head, 1024);
        let pos = unit_from_theta(70.0) * 0.35;
        let dl = path_to_ear(&boundary, pos, Ear::Left).unwrap().length;
        let dr = path_to_ear(&boundary, pos, Ear::Right).unwrap().length;
        // With a hint near the true (front) angle we get ~70°.
        let front = localize_phone(&boundary, dl, dr, 75.0).unwrap();
        assert!(angle_diff_deg(front.theta_deg, 70.0) < 2.0);
        // With a back hint, the mirror solution (≈110°) is preferred if it
        // exists; it should be near the reflection of 70°.
        if let Some(back) = localize_phone(&boundary, dl, dr, 115.0) {
            assert!(
                back.theta_deg > 90.0,
                "back hint chose the front: {}",
                back.theta_deg
            );
        }
    }

    #[test]
    fn fuse_recovers_head_parameters_noise_free() {
        let truth = HeadParams::new(0.081, 0.094, 0.097);
        let inputs = synthetic_inputs(truth, 0.42, 12);
        let result = fuse(&inputs, &test_cfg()).expect("fusion must converge");
        assert!(
            (result.head.a - truth.a).abs() < 0.006,
            "a: {} vs {}",
            result.head.a,
            truth.a
        );
        assert!(
            (result.head.b - truth.b).abs() < 0.010,
            "b: {} vs {}",
            result.head.b,
            truth.b
        );
        assert!(
            (result.head.c - truth.c).abs() < 0.010,
            "c: {} vs {}",
            result.head.c,
            truth.c
        );
        assert!(result.mean_residual_deg < 2.0);
    }

    #[test]
    fn fuse_angles_accurate_with_imu_noise() {
        // Add IMU-like noise to α only; acoustic delays stay clean. The
        // blended angles should beat the raw IMU.
        let truth = HeadParams::average_adult();
        let mut inputs = synthetic_inputs(truth, 0.45, 12);
        let noise = [
            3.0, -2.0, 4.0, -3.5, 2.5, -1.5, 3.0, -4.0, 1.0, -2.0, 3.5, -1.0,
        ];
        for (inp, n) in inputs.iter_mut().zip(noise) {
            inp.alpha_deg += n;
        }
        let result = fuse(&inputs, &test_cfg()).unwrap();
        let mut imu_err = 0.0;
        let mut fused_err = 0.0;
        for (k, (inp, n)) in inputs.iter().zip(noise).enumerate() {
            let true_theta = inp.alpha_deg - n;
            imu_err += angle_diff_deg(inp.alpha_deg, true_theta);
            fused_err += angle_diff_deg(result.final_thetas_deg[k], true_theta);
        }
        assert!(
            fused_err < imu_err,
            "fusion did not improve on IMU: {fused_err} vs {imu_err}"
        );
    }

    #[test]
    fn fuse_radius_estimates_reasonable() {
        let inputs = synthetic_inputs(HeadParams::average_adult(), 0.38, 10);
        let result = fuse(&inputs, &test_cfg()).unwrap();
        for stop in &result.stops {
            assert!(
                (stop.radius_m - 0.38).abs() < 0.02,
                "radius {}",
                stop.radius_m
            );
        }
    }

    #[test]
    fn weighted_fusion_discounts_a_corrupted_stop() {
        // Corrupt one stop's IMU angle badly. Downweighting that stop must
        // shrink the reported mean residual relative to the unweighted run.
        let truth = HeadParams::average_adult();
        let mut inputs = synthetic_inputs(truth, 0.42, 10);
        inputs[4].alpha_deg += 25.0;
        let cfg = test_cfg();
        let unweighted = fuse(&inputs, &cfg).expect("unweighted fusion converges");
        let mut weights = vec![1.0; inputs.len()];
        weights[4] = 0.05;
        let weighted =
            fuse_weighted(&inputs, Some(&weights), &cfg).expect("weighted fusion converges");
        assert!(
            weighted.mean_residual_deg < unweighted.mean_residual_deg,
            "weighted {} vs unweighted {}",
            weighted.mean_residual_deg,
            unweighted.mean_residual_deg
        );
    }

    #[test]
    fn unit_weights_not_required_for_clean_equivalence() {
        // `None` is the contract for the clean path; all-ones weights go
        // through the weighted arithmetic and may differ in the last ulp,
        // but must stay numerically indistinguishable.
        let inputs = synthetic_inputs(HeadParams::average_adult(), 0.40, 8);
        let cfg = test_cfg();
        let none = fuse(&inputs, &cfg).unwrap();
        let ones = fuse_weighted(&inputs, Some(&vec![1.0; inputs.len()]), &cfg).unwrap();
        assert!((none.mean_residual_deg - ones.mean_residual_deg).abs() < 1e-9);
        assert!((none.head.a - ones.head.a).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one weight per fusion input")]
    fn mismatched_weights_rejected() {
        let inputs = synthetic_inputs(HeadParams::average_adult(), 0.4, 8);
        fuse_weighted(&inputs, Some(&[1.0; 3]), &test_cfg());
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn too_few_stops_rejected() {
        let inputs = synthetic_inputs(HeadParams::average_adult(), 0.4, 10);
        fuse(&inputs[..2], &test_cfg());
    }

    #[test]
    fn circular_blend_wraps() {
        assert!((circular_blend(350.0, 10.0, 0.5) - 0.0).abs() < 1e-9);
        assert!((circular_blend(10.0, 350.0, 0.5) - 0.0).abs() < 1e-9);
        assert!((circular_blend(0.0, 360.0, 0.5) - 0.0).abs() < 1e-9);
        assert!((circular_blend(40.0, 60.0, 0.5) - 50.0).abs() < 1e-9);
        assert!((circular_blend(40.0, 60.0, 0.0) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn hopeless_inputs_return_none() {
        // Nonsense distances that no head shape explains.
        let inputs: Vec<FusionInput> = (0..8)
            .map(|k| FusionInput {
                alpha_deg: k as f64 * 25.0,
                d_left_m: 5.0,
                d_right_m: 0.01,
            })
            .collect();
        assert!(fuse(&inputs, &test_cfg()).is_none());
    }
}
