//! # uniq-core
//!
//! The paper's contribution: **UNIQ**, a system that estimates a user's
//! *personal* head-related transfer function (HRTF) from a smartphone
//! swept around the head while in-ear earphones record probe chirps.
//!
//! Pipeline (Fig 6 of the paper):
//!
//! ```text
//!  earphone recordings ──┐
//!  phone IMU ────────────┼─▶ [fusion]  Diffraction-aware Sensor Fusion
//!  played probe ─────────┘       │       E_opt = (a,b,c), phone locations
//!                                ▼
//!                        [nearfield]  near-field HRTF @ discrete angles
//!                                │       + interpolation to 1° grid
//!                                ▼
//!                          [nearfar]  far-field HRTF synthesis
//!                                │       (critical-ray arc averaging)
//!                                ▼
//!                            [hrtf]   lookup table / application API
//!                                │
//!                                ▼
//!                             [aoa]   binaural AoA estimation
//! ```
//!
//! Module map:
//!
//! * [`config`] — every knob of the pipeline in one validated struct.
//! * [`channel`] — channel estimation from recordings: deconvolution,
//!   system-response compensation, room-echo gating, first-tap extraction.
//! * [`degrade`] — graceful degradation under measurement faults: the
//!   fault-hook boundary, skip/retry policy and degradation reports.
//! * [`session`] — the measurement session: gesture, IMU capture, probe
//!   playback at discrete stops (drives `uniq-acoustics` + `uniq-imu`).
//! * [`fusion`] — diffraction-aware sensor fusion (§4.1, Eqs 1–3): joint
//!   estimation of head parameters and phone locations.
//! * [`fusion3d`] — the §7 extension: spherical gestures, two-axis IMU
//!   integration, 3-D localization and four-parameter head fits.
//! * [`nearfield`] — near-field HRTF assembly and interpolation (§4.2).
//! * [`nearfar`] — near-to-far conversion via critical-ray arc averaging
//!   (§4.3), plus the paper's two experimental decomposition attempts.
//! * [`hrtf`] — the personalized HRTF table and application interface
//!   (§4.4): binaural synthesis for near/far sources.
//! * [`io`] — the exported lookup-table format (`.uniqhrtf`) applications
//!   consume.
//! * [`aoa`] — HRTF-aware binaural angle-of-arrival estimation (§4.5),
//!   known- and unknown-source variants.
//! * [`batch`] — concurrent multi-subject personalization on the
//!   `uniq-par` pool, with a determinism fingerprint and thread-scaling
//!   sweeps.
//! * [`beamform`] — HRTF-matched binaural beamforming (the §4.5 hearing-
//!   aid scenario).
//! * [`pipeline`] — end-to-end orchestration with gesture auto-correction
//!   (§4.6).
//! * [`sync`] — phone–earphone clock-offset estimation via a one-touch
//!   calibration (the synchronization the paper assumes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aoa;
pub mod batch;
pub mod beamform;
pub mod channel;
pub mod config;
pub mod degrade;
pub mod fusion;
pub mod fusion3d;
pub mod hrtf;
pub mod io;
pub mod nearfar;
pub mod nearfield;
pub mod pipeline;
pub mod session;
pub mod sync;

pub use config::UniqConfig;
pub use degrade::{DegradationPolicy, DegradationReport, FaultHook};
pub use hrtf::PersonalHrtf;
pub use pipeline::{
    personalize, personalize_faulted, FaultedPersonalization, PersonalizationError,
    PersonalizationResult,
};
