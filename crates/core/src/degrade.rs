//! Graceful degradation under injected (or real) measurement faults.
//!
//! The paper's premise is estimation from messy at-home recordings
//! (§4.6, §7): chirps get clipped, SNR collapses in bursts, the gyro
//! drops out, users duplicate or reorder stops. This module defines the
//! contract between the session layer and a fault source — the
//! [`FaultHook`] trait — plus the policy knobs ([`DegradationPolicy`])
//! and the outcome record ([`DegradationReport`]) of a degraded run.
//!
//! The fault *implementations* live in the `uniq-faults` crate; `uniq-core`
//! only knows the boundary traits, so the clean pipeline carries no
//! dependency on fault machinery and the no-fault path stays bit-identical
//! to a build without this module.

use uniq_acoustics::measure::RecordingInjector;
use uniq_imu::gyro::RateInjector;

/// How one scheduled stop is actually captured under faults: which sweep
/// position the recording really comes from (duplicated/reordered stops),
/// how far its IMU timestamp is jittered, and which structural fault
/// classes produced the remapping.
#[derive(Debug, Clone)]
pub struct StopSchedule {
    /// Sweep index the acoustic capture is taken from (normally `stop`).
    pub source: usize,
    /// Timestamp jitter applied when reading the IMU angle, seconds.
    pub jitter_s: f64,
    /// Labels of the structural fault classes behind this schedule.
    pub faults: Vec<&'static str>,
}

impl StopSchedule {
    /// The un-faulted schedule: capture at the scheduled stop, no jitter.
    pub fn identity(stop: usize) -> Self {
        StopSchedule {
            source: stop,
            jitter_s: 0.0,
            faults: Vec::new(),
        }
    }
}

/// A fault source the session layer can drive: signal-level corruption at
/// the recording and gyro-rate boundaries (the supertraits) plus
/// session-level structure (stop remapping and timestamp jitter).
///
/// Implementations must be deterministic functions of their own state and
/// the method arguments — the session replays them across retries and
/// thread counts and requires bit-identical behavior.
pub trait FaultHook: RecordingInjector + RateInjector {
    /// Schedule for `stop` out of `stops` scheduled sweep stops.
    fn stop_schedule(&self, stop: usize, stops: usize) -> StopSchedule {
        let _ = stops;
        StopSchedule::identity(stop)
    }
}

/// Policy for skip/retry of corrupted stops and fusion re-weighting.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationPolicy {
    /// Extra capture attempts per stop after a failed or below-floor one.
    pub stop_retries: usize,
    /// Drop stops that stay unusable after retries (instead of failing the
    /// whole session).
    pub skip_failed_stops: bool,
    /// Minimum surviving stops for the session to count as usable (fusion
    /// itself needs at least 4; the effective floor is the larger).
    pub min_stops: usize,
    /// Quality score below which a stop is treated as corrupted.
    pub quality_floor: f64,
    /// Weight fusion by per-stop quality (healthy stops keep weight 1.0).
    pub reweight_fusion: bool,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy {
            stop_retries: 1,
            skip_failed_stops: true,
            min_stops: 4,
            quality_floor: 0.25,
            reweight_fusion: true,
        }
    }
}

/// Fusion weight for a surviving stop of the given quality score: full
/// weight at or above `2 × quality_floor`-ish health (score ≥ 0.5), linear
/// below. Healthy stops map to exactly 1.0 so a session whose stops are
/// all clean drives the identical unweighted fusion arithmetic.
pub fn fusion_weight(score: f64) -> f64 {
    (score * 2.0).clamp(0.0, 1.0)
}

/// One stop's fate under the degradation policy.
#[derive(Debug, Clone, PartialEq)]
pub struct StopDegradation {
    /// Scheduled stop index along the sweep.
    pub stop: usize,
    /// Sweep index the capture was actually taken from.
    pub source_stop: usize,
    /// Capture attempts spent on this stop (≥ 1).
    pub attempts: usize,
    /// Whether the stop survived into the session.
    pub used: bool,
    /// Quality score of the surviving estimate (0.0 when dropped).
    pub quality: f64,
    /// Fault-class labels that touched this stop (sorted, deduplicated).
    pub faults: Vec<&'static str>,
}

/// What a degraded session kept, dropped and saw — the record surfaced
/// through `uniq-obs` metrics and the `uniq faults` CLI.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationReport {
    /// Stops the sweep scheduled.
    pub stops_planned: usize,
    /// Stops that survived into fusion.
    pub stops_used: usize,
    /// Stops dropped by the policy.
    pub stops_dropped: usize,
    /// Total capture retries spent across stops.
    pub retries: usize,
    /// Every fault class observed, sorted and deduplicated.
    pub fault_classes: Vec<&'static str>,
    /// Mean quality over surviving stops (1.0 when none survive is never
    /// reported — the session errors out first).
    pub mean_quality: f64,
    /// Minimum quality over surviving stops.
    pub min_quality: f64,
    /// Per-stop detail, in sweep order.
    pub stops: Vec<StopDegradation>,
}

impl DegradationReport {
    /// Builds the report from per-stop outcomes (in sweep order) plus any
    /// session-global fault labels (e.g. gyro-stream corruption, which has
    /// no single stop to blame).
    pub fn from_stops(stops: Vec<StopDegradation>, global_faults: &[&'static str]) -> Self {
        let stops_planned = stops.len();
        let used: Vec<&StopDegradation> = stops.iter().filter(|s| s.used).collect();
        let stops_used = used.len();
        let retries = stops.iter().map(|s| s.attempts.saturating_sub(1)).sum();
        let mut fault_classes: Vec<&'static str> = stops
            .iter()
            .flat_map(|s| s.faults.iter().copied())
            .chain(global_faults.iter().copied())
            .collect();
        fault_classes.sort_unstable();
        fault_classes.dedup();
        let mean_quality = if used.is_empty() {
            0.0
        } else {
            used.iter().map(|s| s.quality).sum::<f64>() / used.len() as f64
        };
        let min_quality = used
            .iter()
            .map(|s| s.quality)
            .fold(f64::INFINITY, f64::min)
            .min(1.0);
        DegradationReport {
            stops_planned,
            stops_used,
            stops_dropped: stops_planned - stops_used,
            retries,
            fault_classes,
            mean_quality,
            min_quality,
            stops,
        }
    }

    /// True when no fault touched the session: every stop used on its
    /// first attempt, from its own sweep position, at full quality.
    pub fn is_clean(&self) -> bool {
        self.stops_dropped == 0
            && self.retries == 0
            && self.fault_classes.is_empty()
            && self.stops.iter().all(|s| s.used && s.source_stop == s.stop)
    }

    /// Fusion weights for the surviving stops, in sweep order (same
    /// length as the session's stop list).
    pub fn fusion_weights(&self) -> Vec<f64> {
        self.stops
            .iter()
            .filter(|s| s.used)
            .map(|s| fusion_weight(s.quality))
            .collect()
    }

    /// Renders the report as a JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"stops_planned\":{}", self.stops_planned));
        out.push_str(&format!(",\"stops_used\":{}", self.stops_used));
        out.push_str(&format!(",\"stops_dropped\":{}", self.stops_dropped));
        out.push_str(&format!(",\"retries\":{}", self.retries));
        out.push_str(",\"fault_classes\":[");
        for (k, class) in self.fault_classes.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{class}\""));
        }
        out.push_str(&format!("],\"mean_quality\":{:.6}", self.mean_quality));
        out.push_str(&format!(",\"min_quality\":{:.6}", self.min_quality));
        out.push_str(",\"stops\":[");
        for (k, s) in self.stops.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"stop\":{},\"source_stop\":{},\"attempts\":{},\"used\":{},\"quality\":{:.6},\"faults\":[",
                s.stop, s.source_stop, s.attempts, s.used, s.quality
            ));
            for (j, class) in s.faults.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{class}\""));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

impl std::fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "degradation: {} planned, {} used, {} dropped, {} retried",
            self.stops_planned, self.stops_used, self.stops_dropped, self.retries
        )?;
        writeln!(
            f,
            "fault classes: {}",
            if self.fault_classes.is_empty() {
                "none".to_string()
            } else {
                self.fault_classes.join(", ")
            }
        )?;
        write!(
            f,
            "quality: mean {:.3}, min {:.3}",
            self.mean_quality, self.min_quality
        )?;
        for s in &self.stops {
            if s.used && s.faults.is_empty() && s.attempts == 1 {
                continue; // healthy stop: not worth a line
            }
            write!(
                f,
                "\nstop {:>2}: {} (attempts {}, quality {:.3}{}){}",
                s.stop,
                if s.used { "kept" } else { "DROPPED" },
                s.attempts,
                s.quality,
                if s.source_stop != s.stop {
                    format!(", capture from stop {}", s.source_stop)
                } else {
                    String::new()
                },
                if s.faults.is_empty() {
                    String::new()
                } else {
                    format!(" [{}]", s.faults.join(", "))
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stop(i: usize, used: bool, quality: f64, faults: Vec<&'static str>) -> StopDegradation {
        StopDegradation {
            stop: i,
            source_stop: i,
            attempts: 1,
            used,
            quality,
            faults,
        }
    }

    #[test]
    fn report_aggregates_counts_and_classes() {
        let report = DegradationReport::from_stops(
            vec![
                stop(0, true, 1.0, vec![]),
                stop(1, false, 0.0, vec!["snr-collapse", "clip"]),
                stop(2, true, 0.5, vec!["clip"]),
            ],
            &["gyro-dropout"],
        );
        assert_eq!(report.stops_planned, 3);
        assert_eq!(report.stops_used, 2);
        assert_eq!(report.stops_dropped, 1);
        assert_eq!(
            report.fault_classes,
            vec!["clip", "gyro-dropout", "snr-collapse"]
        );
        assert!((report.mean_quality - 0.75).abs() < 1e-12);
        assert!((report.min_quality - 0.5).abs() < 1e-12);
        assert!(!report.is_clean());
    }

    #[test]
    fn clean_report_detected() {
        let report = DegradationReport::from_stops(
            (0..5).map(|i| stop(i, true, 1.0, vec![])).collect(),
            &[],
        );
        assert!(report.is_clean());
        assert_eq!(report.fusion_weights(), vec![1.0; 5]);
    }

    #[test]
    fn fusion_weight_saturates_and_scales() {
        assert_eq!(fusion_weight(1.0), 1.0);
        assert_eq!(fusion_weight(0.5), 1.0);
        assert!((fusion_weight(0.25) - 0.5).abs() < 1e-12);
        assert_eq!(fusion_weight(0.0), 0.0);
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = DegradationReport::from_stops(
            vec![
                stop(0, true, 1.0, vec![]),
                stop(1, false, 0.0, vec!["drop"]),
            ],
            &[],
        );
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"stops_used\":1"));
        assert!(json.contains("\"fault_classes\":[\"drop\"]"));
    }

    #[test]
    fn display_lists_only_touched_stops() {
        let report = DegradationReport::from_stops(
            vec![
                stop(0, true, 1.0, vec![]),
                stop(1, false, 0.0, vec!["drop"]),
            ],
            &[],
        );
        let text = report.to_string();
        assert!(text.contains("stop  1: DROPPED"));
        assert!(!text.contains("stop  0:"), "healthy stop listed: {text}");
    }
}
