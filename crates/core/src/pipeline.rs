//! End-to-end orchestration with gesture auto-correction (§4.6).
//!
//! `personalize` runs: measurement session → channel estimation → fusion →
//! near-field interpolation → near-far conversion → [`PersonalHrtf`]. The
//! gesture auto-correction of §4.6 rejects sessions whose estimated phone
//! radius collapses toward the head or whose fusion residual explodes,
//! and `personalize_with_retry` re-runs them (the paper: "this triggers a
//! message to the user to redo the measurement exercise").

use crate::config::{ConfigError, UniqConfig};
use crate::degrade::{DegradationPolicy, DegradationReport, FaultHook};
use crate::fusion::{fuse_weighted, session_to_inputs, FusionResult};
use crate::hrtf::PersonalHrtf;
use crate::nearfield::{assemble_discrete, interpolate, mean_radius};
use crate::session::{run_session, run_session_faulted, SessionData, SessionError};
use uniq_subjects::Subject;

/// Why a personalization attempt failed.
#[derive(Debug, Clone, PartialEq)]
pub enum PersonalizationError {
    /// The configuration is inconsistent (see [`ConfigError`]).
    InvalidConfig(ConfigError),
    /// The measurement session failed (carries the failing stop's
    /// identity — see [`SessionError`]).
    Session(SessionError),
    /// Sensor fusion could not localize a majority of stops.
    FusionFailed,
    /// §4.6 gesture auto-correction fired: the user should redo the
    /// gesture.
    GestureRejected {
        /// Mean estimated phone radius, metres.
        radius_m: f64,
        /// Mean fusion residual, degrees.
        residual_deg: f64,
    },
}

impl std::fmt::Display for PersonalizationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersonalizationError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            PersonalizationError::Session(e) => write!(f, "measurement session failed: {e}"),
            PersonalizationError::FusionFailed => write!(f, "sensor fusion failed"),
            PersonalizationError::GestureRejected {
                radius_m,
                residual_deg,
            } => write!(
                f,
                "gesture rejected (radius {radius_m:.2} m, residual {residual_deg:.1}°) — redo the measurement"
            ),
        }
    }
}

impl std::error::Error for PersonalizationError {}

/// A successful personalization.
#[derive(Debug, Clone)]
pub struct PersonalizationResult {
    /// The personalized HRTF table.
    pub hrtf: PersonalHrtf,
    /// The fusion output (head parameters, phone localizations).
    pub fusion: FusionResult,
    /// `(ground-truth θ, estimated θ)` per stop — evaluation data for the
    /// Fig 17 localization plots.
    pub localization: Vec<(f64, f64)>,
    /// Mean estimated trajectory radius, metres.
    pub radius_m: f64,
    /// How many gesture attempts were needed (≥ 1).
    pub attempts: usize,
}

/// Runs one personalization attempt.
pub fn personalize(
    subject: &Subject,
    cfg: &UniqConfig,
    seed: u64,
) -> Result<PersonalizationResult, PersonalizationError> {
    cfg.validate()
        .map_err(PersonalizationError::InvalidConfig)?;
    // Derive the trace from the attempt seed: each retry (seed + 10 000 ·
    // attempt) is its own causal tree, so span ids stay unique across
    // attempts. A no-op under an enclosing trace (e.g. a batch run).
    let _trace = uniq_obs::trace(seed);
    let _span = uniq_obs::span(uniq_obs::names::SPAN_PERSONALIZE);
    let session = run_session(subject, cfg, seed).map_err(PersonalizationError::Session)?;
    let inputs = session_to_inputs(&session, cfg);
    let fusion = fuse_weighted(&inputs, None, cfg).ok_or(PersonalizationError::FusionFailed)?;
    finish_pipeline(session, fusion, cfg)
}

/// The post-fusion tail shared by the clean and faulted pipelines: the
/// §4.6 gate, near-field assembly/interpolation, near-far conversion and
/// result packing. Identical arithmetic for both callers.
fn finish_pipeline(
    session: SessionData,
    fusion: FusionResult,
    cfg: &UniqConfig,
) -> Result<PersonalizationResult, PersonalizationError> {
    // §4.6 gesture auto-correction.
    let radius = mean_radius(&fusion);
    uniq_obs::metric(uniq_obs::names::PERSONALIZE_RADIUS_M, radius, "m");
    if radius < cfg.min_radius_m || fusion.mean_residual_deg > cfg.max_fusion_residual_deg {
        uniq_obs::counter(uniq_obs::names::GESTURE_REJECTED, 1);
        return Err(PersonalizationError::GestureRejected {
            radius_m: radius,
            residual_deg: fusion.mean_residual_deg,
        });
    }

    let discrete = assemble_discrete(&session, &fusion, cfg);
    let near = interpolate(&discrete, &fusion, cfg, radius);
    if uniq_obs::enabled() {
        // §4.2 interpolation-quality diagnostics: per-ear first-tap
        // deviation from the diffraction model, aggregated over the grid.
        // Gated because it re-walks the whole interpolated bank.
        let quality = crate::nearfield::interpolation_quality(&near, &fusion, cfg, radius);
        let devs: Vec<f64> = quality
            .iter()
            .flat_map(|&(_, dl, dr)| [dl, dr])
            .filter(|d| d.is_finite())
            .collect();
        if !devs.is_empty() {
            let mean = devs.iter().sum::<f64>() / devs.len() as f64;
            let max = devs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            uniq_obs::metric(
                uniq_obs::names::NEARFIELD_INTERP_TAP_DEV_MEAN,
                mean,
                "samples",
            );
            uniq_obs::metric(
                uniq_obs::names::NEARFIELD_INTERP_TAP_DEV_MAX,
                max,
                "samples",
            );
        }
    }
    let far = crate::nearfar::convert(&near, &fusion, cfg, radius);

    let localization = session
        .stops
        .iter()
        .zip(&fusion.final_thetas_deg)
        .map(|(s, &est)| (s.truth_theta_deg, est))
        .collect();

    Ok(PersonalizationResult {
        hrtf: PersonalHrtf::new(near, far, fusion.head),
        fusion,
        localization,
        radius_m: radius,
        attempts: 1,
    })
}

/// Runs personalization with the §4.6 retry loop: gesture rejections
/// trigger a fresh session (new seed), up to `max_attempts` times.
pub fn personalize_with_retry(
    subject: &Subject,
    cfg: &UniqConfig,
    seed: u64,
    max_attempts: usize,
) -> Result<PersonalizationResult, PersonalizationError> {
    assert!(max_attempts >= 1, "need at least one attempt");
    let mut last_err = PersonalizationError::FusionFailed;
    for attempt in 0..max_attempts {
        match personalize(subject, cfg, seed.wrapping_add(10_000 * attempt as u64)) {
            Ok(mut r) => {
                r.attempts = attempt + 1;
                uniq_obs::metric(uniq_obs::names::PERSONALIZE_ATTEMPTS, r.attempts as f64, "");
                return Ok(r);
            }
            Err(e @ PersonalizationError::GestureRejected { .. }) => {
                if attempt + 1 < max_attempts {
                    uniq_obs::counter(uniq_obs::names::GESTURE_RETRY, 1);
                }
                last_err = e;
            }
            Err(e) => return Err(e),
        }
    }
    Err(last_err)
}

/// A personalization that ran under fault injection: the result plus the
/// degradation record of its (last) measurement session.
#[derive(Debug, Clone)]
pub struct FaultedPersonalization {
    /// The personalization output (same shape as the clean pipeline's).
    pub result: PersonalizationResult,
    /// What the degraded session kept, dropped and saw.
    pub degradation: DegradationReport,
}

/// Runs one personalization attempt under a [`FaultHook`], degrading the
/// session per `policy` and re-weighting fusion by per-stop quality when
/// `policy.reweight_fusion` is set (healthy stops keep weight 1.0, so a
/// session no fault touched drives the exact unweighted arithmetic).
///
/// With a no-op hook, the output is bit-identical to [`personalize`] —
/// the conformance suite in `tests/robustness.rs` pins that contract.
pub fn personalize_faulted(
    subject: &Subject,
    cfg: &UniqConfig,
    seed: u64,
    hook: &dyn FaultHook,
    policy: &DegradationPolicy,
) -> Result<FaultedPersonalization, PersonalizationError> {
    cfg.validate()
        .map_err(PersonalizationError::InvalidConfig)?;
    let _trace = uniq_obs::trace(seed);
    let _span = uniq_obs::span(uniq_obs::names::SPAN_PERSONALIZE);
    let (session, degradation) = {
        let _faults_span = uniq_obs::span(uniq_obs::names::SPAN_FAULTS);
        run_session_faulted(subject, cfg, seed, hook, policy)
            .map_err(PersonalizationError::Session)?
    };
    let inputs = session_to_inputs(&session, cfg);
    let weights = degradation.fusion_weights();
    // Pass weights only when some stop is actually degraded: `None` is the
    // contract that keeps the clean arithmetic bit-identical.
    let weights = if policy.reweight_fusion && weights.iter().any(|&w| w < 1.0) {
        Some(weights)
    } else {
        None
    };
    let fusion = fuse_weighted(&inputs, weights.as_deref(), cfg)
        .ok_or(PersonalizationError::FusionFailed)?;
    let result = finish_pipeline(session, fusion, cfg)?;
    uniq_obs::metric(
        uniq_obs::names::DEGRADATION_MEAN_QUALITY,
        degradation.mean_quality,
        "",
    );
    Ok(FaultedPersonalization {
        result,
        degradation,
    })
}

/// [`personalize_faulted`] with the §4.6 retry loop: gesture rejections
/// re-run the whole faulted session with a fresh seed (same reseeding
/// schedule as [`personalize_with_retry`]), up to `max_attempts` times.
pub fn personalize_faulted_with_retry(
    subject: &Subject,
    cfg: &UniqConfig,
    seed: u64,
    hook: &dyn FaultHook,
    policy: &DegradationPolicy,
    max_attempts: usize,
) -> Result<FaultedPersonalization, PersonalizationError> {
    assert!(max_attempts >= 1, "need at least one attempt");
    let mut last_err = PersonalizationError::FusionFailed;
    for attempt in 0..max_attempts {
        let attempt_seed = seed.wrapping_add(10_000 * attempt as u64);
        match personalize_faulted(subject, cfg, attempt_seed, hook, policy) {
            Ok(mut r) => {
                r.result.attempts = attempt + 1;
                uniq_obs::metric(
                    uniq_obs::names::PERSONALIZE_ATTEMPTS,
                    r.result.attempts as f64,
                    "",
                );
                return Ok(r);
            }
            Err(e @ PersonalizationError::GestureRejected { .. }) => {
                if attempt + 1 < max_attempts {
                    uniq_obs::counter(uniq_obs::names::GESTURE_RETRY, 1);
                }
                last_err = e;
            }
            Err(e) => return Err(e),
        }
    }
    Err(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_geometry::vec2::angle_diff_deg;

    fn cfg() -> UniqConfig {
        UniqConfig {
            in_room: false,
            snr_db: 45.0,
            grid_step_deg: 10.0,
            ..UniqConfig::fast_test()
        }
    }

    #[test]
    fn end_to_end_personalization_succeeds() {
        let c = cfg();
        let subject = Subject::from_seed(70);
        let result = personalize(&subject, &c, 42).expect("pipeline should succeed");

        // Head parameters near the subject's truth.
        assert!(
            (result.fusion.head.a - subject.head.a).abs() < 0.012,
            "a: {} vs {}",
            result.fusion.head.a,
            subject.head.a
        );

        // Localization accuracy comparable to the paper's Fig 17.
        let errs: Vec<f64> = result
            .localization
            .iter()
            .map(|(t, e)| angle_diff_deg(*t, *e))
            .collect();
        let median = uniq_dsp::stats::median(&errs);
        assert!(median < 8.0, "median localization error {median}°");

        // Output banks cover the grid.
        assert_eq!(result.hrtf.near().len(), c.output_grid().len());
        assert_eq!(result.hrtf.far().len(), c.output_grid().len());
    }

    #[test]
    fn personalized_beats_global_template() {
        // The headline claim (Figs 18–19) at unit-test scale.
        let c = cfg();
        let subject = Subject::from_seed(71);
        let result = personalize(&subject, &c, 43).unwrap();

        let grid = c.output_grid();
        let truth = subject.ground_truth(c.render, &grid);
        let global = uniq_subjects::global_template(c.render, &grid);

        let mut personal = 0.0;
        let mut generic = 0.0;
        for ((est, glob), gt) in result
            .hrtf
            .far()
            .irs()
            .iter()
            .zip(global.irs())
            .zip(truth.irs())
        {
            let (pl, pr) = est.similarity(gt);
            let (gl, gr) = glob.similarity(gt);
            personal += pl + pr;
            generic += gl + gr;
        }
        assert!(
            personal > generic,
            "personalization below global: {personal} vs {generic}"
        );
    }

    #[test]
    fn gesture_rejection_triggers_on_tight_thresholds() {
        // Force rejection by demanding an impossibly small residual.
        let c = UniqConfig {
            max_fusion_residual_deg: 0.01,
            ..cfg()
        };
        let subject = Subject::from_seed(72);
        match personalize(&subject, &c, 44) {
            Err(PersonalizationError::GestureRejected { residual_deg, .. }) => {
                assert!(residual_deg > 0.01);
            }
            other => panic!("expected gesture rejection, got {other:?}"),
        }
    }

    #[test]
    fn retry_loop_reports_attempts() {
        let c = cfg();
        let subject = Subject::from_seed(73);
        let r = personalize_with_retry(&subject, &c, 45, 3).unwrap();
        assert!(r.attempts >= 1 && r.attempts <= 3);
    }

    #[test]
    fn retry_exhaustion_returns_rejection() {
        let c = UniqConfig {
            max_fusion_residual_deg: 0.001,
            ..cfg()
        };
        let subject = Subject::from_seed(74);
        let err = personalize_with_retry(&subject, &c, 46, 2).unwrap_err();
        assert!(matches!(err, PersonalizationError::GestureRejected { .. }));
    }
}
