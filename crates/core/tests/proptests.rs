//! Property-based tests for UNIQ core invariants.

use proptest::prelude::*;
use std::sync::OnceLock;
use uniq_core::aoa::is_front;
use uniq_core::config::UniqConfig;
use uniq_core::fusion::{circular_blend, localize_phone};
use uniq_geometry::diffraction::path_to_ear;
use uniq_geometry::vec2::{angle_diff_deg, unit_from_theta};
use uniq_geometry::{Ear, HeadBoundary, HeadParams};

fn boundary() -> &'static HeadBoundary {
    static B: OnceLock<HeadBoundary> = OnceLock::new();
    B.get_or_init(|| HeadBoundary::new(HeadParams::average_adult(), 512))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn circular_blend_on_short_arc(a in 0.0..360.0f64, b in 0.0..360.0f64, t in 0.0..1.0f64) {
        let m = circular_blend(a, b, t);
        prop_assert!((0.0..360.0).contains(&m));
        // The blend never leaves the short arc between a and b.
        let arc = angle_diff_deg(a, b);
        prop_assert!(angle_diff_deg(m, a) <= arc + 1e-9);
        prop_assert!(angle_diff_deg(m, b) <= arc + 1e-9);
    }

    #[test]
    fn circular_blend_endpoints(a in 0.0..360.0f64, b in 0.0..360.0f64) {
        prop_assert!(angle_diff_deg(circular_blend(a, b, 0.0), a) < 1e-9);
        prop_assert!(angle_diff_deg(circular_blend(a, b, 1.0), b) < 1e-9);
    }

    #[test]
    fn localization_inverts_forward_geometry(theta in 5.0..175.0f64, r in 0.3..0.8f64) {
        // Clean forward→inverse roundtrip at any angle/radius. Near 90°
        // the two iso-delay curves intersect tangentially (the phone sits
        // on the ear axis), so the angular conditioning degrades there —
        // the same effect behind the paper's Fig 18 dip near 90°.
        let pos = unit_from_theta(theta) * r;
        let dl = path_to_ear(boundary(), pos, Ear::Left).unwrap().length;
        let dr = path_to_ear(boundary(), pos, Ear::Right).unwrap().length;
        let loc = localize_phone(boundary(), dl, dr, theta + 3.0);
        prop_assert!(loc.is_some(), "no solution at θ={theta} r={r}");
        let loc = loc.unwrap();
        let tol = if angle_diff_deg(theta, 90.0) < 15.0 { 6.0 } else { 2.0 };
        prop_assert!(angle_diff_deg(loc.theta_deg, theta) < tol,
            "θ={theta}: got {}", loc.theta_deg);
        prop_assert!((loc.radius_m - r).abs() < 0.03,
            "r={r}: got {}", loc.radius_m);
        // The sharp invariant: the solution reproduces the measured path
        // lengths regardless of conditioning.
        let est = unit_from_theta(loc.theta_deg) * loc.radius_m;
        let dl2 = path_to_ear(boundary(), est, Ear::Left).unwrap().length;
        let dr2 = path_to_ear(boundary(), est, Ear::Right).unwrap().length;
        prop_assert!((dl2 - dl).abs() < 0.012, "left path mismatch");
        prop_assert!((dr2 - dr).abs() < 0.012, "right path mismatch");
    }

    #[test]
    fn is_front_consistent_with_mirror(theta in 0.0..90.0f64) {
        prop_assert!(is_front(theta));
        prop_assert!(!is_front(180.0 - theta + 0.001));
        prop_assert!(is_front(360.0 - theta - 0.001) || theta < 0.002);
    }

    #[test]
    fn tap_to_metres_linear(t1 in 50.0..500.0f64, dt in 1.0..100.0f64) {
        use uniq_core::channel::EstimatedChannel;
        let cfg = UniqConfig::default();
        let a = EstimatedChannel::tap_to_metres(t1, &cfg);
        let b = EstimatedChannel::tap_to_metres(t1 + dt, &cfg);
        let expect = dt / cfg.render.sample_rate * cfg.render.speed_of_sound;
        prop_assert!((b - a - expect).abs() < 1e-9);
    }

    #[test]
    fn output_grid_sorted_and_bounded(step in 0.5..30.0f64) {
        let cfg = UniqConfig { grid_step_deg: step, ..UniqConfig::default() };
        let g = cfg.output_grid();
        prop_assert!(!g.is_empty());
        prop_assert_eq!(g[0], 0.0);
        prop_assert!(*g.last().unwrap() <= 180.0);
        for w in g.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
    }
}
