//! # uniq-suite
//!
//! Umbrella crate for the UNIQ HRTF-personalization reproduction: re-exports
//! every workspace crate and hosts the cross-crate integration tests
//! (`tests/`) and runnable examples (`examples/`).
//!
//! Start with the `quickstart` example, then see the crate-level docs of
//! [`uniq_core`] for the pipeline walkthrough.

#![forbid(unsafe_code)]

pub use uniq_acoustics as acoustics;
pub use uniq_core as core;
pub use uniq_dsp as dsp;
pub use uniq_geometry as geometry;
pub use uniq_imu as imu;
pub use uniq_optim as optim;
pub use uniq_render as render;
pub use uniq_subjects as subjects;
