//! Case execution and reporting (subset of `proptest::test_runner`).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default is 256; the numeric suites here are heavier
        // per case, so every caller overrides this anyway.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` precondition unmet — the case is discarded.
    Reject,
    /// `prop_assert!` failure — the test fails.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Drives the sample → run → record loop for one property test.
pub struct TestRunner {
    config: ProptestConfig,
    rng: StdRng,
    successes: u32,
    rejects: u32,
}

/// Hard cap on consecutive `prop_assume!` discards before the test is
/// considered vacuous and failed (mirrors upstream's behaviour).
const MAX_REJECTS: u32 = 65_536;

impl TestRunner {
    /// Builds a runner whose input stream is seeded from the test name, so
    /// every run of the same test sees the same cases.
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        // FNV-1a over the name: stable, collision-irrelevant here.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            config,
            rng: StdRng::seed_from_u64(h),
            successes: 0,
            rejects: 0,
        }
    }

    /// Whether more cases must run for the test to pass.
    pub fn more_cases(&self) -> bool {
        self.successes < self.config.cases
    }

    /// The input-sampling generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Records one case outcome.
    ///
    /// # Panics
    /// Panics on an assertion failure (failing the `#[test]`), or when the
    /// discard cap is exhausted.
    pub fn record(&mut self, outcome: Result<(), TestCaseError>) {
        match outcome {
            Ok(()) => self.successes += 1,
            Err(TestCaseError::Reject) => {
                self.rejects += 1;
                assert!(
                    self.rejects < MAX_REJECTS,
                    "prop_assume! rejected {} cases — the property is vacuous",
                    self.rejects
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest case failed after {} passing case(s): {msg}",
                    self.successes
                );
            }
        }
    }
}
