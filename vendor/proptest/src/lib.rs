//! Offline stand-in for the `proptest` crate.
//!
//! Implements exactly the subset this workspace's property suites use:
//! the [`proptest!`] macro with `#![proptest_config(...)]`, numeric range
//! strategies, `prop::collection::vec`, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros. Inputs are sampled from a
//! deterministic generator seeded by the test name, so failures reproduce
//! run-to-run. There is no shrinking: the failing inputs are reported
//! as sampled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Strategy combinators namespace (subset of `proptest::prelude::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// The common import surface.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests: a block of `#[test] fn name(arg in strategy, ...)`
/// items, optionally preceded by `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$attr:meta])* fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                while runner.more_cases() {
                    $(let $arg = $crate::strategy::Strategy::sample(&$strat, runner.rng());)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    runner.record(outcome);
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts a condition inside a property test, failing the case (not the
/// process) so the runner can report the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        // `if cond {} else { fail }` rather than `if !cond` so float
        // comparisons in `$cond` don't trip `neg_cmp_op_on_partial_ord`
        // at every expansion site.
        if $cond {
        } else {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Discards the current case (counted separately from successes) when its
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respected(x in -3.0..3.0f64, n in 1usize..9) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_strategy_length(v in prop::collection::vec(-1.0..1.0f64, 2..12)) {
            prop_assert!((2..12).contains(&v.len()));
            for x in &v {
                prop_assert!((-1.0..1.0).contains(x), "element out of range: {x}");
            }
        }

        #[test]
        fn assume_discards(k in 0usize..10) {
            prop_assume!(k % 2 == 0);
            prop_assert_eq!(k % 2, 0);
        }

        #[test]
        #[should_panic(expected = "proptest case failed")]
        fn failures_panic_with_context(x in 0.0..1.0f64) {
            prop_assert!(x < 0.0, "x was {x}");
        }
    }
}
