//! Input-generation strategies (subset of `proptest::strategy`).

use rand::rngs::StdRng;
use rand::Rng;

/// A source of random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply samples.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, f32, usize, isize, u64, i64, u32, i32);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

/// Lengths accepted by [`vec`]: a fixed `usize` or a half-open range.
pub trait IntoLenRange {
    /// The concrete `[lo, hi)` bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoLenRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoLenRange for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

/// A strategy for `Vec<T>` with element strategy `S` and a length range.
pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.lo..self.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `prop::collection::vec(element, len)` — vectors of `element` samples
/// with `len` either a fixed size or a `lo..hi` range.
pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
    let (lo, hi) = len.bounds();
    assert!(lo < hi, "empty vec length range");
    VecStrategy { element, lo, hi }
}
