//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so the workspace vendors a
//! small wall-clock benchmark runner exposing the `criterion` API subset
//! its benches use: [`Criterion::bench_function`], benchmark groups with
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Statistics are
//! simple (median over samples of a calibrated batch); there are no
//! HTML reports or regression baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of the standard black box (what the benches already use).
pub use std::hint::black_box;

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Times `routine`, first calibrating a batch size so one sample takes
    /// roughly a millisecond, then collecting `samples` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: grow the batch until it costs ≥ 1 ms (cap growth so
        // multi-second routines run exactly once per sample).
        let mut batch = 1usize;
        let batch_budget = Duration::from_millis(1);
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= batch_budget || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let max = *per_iter.last().unwrap();
        println!(
            "{:>12}  median {}  (min {}, max {}, {} samples × {} iters)",
            "",
            format_time(median),
            format_time(min),
            format_time(max),
            self.samples,
            batch
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Top-level benchmark context.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 10 }
    }
}

impl Criterion {
    /// Sets how many timing samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(2);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        println!("bench: {id}");
        let mut b = Bencher {
            samples: self.sample_count,
        };
        f(&mut b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id carrying just a parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter value.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        self.parent.bench_function(&full, f);
        self
    }

    /// Runs one parameterized benchmark, passing `input` to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.parent.bench_function(&full, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Declares a benchmark group: either `criterion_group!(name, target, ...)`
/// or the struct form with an explicit `config = ...` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0usize;
        Criterion::default()
            .sample_size(2)
            .bench_function("counting", |b| b.iter(|| calls += 1));
        assert!(calls >= 2, "routine never ran");
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let data = vec![1.0f64; 16];
        let mut sum = 0.0;
        group.bench_with_input(BenchmarkId::from_parameter(16), &data, |b, d| {
            b.iter(|| sum += d.iter().sum::<f64>())
        });
        group.finish();
        assert!(sum > 0.0);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
