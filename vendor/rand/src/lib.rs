//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so the workspace vendors
//! the *exact* subset of `rand`'s API it uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] / [`Rng::gen_bool`]
//! over half-open ranges. The generator is xoshiro256++ (public domain
//! reference constants) seeded through SplitMix64 — deterministic per seed,
//! with distribution quality far beyond what the acoustic workloads need.
//!
//! The streams differ from upstream `rand`'s ChaCha-based `StdRng`, so
//! seed-derived workloads are deterministic *within* this workspace but not
//! bit-compatible with runs made against crates.io `rand`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen_range`] can sample uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample in `[lo, hi)` given a raw 64-bit source.
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

/// The raw 64-bit entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample in the half-open `range`.
    ///
    /// # Panics
    /// Panics when `range` is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::sample_range(self, 0.0, 1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform double in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        let u = unit_f64(rng.next_u64());
        let v = lo + u * (hi - lo);
        // Guard the open upper bound against round-up at the edge.
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        let v = f64::sample_range(rng, lo as f64, hi as f64) as f32;
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias of one 64-bit draw is irrelevant at workspace spans.
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(usize, isize, u64, i64, u32, i32, u16, i16, u8, i8);

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0.0..1.0), b.gen_range(0.0..1.0));
        }
        let mut c = StdRng::seed_from_u64(8);
        let equal = (0..32).all(|_| a.gen_range(0u64..1 << 60) == c.gen_range(0u64..1 << 60));
        assert!(!equal, "different seeds produced identical streams");
    }

    #[test]
    fn float_range_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mean = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v));
            mean += v / 10_000.0;
        }
        assert!((mean - 0.5).abs() < 0.1, "uniform mean off: {mean}");
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = rng.gen_range(0usize..7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "values missed: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.75)).count();
        assert!((hits as f64 / 10_000.0 - 0.75).abs() < 0.03);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        rng.gen_range(5.0..5.0);
    }
}
