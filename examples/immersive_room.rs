//! Immersive room playback — the §7 "Integrating Room Multipath" demo.
//!
//! ```sh
//! cargo run --release --example immersive_room
//! ```
//!
//! Personalizes an HRTF, places a virtual speaker in a living room, renders
//! the direct sound plus wall echoes through the personal HRTF (RIR ⊛
//! HRTF), scores the result with the externalization proxies, and writes a
//! stereo WAV you could actually listen to.

use uniq_acoustics::room::Shoebox;
use uniq_core::config::UniqConfig;
use uniq_core::hrtf::BinauralSignal;
use uniq_core::pipeline::personalize;
use uniq_geometry::Vec2;
use uniq_render::metrics::compare;
use uniq_render::motion::turning_head;
use uniq_render::room::render_in_room;
use uniq_render::ListenerPose;
use uniq_subjects::Subject;

fn main() {
    let cfg = UniqConfig {
        in_room: true,
        grid_step_deg: 10.0,
        ..UniqConfig::default()
    };
    let subject = Subject::from_seed(55);
    println!("personalizing HRTF…");
    let hrtf = personalize(&subject, &cfg, 21)
        .expect("personalization")
        .hrtf;

    let room = Shoebox::typical_living_room();
    let source = Vec2::new(-1.4, 1.8); // a speaker front-left in the room
    let sr = cfg.render.sample_rate;
    let music =
        uniq_acoustics::signals::generate(uniq_acoustics::signals::SignalKind::Music, 2.0, sr, 808);

    println!("rendering direct sound + wall echoes through the personal HRTF…");
    let dry = hrtf.synthesize_at(&music, source);
    let wet = render_in_room(
        &hrtf,
        &room,
        source,
        &ListenerPose::default(),
        &music,
        cfg.render.speed_of_sound,
    );
    let energy = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>();
    println!(
        "  dry:  {} samples, energy L {:.1} / R {:.1}",
        dry.left.len(),
        energy(&dry.left),
        energy(&dry.right)
    );
    println!(
        "  echoic: {} samples, energy L {:.1} / R {:.1} (room adds {:.0}% energy)",
        wet.left.len(),
        energy(&wet.left),
        energy(&wet.right),
        100.0 * (energy(&wet.left) / energy(&dry.left) - 1.0)
    );

    // How far is the dry render from the echoic "reality"? The proxies show
    // what the room contributes to presence.
    let m = compare(&dry, &clip_to(&wet, dry.left.len()), sr);
    println!(
        "  dry-vs-echoic proxies: LSD {:.1} dB, ITD err {:.2} smp, ILD err {:.1} dB",
        m.lsd_db, m.itd_error_samples, m.ild_error_db
    );

    // The listener slowly looks around the room; write the result out.
    println!("rendering a slow head turn inside the room…");
    let poses = turning_head(0.0, 50.0, 12);
    let mut turn = BinauralSignal {
        left: Vec::new(),
        right: Vec::new(),
    };
    let block = music.len() / poses.len();
    for (k, pose) in poses.iter().enumerate() {
        let chunk = &music[k * block..((k + 1) * block).min(music.len())];
        let out = render_in_room(&hrtf, &room, source, pose, chunk, cfg.render.speed_of_sound);
        turn.left
            .extend_from_slice(&out.left[..block.min(out.left.len())]);
        turn.right
            .extend_from_slice(&out.right[..block.min(out.right.len())]);
    }
    normalize(&mut turn);
    let path = std::path::Path::new("immersive_room.wav");
    uniq_render::wav::write_wav(&turn, sr, path).expect("write wav");
    println!(
        "wrote {} ({:.1} s of audio)",
        path.display(),
        turn.left.len() as f64 / sr
    );
}

fn clip_to(s: &BinauralSignal, n: usize) -> BinauralSignal {
    BinauralSignal {
        left: s.left[..n.min(s.left.len())].to_vec(),
        right: s.right[..n.min(s.right.len())].to_vec(),
    }
}

fn normalize(s: &mut BinauralSignal) {
    let peak = s
        .left
        .iter()
        .chain(&s.right)
        .fold(0.0_f64, |m, &v| m.max(v.abs()));
    if peak > 0.0 {
        for v in s.left.iter_mut().chain(s.right.iter_mut()) {
            *v *= 0.9 / peak;
        }
    }
}
