//! Virtual concert: world-fixed instruments through a personalized HRTF.
//!
//! ```sh
//! cargo run --release --example virtual_concert
//! ```
//!
//! The paper's §1 scenario (3): a piano and a violin are pinned to world
//! positions; the listener's head turns, and the motion-compensated
//! binaural renderer keeps each instrument in its absolute direction.

use uniq_core::config::UniqConfig;
use uniq_core::pipeline::personalize;
use uniq_geometry::Vec2;
use uniq_render::motion::{render_with_motion, turning_head};
use uniq_render::{BinauralEngine, ListenerPose, Scene};
use uniq_subjects::Subject;

fn main() {
    let cfg = UniqConfig {
        in_room: false,
        grid_step_deg: 10.0,
        ..UniqConfig::default()
    };
    let subject = Subject::from_seed(12);
    println!("personalizing HRTF…");
    let hrtf = personalize(&subject, &cfg, 3)
        .expect("personalization")
        .hrtf;
    let engine = BinauralEngine::new(hrtf);

    // The stage: piano front-left, violin front-right, both far-field.
    let mut scene = Scene::new();
    scene.add("piano", Vec2::new(-2.5, 4.0), 1.0);
    scene.add("violin", Vec2::new(2.5, 4.0), 0.8);

    let sr = cfg.render.sample_rate;
    let piano =
        uniq_acoustics::signals::generate(uniq_acoustics::signals::SignalKind::Music, 1.0, sr, 100);
    let violin =
        uniq_acoustics::signals::generate(uniq_acoustics::signals::SignalKind::Music, 1.0, sr, 200);

    // Static listener, facing the stage.
    let pose = ListenerPose::default();
    let out = engine.render_sources(&scene, &pose, &[piano.clone(), violin.clone()]);
    let energy = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>();
    println!(
        "facing the stage:    L {:.2}  R {:.2}  (balanced stage)",
        energy(&out.left),
        energy(&out.right)
    );

    // The listener slowly turns to the left; the stage must swing right.
    let poses = turning_head(0.0, 90.0, 16);
    let mono: Vec<f64> = piano.iter().zip(&violin).map(|(a, b)| a + b).collect();
    let moving = render_with_motion(&engine, &scene, &poses, &mono, 2048, 256);
    let n = moving.left.len();
    let early = (
        energy(&moving.left[..n / 4]),
        energy(&moving.right[..n / 4]),
    );
    let late = (
        energy(&moving.left[3 * n / 4..]),
        energy(&moving.right[3 * n / 4..]),
    );
    println!("turn start (facing): L {:.2}  R {:.2}", early.0, early.1);
    println!("turn end   (left):   L {:.2}  R {:.2}", late.0, late.1);
    println!(
        "→ stage moved toward the {} ear as the head turned left",
        if late.1 / late.0 > early.1 / early.0 {
            "right"
        } else {
            "left"
        }
    );
}
