//! A look inside one measurement session: what the sensors actually see.
//!
//! ```sh
//! cargo run --release --example personalization_session
//! ```
//!
//! Prints, per measurement stop: the IMU-integrated phone angle, the
//! acoustic first-tap delays at both ears, the fused angle estimate, and
//! the ground truth — the paper's Fig 9/10 pipeline made visible.

use uniq_core::config::UniqConfig;
use uniq_core::fusion::{fuse, session_to_inputs};
use uniq_core::session::run_session;
use uniq_subjects::Subject;

fn main() {
    let cfg = UniqConfig {
        in_room: true,
        ..UniqConfig::default()
    };
    let subject = Subject::from_seed(7);

    println!("running the arm gesture + probe playback…");
    let session = run_session(&subject, &cfg, 99).expect("session succeeds");

    println!("\nper-stop raw measurements:");
    println!("  stop   IMU α     tap_L     tap_R     Δt(samples)");
    for (k, stop) in session.stops.iter().enumerate() {
        println!(
            "  {k:>4}   {:>6.1}°  {:>7.2}   {:>7.2}   {:>8.2}",
            stop.alpha_deg,
            stop.channel.tap_left,
            stop.channel.tap_right,
            stop.channel.relative_delay()
        );
    }

    println!("\nrunning diffraction-aware sensor fusion…");
    let inputs = session_to_inputs(&session, &cfg);
    let fusion = fuse(&inputs, &cfg).expect("fusion converges");

    println!(
        "fitted head parameters: a={:.3} b={:.3} c={:.3} (truth: a={:.3} b={:.3} c={:.3})",
        fusion.head.a, fusion.head.b, fusion.head.c, subject.head.a, subject.head.b, subject.head.c
    );

    println!("\n  stop   truth θ    IMU α    acoustic θ(E)   fused θ    error");
    let mut errs = Vec::new();
    for (k, (stop, loc)) in session.stops.iter().zip(&fusion.stops).enumerate() {
        let fused = fusion.final_thetas_deg[k];
        let err = uniq_geometry::vec2::angle_diff_deg(fused, stop.truth_theta_deg);
        errs.push(err);
        println!(
            "  {k:>4}   {:>6.1}°   {:>6.1}°     {:>6.1}°      {:>6.1}°   {:>5.1}°",
            stop.truth_theta_deg, stop.alpha_deg, loc.theta_deg, fused, err
        );
    }
    println!(
        "\nmedian localization error: {:.1}° (paper reports 4.8°)",
        uniq_dsp::stats::median(&errs)
    );
}
