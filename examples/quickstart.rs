//! Quickstart: personalize an HRTF for a synthetic user and inspect it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the full UNIQ loop on one simulated subject: arm gesture →
//! IMU + earphone measurements → diffraction-aware sensor fusion →
//! near-field interpolation → far-field synthesis, then compares the
//! result against the subject's ground-truth HRTF and the global template.

use uniq_core::config::UniqConfig;
use uniq_core::pipeline::personalize;
use uniq_geometry::vec2::angle_diff_deg;
use uniq_subjects::{global_template, Subject};

fn main() {
    // A coarse grid keeps the demo fast; drop `grid_step_deg` to 1.0 for
    // full resolution.
    let cfg = UniqConfig {
        in_room: true,
        grid_step_deg: 10.0,
        ..UniqConfig::default()
    };

    let subject = Subject::from_seed(42);
    println!(
        "subject head: a={:.3} m, b={:.3} m, c={:.3} m",
        subject.head.a, subject.head.b, subject.head.c
    );

    println!("\nrunning measurement session + UNIQ pipeline…");
    let result = personalize(&subject, &cfg, 1).expect("personalization succeeds");

    println!(
        "fitted head:  a={:.3} m, b={:.3} m, c={:.3} m  (fusion residual {:.1}°)",
        result.fusion.head.a,
        result.fusion.head.b,
        result.fusion.head.c,
        result.fusion.mean_residual_deg
    );

    // Phone localization accuracy (the paper's Fig 17).
    let errs: Vec<f64> = result
        .localization
        .iter()
        .map(|(truth, est)| angle_diff_deg(*truth, *est))
        .collect();
    println!(
        "phone localization: median {:.1}°, max {:.1}°",
        uniq_dsp::stats::median(&errs),
        uniq_dsp::stats::max(&errs)
    );

    // HRTF quality vs ground truth (the paper's Fig 18).
    let grid = cfg.output_grid();
    let truth = subject.ground_truth(cfg.render, &grid);
    let global = global_template(cfg.render, &grid);
    let mut rows = Vec::new();
    for ((angle, est), (glob, gt)) in grid
        .iter()
        .zip(result.hrtf.far().irs())
        .zip(global.irs().iter().zip(truth.irs()))
    {
        let (pl, pr) = est.similarity(gt);
        let (gl, gr) = glob.similarity(gt);
        rows.push((*angle, (pl + pr) / 2.0, (gl + gr) / 2.0));
    }
    println!("\n  angle   personalized   global");
    for (a, p, g) in &rows {
        println!("  {a:>5.0}°        {p:.3}     {g:.3}");
    }
    let mean = |f: fn(&(f64, f64, f64)) -> f64| rows.iter().map(f).sum::<f64>() / rows.len() as f64;
    let p = mean(|r| r.1);
    let g = mean(|r| r.2);
    println!(
        "\nmean HRIR correlation: personalized {:.3} vs global {:.3}  ({:.2}x closer to truth)",
        p,
        g,
        p / g
    );
}
