//! Smart hearing aid: whose voice is that? (§4.5 of the paper.)
//!
//! ```sh
//! cargo run --release --example hearing_aid_aoa
//! ```
//!
//! Someone calls the user's name from a direction the earphones must
//! infer. With the *personalized* HRTF the direction is sharp; with the
//! global template it smears and flips front/back — reproducing the
//! paper's Fig 21/22 at example scale.

use uniq_acoustics::measure::{record_plane_wave, MeasurementSetup};
use uniq_acoustics::signals::{generate, SignalKind};
use uniq_core::aoa::{estimate_known_source, estimate_unknown_source};
use uniq_core::config::UniqConfig;
use uniq_core::pipeline::personalize;
use uniq_geometry::vec2::angle_diff_deg;
use uniq_subjects::{global_template, Subject};

fn main() {
    let cfg = UniqConfig {
        in_room: false,
        grid_step_deg: 5.0,
        ..UniqConfig::default()
    };
    let subject = Subject::from_seed(33);
    println!("personalizing HRTF…");
    let personal = personalize(&subject, &cfg, 9)
        .expect("personalization")
        .hrtf;
    let global = global_template(cfg.render, &cfg.output_grid());

    let renderer = subject.renderer(cfg.render, uniq_subjects::FORWARD_RESOLUTION);
    let setup = MeasurementSetup::anechoic(cfg.render.sample_rate, 35.0);

    // Known source: a calibration chime the earphones know.
    let chime = cfg.probe();
    println!("\nknown source (calibration chime):");
    println!("  truth    personal    global");
    for (i, truth) in [20.0, 70.0, 120.0, 160.0].iter().enumerate() {
        let rec = record_plane_wave(&renderer, &setup, *truth, &chime, 40 + i as u64);
        let p = estimate_known_source(&rec, &chime, personal.far(), &cfg);
        let g = estimate_known_source(&rec, &chime, &global, &cfg);
        println!(
            "  {truth:>5.0}°   {p:>5.0}° ({:>4.0}° err)   {g:>5.0}° ({:>4.0}° err)",
            angle_diff_deg(p, *truth),
            angle_diff_deg(g, *truth)
        );
    }

    // Unknown source: a voice calling from somewhere.
    println!("\nunknown source (someone speaking):");
    println!("  truth    personal    global");
    let voice = generate(SignalKind::Speech, 0.4, cfg.render.sample_rate, 4242);
    for (i, truth) in [35.0, 85.0, 140.0].iter().enumerate() {
        let rec = record_plane_wave(&renderer, &setup, *truth, &voice, 60 + i as u64);
        let p = estimate_unknown_source(&rec, personal.far(), &cfg);
        let g = estimate_unknown_source(&rec, &global, &cfg);
        println!(
            "  {truth:>5.0}°   {p:>5.0}° ({:>4.0}° err)   {g:>5.0}° ({:>4.0}° err)",
            angle_diff_deg(p, *truth),
            angle_diff_deg(g, *truth)
        );
    }
}
