//! "Follow me" voice navigation: the paper's §1 scenario (1).
//!
//! ```sh
//! cargo run --release --example voice_navigation
//! ```
//!
//! A virtual guide voice is placed at each upcoming waypoint; the walker
//! hears it from the turn's true direction and simply walks toward the
//! sound. We simulate the walk and verify at each step that the rendered
//! interaural cues point at the waypoint.

use uniq_core::config::UniqConfig;
use uniq_core::pipeline::personalize;
use uniq_geometry::vec2::theta_from_vec;
use uniq_geometry::Vec2;
use uniq_render::{BinauralEngine, ListenerPose, Scene};
use uniq_subjects::Subject;

fn main() {
    let cfg = UniqConfig {
        in_room: false,
        grid_step_deg: 10.0,
        ..UniqConfig::default()
    };
    let subject = Subject::from_seed(21);
    println!("personalizing HRTF…");
    let hrtf = personalize(&subject, &cfg, 5)
        .expect("personalization")
        .hrtf;
    let engine = BinauralEngine::new(hrtf);

    // A simple route through two turns.
    let waypoints = [
        Vec2::new(0.0, 20.0),   // straight ahead
        Vec2::new(-15.0, 20.0), // then turn left
        Vec2::new(-15.0, 45.0), // then right again
    ];
    let sr = cfg.render.sample_rate;
    let voice = uniq_acoustics::signals::generate(
        uniq_acoustics::signals::SignalKind::Speech,
        0.5,
        sr,
        777,
    );
    let energy = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>();

    let mut pos = Vec2::ZERO;
    let mut heading = 0.0;
    for (leg, wp) in waypoints.iter().enumerate() {
        let pose = ListenerPose {
            position: pos,
            heading_deg: heading,
        };
        let mut scene = Scene::new();
        scene.add("guide", *wp, 1.0);
        let out = engine.render_scene(&scene, &pose, &voice);
        let theta = pose.perceived_theta(*wp);
        let (l, r) = (energy(&out.left), energy(&out.right));
        let side = if theta > 5.0 && theta < 180.0 {
            "left"
        } else if theta > 180.0 && theta < 355.0 {
            "right"
        } else {
            "ahead"
        };
        println!(
            "leg {leg}: walker at ({:5.1},{:5.1}) heading {:5.1}° — guide voice from θ={:5.1}° ({side}); ear energies L {l:.2} / R {r:.2}",
            pos.x, pos.y, heading, theta
        );
        // Walk to the waypoint and face the direction we walked.
        heading = theta_from_vec(*wp - pos);
        pos = *wp;
    }
    println!("arrived — the voice led the way without a map.");
}
